"""Perf smoke test of the vectorized and incremental feature paths.

Times the two PR-4 rewrites against their scalar references on the
benchmark fleet and records the speedups to a ``BENCH_features.json``
artifact:

* batch — ``BankPatternFeaturizer.extract_many`` and
  ``CrossRowFeaturizer.extract_blocks`` versus a per-record scalar loop
  over the same trigger histories;
* incremental — the per-reprediction feature path across every
  serve-replay snapshot: O(1) ``IncrementalFeatureState`` folding versus
  re-packing the full bank history each time, plus end-to-end serve
  wall-clock under both service flags (``incremental_features``) for
  context.

Both rewrites are exact: the bitwise-equality assertions here mirror
``tests/test_feature_equivalence.py`` so a perf win can never mask a
semantic drift.  The speedup floors are asserted only at
``REPRO_BENCH_SCALE >= 0.5`` — below that the scalar baselines finish
too quickly for stable ratios — but the artifact records them at any
scale.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared via
``conftest``), ``REPRO_PERF_FEATURES_OUTPUT`` (default
``BENCH_features.json`` in the working directory).
"""

import json
import os
import time

import numpy as np

from repro.core.features import BankPatternFeaturizer, CrossRowFeaturizer
from repro.core.incremental import IncrementalFeatureState
from repro.core.online import CordialService
from repro.core.pipeline import collect_snapshots, collect_triggers
from repro.experiments.serve import serve_stream

from conftest import BENCH_SCALE

PERF_OUTPUT = os.environ.get("REPRO_PERF_FEATURES_OUTPUT",
                             "BENCH_features.json")

#: The batch path must beat the scalar loop by at least this factor
#: (asserted at scale >= 0.5, where the measurement is stable).
MIN_BATCH_SPEEDUP = 3.0
ASSERT_SCALE = 0.5


def test_feature_extraction_speedups(context):
    dataset = context.dataset
    triggers = collect_triggers(dataset, dataset.uer_banks)
    histories = [t.history for t in triggers]

    # -- batch: bank-pattern features ------------------------------------
    bank = BankPatternFeaturizer()
    warmup = histories[:8]
    bank.extract_many(warmup)  # first-call numpy dispatch is not the story
    [bank.extract(h) for h in warmup]
    start = time.perf_counter()
    batch_matrix = bank.extract_many(histories)
    t_batch = time.perf_counter() - start
    start = time.perf_counter()
    scalar_matrix = np.vstack([bank.extract(h) for h in histories])
    t_scalar = time.perf_counter() - start
    assert np.array_equal(batch_matrix, scalar_matrix)

    # -- batch: cross-row block features ---------------------------------
    crossrow = CrossRowFeaturizer()
    anchors = [t.uer_rows[-1] for t in triggers]
    crossrow.extract_blocks(histories[0], anchors[0])
    crossrow.extract_blocks_scalar(histories[0], anchors[0])
    start = time.perf_counter()
    fast_blocks = [crossrow.extract_blocks(h, a)
                   for h, a in zip(histories, anchors)]
    t_blocks = time.perf_counter() - start
    start = time.perf_counter()
    slow_blocks = [crossrow.extract_blocks_scalar(h, a)
                   for h, a in zip(histories, anchors)]
    t_blocks_scalar = time.perf_counter() - start
    for fast, slow in zip(fast_blocks, slow_blocks):
        assert np.array_equal(fast, slow)

    # -- incremental: reprediction feature path, fold vs recompute -------
    # Times exactly what the online service computes per re-prediction:
    # the incremental path folds each event once and reads the features
    # from the running aggregates; the recompute path re-packs the full
    # bank history every time.  This is the right frame for the
    # comparison — end-to-end serve wall-clock (also recorded below) is
    # >90 % pure-Python tree inference, which neither path touches.
    t_fold = t_recompute_features = 0.0
    n_repredictions = 0
    for bank in dataset.uer_banks:
        snapshots = collect_snapshots(dataset, bank)
        if not snapshots:
            continue
        state = IncrementalFeatureState()
        full_history = snapshots[-1].history
        position = 0
        for snapshot in snapshots:
            anchor = snapshot.uer_rows[-1]
            start = time.perf_counter()
            while position < len(snapshot.history):
                state.update(full_history[position])
                position += 1
            folded = crossrow.extract_from_aggregates(state.aggregates(),
                                                      anchor)
            t_fold += time.perf_counter() - start
            start = time.perf_counter()
            recomputed = crossrow.extract_blocks(snapshot.history, anchor)
            t_recompute_features += time.perf_counter() - start
            assert np.array_equal(folded, recomputed)
            n_repredictions += 1

    # -- end-to-end serve-replay under both service flags ----------------
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = [r for r in dataset.store if r.bank_key in test_set]

    incremental = CordialService(cordial, incremental_features=True)
    start = time.perf_counter()
    _, fast_decisions = serve_stream(incremental, stream)
    t_incremental = time.perf_counter() - start

    recompute = CordialService(cordial, incremental_features=False)
    start = time.perf_counter()
    _, slow_decisions = serve_stream(recompute, stream)
    t_recompute = time.perf_counter() - start
    assert [d.to_obj() for d in fast_decisions] == \
        [d.to_obj() for d in slow_decisions]

    record = {
        "scale": BENCH_SCALE,
        "triggers": len(histories),
        "events": len(stream),
        "extract_many_s": round(t_batch, 4),
        "extract_scalar_s": round(t_scalar, 4),
        "extract_many_speedup": round(t_scalar / t_batch, 2),
        "extract_blocks_s": round(t_blocks, 4),
        "extract_blocks_scalar_s": round(t_blocks_scalar, 4),
        "extract_blocks_speedup": round(t_blocks_scalar / t_blocks, 2),
        "repredictions": n_repredictions,
        "repredict_fold_s": round(t_fold, 4),
        "repredict_recompute_s": round(t_recompute_features, 4),
        "repredict_speedup": round(t_recompute_features / t_fold, 2),
        "serve_incremental_s": round(t_incremental, 3),
        "serve_recompute_s": round(t_recompute, 3),
        "serve_speedup": round(t_recompute / t_incremental, 2),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nfeature paths: {record}")

    if BENCH_SCALE >= ASSERT_SCALE:
        assert t_scalar / t_batch >= MIN_BATCH_SPEEDUP, (
            f"extract_many only {t_scalar / t_batch:.1f}x faster than the "
            f"scalar loop (floor {MIN_BATCH_SPEEDUP}x; see {PERF_OUTPUT})")
        assert t_fold < t_recompute_features, (
            f"incremental reprediction features slower than recompute: "
            f"{t_fold:.3f}s vs {t_recompute_features:.3f}s over "
            f"{n_repredictions} repredictions")
