"""Extension — is the Table III model ordering split luck?

Re-evaluates pattern classification over group-aware folds and reports
per-fold weighted F1 for each model family.
"""

import numpy as np

from conftest import emit
from repro.core.classifier import FailurePatternClassifier
from repro.core.pipeline import collect_triggers
from repro.ml.cv import GroupKFold
from repro.ml.metrics import precision_recall_f1, weighted_average


def run(context, n_splits=4):
    triggers = collect_triggers(context.dataset,
                                context.dataset.uer_banks)
    histories = [t.history for t in triggers]
    labels = [context.dataset.bank_truth[t.bank_key].pattern
              for t in triggers]
    groups = [t.bank_key for t in triggers]
    results = {}
    for model_name in ("LightGBM", "XGBoost", "Random Forest"):
        fold_scores = []
        for train_idx, test_idx in GroupKFold(n_splits, seed=0).split(groups):
            clf = FailurePatternClassifier(model_name, random_state=0)
            clf.fit([histories[i] for i in train_idx],
                    [labels[i] for i in train_idx])
            predicted = [p.value for p in clf.predict_many(
                [histories[i] for i in test_idx])]
            truth = [labels[i].value for i in test_idx]
            fold_scores.append(
                weighted_average(precision_recall_f1(truth, predicted)).f1)
        results[model_name] = (float(np.mean(fold_scores)),
                               float(np.std(fold_scores)))
    return results


def test_cv_stability(benchmark, context):
    results = benchmark.pedantic(run, args=(context,), rounds=1,
                                 iterations=1)
    emit("Extension — cross-validated pattern F1 (mean +/- std over folds)\n"
         + "\n".join(f"  {k:<14} {m:.3f} +/- {s:.3f}"
                     for k, (m, s) in results.items()))
    for mean, std in results.values():
        assert mean > 0.7
        assert std < 0.1
