"""Benchmark E2 — regenerate Table II (dataset summary per micro-level)."""

from conftest import emit
from repro.experiments import table2


def test_table2_dataset_summary(benchmark, context):
    result = benchmark.pedantic(table2.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    # Bank/Row counts track the (scaled) paper; coarser levels scale
    # sub-linearly (see Table2Result.max_relative_error) and are printed
    # for inspection only below scale 1.
    assert result.max_relative_error(levels=("Bank", "Row")) < 0.30
    if result.scale >= 0.9:
        assert result.max_relative_error(levels=result.rows.keys()) < 0.35
