"""Extension — a Calchas-style ML in-row predictor vs the Table I ceiling.

However well an in-row model ranks the rows it can see, its coverage of
all UER rows is capped by the row-level predictable ratio (paper: 4.39 %)
— the quantitative argument for Cordial's cross-row paradigm.
"""

from conftest import emit
from repro.core.inrow_ml import HierarchicalInRowPredictor


def run(context):
    train, test = context.split
    predictor = HierarchicalInRowPredictor(model_name="LightGBM",
                                           random_state=0)
    predictor.fit(context.dataset, train)
    return predictor.evaluate(context.dataset, test)


def test_inrow_ml_ceiling(benchmark, context):
    result = benchmark.pedantic(run, args=(context,), rounds=1,
                                iterations=1)
    s = result.candidate_scores
    emit("Extension — hierarchical in-row predictor\n"
         f"  candidate rows:        {result.n_candidates}\n"
         f"  candidate P/R/F1:      {s.precision:.3f}/{s.recall:.3f}/{s.f1:.3f}\n"
         f"  UER-row coverage:      {result.uer_row_coverage:.2%}\n"
         f"  coverage ceiling:      {result.coverage_ceiling:.2%} "
         "(paper row-level ratio: 4.39%)")
    # the paradigm cap: even a perfect in-row model covers < 12 % of rows
    assert result.coverage_ceiling < 0.12
    assert result.uer_row_coverage <= result.coverage_ceiling + 1e-9
    # Cordial's ICR (Table IV bench) sits far above this coverage
    cordial_icr = context.evaluation("LightGBM").icr.icr
    assert cordial_icr > result.uer_row_coverage * 1.5
