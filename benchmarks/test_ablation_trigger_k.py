"""Ablation A1 — how many UER rows to wait for before classifying.

The paper fixes the trigger at the first *three* UER rows (Section IV-C):
earlier triggers act sooner but see less evidence; later triggers classify
better but sacrifice intervention time.  This bench quantifies that
trade-off on the synthetic fleet.
"""

from conftest import emit
from repro.core.pipeline import Cordial


def run_sweep(context):
    rows = {}
    train, test = context.split
    for k in (2, 3, 5):
        model = Cordial(model_name="LightGBM", trigger_uer_rows=k,
                        random_state=0)
        model.fit(context.dataset, train)
        evaluation = model.evaluate(context.dataset, test)
        rows[k] = (evaluation.pattern_weighted.f1,
                   evaluation.block_scores.f1,
                   evaluation.icr.icr,
                   evaluation.n_test_triggers)
    return rows


def test_ablation_trigger_k(benchmark, context):
    rows = benchmark.pedantic(run_sweep, args=(context,),
                              rounds=1, iterations=1)
    lines = ["Ablation A1 — trigger after k distinct UER rows (paper: k=3)",
             f"{'k':>3}{'pattern F1':>12}{'block F1':>10}{'ICR':>8}"
             f"{'triggers':>10}"]
    for k, (pattern_f1, block_f1, icr, triggers) in rows.items():
        lines.append(f"{k:>3}{pattern_f1:>12.3f}{block_f1:>10.3f}"
                     f"{icr:>8.2%}{triggers:>10}")
    emit("\n".join(lines))
    # Later triggers never see *fewer* banks than even later ones,
    # and every configuration produces a usable pipeline.
    assert rows[2][3] >= rows[3][3] >= rows[5][3]
    for k, (pattern_f1, _, icr, _) in rows.items():
        assert pattern_f1 > 0.5, f"k={k}"
        assert icr > 0.05, f"k={k}"
