"""Benchmark E3 — regenerate Table III (failure-pattern classification)."""

from conftest import emit
from repro.experiments import table3


def test_table3_pattern_classification(benchmark, context):
    result = benchmark.pedantic(table3.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    for model in ("LightGBM", "XGBoost", "Random Forest"):
        scores = result.scores[model]
        single = scores["Single-row Clustering"][2]
        # Paper shape: single-row is classified (near-)best and double-row
        # worst.  Our scattered class runs close to single-row (see
        # EXPERIMENTS.md), so allow a statistical tie at bench scale.
        assert single > 0.80, model
        assert single >= scores["Double-row Clustering"][2], model
        assert single >= scores["Scattered Pattern"][2] - 0.05, model
        assert result.weighted_f1(model) > 0.70, model
