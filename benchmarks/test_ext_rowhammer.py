"""Extension — read-disturbance (RowHammer) robustness.

The paper's related work flags read disturbance as an HBM reliability
issue outside Cordial's taxonomy.  This bench injects RowHammer episodes
and checks the operationally right thing happens: the ultra-tight victim
clusters are classified as an aggregation pattern (row-sparable), not
scattered (which would waste a whole bank).
"""

import numpy as np

from conftest import emit
from repro.faults.disturbance import RowHammerProcess, mitigation_refresh_rate
from repro.telemetry.events import ErrorRecord


def run(context):
    model = context.model("Random Forest")
    process = RowHammerProcess()
    rng = np.random.default_rng(7)
    template = next(iter(context.dataset.store)).address
    outcomes = {"aggregation": 0, "scattered": 0, "skipped": 0}
    for _ in range(60):
        episode = process.realize(rng)
        if len(episode.uer_row_sequence) < 3:
            outcomes["skipped"] += 1
            continue
        history = []
        for seq, event in enumerate(episode.events):
            address = template.with_cell(row=event.row, column=event.column)
            history.append(ErrorRecord(
                timestamp=event.time, sequence=seq, address=address,
                error_type=event.kind))
        # snapshot at the third distinct UER row, like the collector would
        uer_rows = []
        cut = len(history)
        for i, record in enumerate(history):
            if record.error_type.value == "UER" and record.row not in uer_rows:
                uer_rows.append(record.row)
                if len(uer_rows) == 3:
                    cut = i + 1
                    break
        pattern = model.classifier.predict(history[:cut])
        key = "aggregation" if pattern.is_aggregation else "scattered"
        outcomes[key] += 1
    return outcomes


def test_rowhammer_robustness(benchmark, context):
    outcomes = benchmark.pedantic(run, args=(context,), rounds=1,
                                  iterations=1)
    rate = mitigation_refresh_rate(RowHammerProcess().params)
    emit("Extension — RowHammer episodes through Cordial's classifier\n"
         f"  classified aggregation (row-sparable): {outcomes['aggregation']}\n"
         f"  classified scattered (bank-spared):    {outcomes['scattered']}\n"
         f"  episodes below 3 UERs in-window:       {outcomes['skipped']}\n"
         f"  targeted-refresh mitigation rate:      {rate:.3f}/day")
    judged = outcomes["aggregation"] + outcomes["scattered"]
    assert judged >= 20
    assert outcomes["aggregation"] / judged > 0.7
