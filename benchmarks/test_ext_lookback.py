"""Extension — Table I sensitivity to the observation-window length.

DESIGN.md documents that "sudden" only makes sense relative to an in-row
predictor's observation window; this bench sweeps the lookback and shows
the row-level ratio is insensitive while device levels saturate as the
window grows (why the paper's exact definition matters).
"""

from conftest import emit
from repro.analysis.sudden import compute_sudden_uer_table
from repro.hbm.address import MicroLevel


def run(context):
    results = {}
    for lookback in (0.1, 0.25, 1.0, None):
        table = compute_sudden_uer_table(context.dataset.store,
                                         lookback_days=lookback)
        results[lookback] = (table[MicroLevel.NPU].predictable_ratio,
                             table[MicroLevel.BANK].predictable_ratio,
                             table[MicroLevel.ROW].predictable_ratio)
    return results


def test_lookback_sensitivity(benchmark, context):
    results = benchmark.pedantic(run, args=(context,), rounds=1,
                                 iterations=1)
    lines = ["Extension — Table I vs observation window",
             f"{'lookback':<12}{'NPU':>8}{'Bank':>8}{'Row':>8}"]
    for lookback, (npu, bank, row) in results.items():
        label = "unbounded" if lookback is None else f"{lookback:g} d"
        lines.append(f"{label:<12}{npu:>8.2%}{bank:>8.2%}{row:>8.2%}")
    emit("\n".join(lines))
    # ratios grow monotonically with the window at every level
    ordered = list(results.values())
    for a, b in zip(ordered, ordered[1:]):
        assert all(x <= y + 0.02 for x, y in zip(a, b))
    # row level stays far below device level regardless of window
    for npu, bank, row in results.values():
        assert row < bank < npu + 0.02
