"""Benchmark E7 — regenerate Figure 4 (chi-square locality curve)."""

from conftest import emit
from repro.experiments import fig4


def test_fig4_locality_chisquare(benchmark, context):
    result = benchmark.pedantic(fig4.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    # The paper's design-defining finding: significance peaks at 128 rows.
    assert result.curve.peak_threshold == 128
    curve = result.curve.as_dict()
    assert curve[128] > curve[2048]
    assert curve[128] > curve[4]
