"""Perf smoke test of the hardened online serving path.

Streams the benchmark fleet's test split through ``CordialService``
twice — in order with no reorder buffer, and shuffled through a
``max_skew`` window — and records both throughputs plus the
checkpoint save/restore latency to a ``BENCH_serving.json`` artifact.
The reorder buffer must not cost more than a small multiple of the
in-order path, and a checkpoint round-trip must stay sub-second at this
scale.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared with the
other benches via ``conftest``), ``REPRO_PERF_SERVING_OUTPUT`` (default
``BENCH_serving.json`` in the working directory).
"""

import json
import os
import time

from repro.core.online import CordialService
from repro.core.persistence import (load_service_checkpoint,
                                    save_service_checkpoint)
from repro.experiments.serve import bounded_shuffle, serve_stream

PERF_OUTPUT = os.environ.get("REPRO_PERF_SERVING_OUTPUT",
                             "BENCH_serving.json")

#: Reorder-buffer staging may cost this multiple of the in-order path.
REORDER_OVERHEAD_TOLERANCE = 5.0
MAX_SKEW = 3600.0


def test_serving_throughput_and_checkpoint_latency(context, tmp_path):
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = [r for r in context.dataset.store if r.bank_key in test_set]

    in_order = CordialService(cordial)
    start = time.perf_counter()
    _, decisions = serve_stream(in_order, stream)
    t_in_order = time.perf_counter() - start

    shuffled = bounded_shuffle(stream, MAX_SKEW, seed=1)
    reordered = CordialService(cordial, max_skew=MAX_SKEW)
    start = time.perf_counter()
    _, reordered_decisions = serve_stream(reordered, shuffled)
    t_reordered = time.perf_counter() - start

    path = str(tmp_path / "bench.ckpt.json")
    start = time.perf_counter()
    save_service_checkpoint(reordered, path)
    t_save = time.perf_counter() - start
    start = time.perf_counter()
    restored = load_service_checkpoint(path)
    t_restore = time.perf_counter() - start

    record = {
        "events": len(stream),
        "decisions": len(decisions),
        "in_order_s": round(t_in_order, 3),
        "reordered_s": round(t_reordered, 3),
        "events_per_s_in_order": round(len(stream) / t_in_order, 1),
        "events_per_s_reordered": round(len(stream) / t_reordered, 1),
        "checkpoint_save_s": round(t_save, 3),
        "checkpoint_restore_s": round(t_restore, 3),
        "checkpoint_bytes": os.path.getsize(path),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nserving path: {record}")

    # The perf claim never compromises the equivalence contract.
    assert len(reordered_decisions) == len(decisions)
    assert restored.stats.to_dict() == reordered.stats.to_dict()
    assert t_reordered <= t_in_order * REORDER_OVERHEAD_TOLERANCE, (
        f"reorder buffer too slow: {t_reordered:.2f}s vs in-order "
        f"{t_in_order:.2f}s (timings in {PERF_OUTPUT})")
