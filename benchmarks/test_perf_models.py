"""Microbenchmarks — inference hot paths.

Deployment latency questions: how long does one trigger take end to end
(featurise + classify + predict blocks)? How fast is bulk block scoring?
Measured with repeated rounds on the shared fitted Random Forest.
"""

import numpy as np
import pytest

from repro.core.pipeline import collect_triggers


@pytest.fixture(scope="module")
def fitted(context):
    return context.model("Random Forest")


@pytest.fixture(scope="module")
def triggers(context):
    return collect_triggers(context.dataset, context.split[1])[:50]


def test_perf_trigger_decision_latency(benchmark, fitted, triggers):
    """Full per-trigger decision: classify pattern + score 16 blocks."""
    def decide():
        decisions = 0
        for trigger in triggers:
            pattern = fitted.classifier.predict(trigger.history)
            if pattern.is_aggregation:
                fitted.predictor.predict(trigger.history,
                                         trigger.uer_rows[-1])
            decisions += 1
        return decisions

    n = benchmark.pedantic(decide, rounds=3, iterations=1)
    assert n == len(triggers)


def test_perf_pattern_featurisation(benchmark, fitted, triggers):
    featurizer = fitted.classifier.featurizer
    histories = [t.history for t in triggers]
    matrix = benchmark.pedantic(
        lambda: featurizer.extract_many(histories), rounds=5, iterations=1)
    assert matrix.shape[0] == len(histories)


def test_perf_bulk_block_scoring(benchmark, fitted, triggers):
    featurizer = fitted.predictor.featurizer
    X = np.vstack([featurizer.extract_blocks(t.history, t.uer_rows[-1])
                   for t in triggers])
    probs = benchmark.pedantic(
        lambda: fitted.predictor.predict_proba_matrix(X),
        rounds=5, iterations=1)
    assert probs.shape[0] == X.shape[0]
