"""Perf smoke test of the chaos harness.

Measures what the harness itself costs on top of a plain serve: one
clean serve of the benchmark test split, the same stream through the
full operator pipeline, and a faulted serve with kill/restore plus
tamper trials.  Writes a ``BENCH_chaos.json`` artifact so CI can track
the campaign's per-run cost over time.

The harness is test scaffolding, not a production path, so the bound is
generous — but it must stay within a small multiple of the serve it
wraps, or chaos campaigns silently become the slowest thing in CI.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared via
``conftest``), ``REPRO_PERF_CHAOS_OUTPUT`` (default ``BENCH_chaos.json``
in the working directory).
"""

import json
import os
import time

import numpy as np

from repro.chaos import default_plan, serve_with_faults
from repro.chaos.campaign import perturb_stream
from repro.core.online import CordialService
from repro.experiments.serve import serve_stream

PERF_OUTPUT = os.environ.get("REPRO_PERF_CHAOS_OUTPUT", "BENCH_chaos.json")

#: A faulted serve (operators + kills + tampering) may cost this multiple
#: of the clean serve it wraps.
HARNESS_OVERHEAD_TOLERANCE = 12.0
MAX_SKEW = 3600.0


def test_chaos_harness_overhead(context, tmp_path):
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = [r for r in context.dataset.store if r.bank_key in test_set]
    plan = default_plan(max_skew=MAX_SKEW, kills_per_run=2)

    clean = CordialService(cordial, max_skew=MAX_SKEW)
    start = time.perf_counter()
    serve_stream(clean, stream)
    t_clean = time.perf_counter() - start

    root = np.random.SeedSequence(0)
    children = root.spawn(len(plan.operators) + 1)
    operator_rngs = [np.random.default_rng(c) for c in children[:-1]]
    fault_rng = np.random.default_rng(children[-1])

    start = time.perf_counter()
    perturbed, applied = perturb_stream(stream, plan, operator_rngs)
    t_operators = time.perf_counter() - start

    kill_points = sorted(int(k) for k in fault_rng.choice(
        np.arange(1, len(perturbed)), size=2, replace=False))
    start = time.perf_counter()
    outcome = serve_with_faults(
        CordialService(cordial, max_skew=MAX_SKEW), perturbed, kill_points,
        str(tmp_path / "bench-chaos.ckpt"), fault_rng,
        tamper_modes=plan.tamper_modes)
    t_faulted = time.perf_counter() - start

    record = {
        "events": len(stream),
        "perturbed_events": len(perturbed),
        "operators_applied": {op["name"]: op["applied"] for op in applied},
        "kills": len(kill_points),
        "restores": outcome.restore_count,
        "tamper_trials": len(outcome.tamper_trials),
        "clean_serve_s": round(t_clean, 3),
        "operator_pipeline_s": round(t_operators, 3),
        "faulted_serve_s": round(t_faulted, 3),
        "events_per_s_clean": round(len(stream) / t_clean, 1),
        "events_per_s_faulted": round(len(perturbed) / t_faulted, 1),
        "harness_overhead_x": round((t_operators + t_faulted)
                                    / max(t_clean, 1e-9), 2),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nchaos harness: {record}")

    # The perf claim never compromises the fault contract.
    assert outcome.restore_count == len(kill_points)
    assert all(t.detected for t in outcome.tamper_trials)
    assert t_operators + t_faulted <= t_clean * HARNESS_OVERHEAD_TOLERANCE, (
        f"chaos harness too slow: operators {t_operators:.2f}s + faulted "
        f"serve {t_faulted:.2f}s vs clean {t_clean:.2f}s "
        f"(timings in {PERF_OUTPUT})")
