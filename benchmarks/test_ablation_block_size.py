"""Ablation A3 — prediction-block granularity.

The paper divides the 128-row window into 16 blocks of 8 rows.  Smaller
blocks isolate fewer rows per hit but are harder to predict; larger blocks
trade precision of isolation for easier targets.
"""

from conftest import emit
from repro.core.features import CrossRowWindow
from repro.core.pipeline import Cordial


def run_sweep(context):
    rows = {}
    train, test = context.split
    for block_rows in (4, 8, 16):
        model = Cordial(model_name="LightGBM",
                        window=CrossRowWindow(half_window=64,
                                              block_rows=block_rows),
                        random_state=0)
        model.fit(context.dataset, train)
        evaluation = model.evaluate(context.dataset, test)
        rows[block_rows] = (evaluation.block_scores.f1,
                            evaluation.icr.icr,
                            evaluation.icr.spared_rows)
    return rows


def test_ablation_block_size(benchmark, context):
    rows = benchmark.pedantic(run_sweep, args=(context,),
                              rounds=1, iterations=1)
    lines = ["Ablation A3 — block-size sweep (paper: 8 rows x 16 blocks)",
             f"{'rows/block':>11}{'block F1':>10}{'ICR':>8}"
             f"{'rows spared':>13}"]
    for block_rows, (f1, icr, spared) in rows.items():
        lines.append(f"{block_rows:>11}{f1:>10.3f}{icr:>8.2%}{spared:>13}")
    emit("\n".join(lines))
    for block_rows, (f1, icr, _) in rows.items():
        assert icr > 0.05, f"block_rows={block_rows}"
