"""Microbenchmarks — telemetry hot paths.

Unlike the experiment benches (one-shot regenerations), these measure
steady-state throughput with repeated rounds: MCE parsing, store
indexing, collector ingestion and stream compaction. Useful to size a
deployment (a fleet BMC aggregator sees ~10-100 events/s; these paths
run orders of magnitude faster).
"""

import io

import pytest

from repro.telemetry.collector import BMCCollector
from repro.telemetry.dedup import StreamCompactor
from repro.telemetry.mcelog import read_mce_log, write_mce_log
from repro.telemetry.store import ErrorStore


@pytest.fixture(scope="module")
def records(context):
    return list(context.dataset.store)[:20_000]


def test_perf_store_indexing(benchmark, records):
    result = benchmark.pedantic(lambda: ErrorStore(records),
                                rounds=3, iterations=1)
    assert len(result) == len(records)


def test_perf_mce_roundtrip(benchmark, records):
    subset = records[:5_000]

    def roundtrip():
        buffer = io.StringIO()
        write_mce_log(subset, buffer)
        buffer.seek(0)
        return read_mce_log(buffer)

    loaded = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert len(loaded) == len(subset)


def test_perf_collector_ingestion(benchmark, records):
    def ingest_all():
        collector = BMCCollector()
        triggers = 0
        for record in records:
            for _, trigger in collector.ingest(record):
                if trigger is not None:
                    triggers += 1
        return triggers

    triggers = benchmark.pedantic(ingest_all, rounds=3, iterations=1)
    assert triggers > 0


def test_perf_stream_compaction(benchmark, records):
    def compact_all():
        compactor = StreamCompactor(holdoff_s=86400.0)
        return sum(1 for _ in compactor.compact(records))

    kept = benchmark.pedantic(compact_all, rounds=3, iterations=1)
    assert 0 < kept <= len(records)
