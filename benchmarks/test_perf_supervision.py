"""Perf smoke test of the shard supervision layer.

Streams the benchmark fleet's test split through a 4-shard
``ShardedCordialEngine`` three times — unsupervised, supervised on a
clean stream, and supervised with one injected worker crash — and
records throughputs plus the supervision overhead to a
``BENCH_supervision.json`` artifact.  The claims under test:

* supervision on a healthy stream is near-free — the batch logging and
  periodic baseline snapshots must cost less than
  ``REPRO_PERF_SUPERVISION_MAX_OVERHEAD`` (default 10 %) of the
  unsupervised run's wall clock;
* a worker crash mid-stream recovers to the *identical* decision log
  (the recovery price is reported, not bounded — it is dominated by the
  replay length, a policy knob).

Engine construction happens outside the timed window on both sides:
the claim is steady-state serving throughput, not cold start.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared with the
other benches via ``conftest``), ``REPRO_PERF_SUPERVISION_OUTPUT``
(default ``BENCH_supervision.json``),
``REPRO_PERF_SUPERVISION_MAX_OVERHEAD`` (default 0.10).
"""

import json
import os
import time

from repro.experiments.serve import bounded_shuffle
from repro.serving import ShardedCordialEngine, SupervisorConfig

PERF_OUTPUT = os.environ.get("REPRO_PERF_SUPERVISION_OUTPUT",
                             "BENCH_supervision.json")
MAX_OVERHEAD = float(os.environ.get("REPRO_PERF_SUPERVISION_MAX_OVERHEAD",
                                    "0.10"))

N_SHARDS = 4
MAX_SKEW = 3600.0


def serve(engine, stream, fault_at=None):
    start = time.perf_counter()
    for index, record in enumerate(stream):
        engine.submit(record)
        if index == fault_at:
            engine.inject_fault(0, "crash")
    outcome = engine.finish()
    return outcome, time.perf_counter() - start


def test_supervision_overhead(context):
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = bounded_shuffle(
        [r for r in context.dataset.store if r.bank_key in test_set],
        MAX_SKEW, seed=1)
    config = SupervisorConfig(max_restarts=3, snapshot_every=8,
                              backoff_base=0.0)

    # Untimed warmup: pay one-time lazy-init costs (feature caches,
    # booster state) before the comparison, so the first timed engine
    # isn't handicapped.
    warmup = ShardedCordialEngine(cordial, N_SHARDS, max_skew=MAX_SKEW)
    try:
        serve(warmup, stream[:512])
    finally:
        warmup.close()

    plain_engine = ShardedCordialEngine(cordial, N_SHARDS, max_skew=MAX_SKEW)
    try:
        plain, t_plain = serve(plain_engine, stream)
    finally:
        plain_engine.close()

    clean_engine = ShardedCordialEngine(cordial, N_SHARDS, max_skew=MAX_SKEW,
                                        supervisor=config)
    try:
        clean, t_clean = serve(clean_engine, stream)
    finally:
        clean_engine.close()

    crash_engine = ShardedCordialEngine(cordial, N_SHARDS, max_skew=MAX_SKEW,
                                        supervisor=config)
    try:
        crashed, t_crash = serve(crash_engine, stream,
                                 fault_at=len(stream) // 2)
    finally:
        crash_engine.close()

    overhead = t_clean / t_plain - 1.0
    record = {
        "events": len(stream),
        "decisions": len(plain.decisions),
        "n_shards": N_SHARDS,
        "snapshot_every": config.snapshot_every,
        "unsupervised_s": round(t_plain, 3),
        "supervised_clean_s": round(t_clean, 3),
        "supervised_crash_s": round(t_crash, 3),
        "events_per_s_unsupervised": round(len(stream) / t_plain, 1),
        "events_per_s_supervised": round(len(stream) / t_clean, 1),
        "clean_overhead": round(overhead, 4),
        "crash_restarts": crash_engine.supervisor_metrics.counter_value(
            "supervisor.restarts_total"),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nshard supervision: {record}")

    # The perf claim never compromises the equivalence contract: the
    # supervised runs — crashed or not — match the unsupervised one.
    plain_decisions = [d.to_obj() for d in plain.decisions]
    assert [d.to_obj() for d in clean.decisions] == plain_decisions
    assert [d.to_obj() for d in crashed.decisions] == plain_decisions
    assert clean.stats == plain.stats
    assert crashed.stats == plain.stats
    assert record["crash_restarts"] >= 1.0
    assert overhead < MAX_OVERHEAD, (
        f"supervision cost {overhead:.1%} of the clean run's wall clock "
        f"(budget {MAX_OVERHEAD:.0%}; timings in {PERF_OUTPUT})")
