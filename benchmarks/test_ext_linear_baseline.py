"""Extension — tree models vs a linear baseline on pattern classification.

The paper picks tree models for their fit to tabular error features; this
bench quantifies the gap against an L2 logistic regression trained on the
identical features.
"""

from conftest import emit
from repro.core.features import BankPatternFeaturizer
from repro.core.pipeline import collect_triggers
from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import precision_recall_f1, weighted_average


def run(context):
    train, test = context.split
    featurizer = BankPatternFeaturizer()
    train_triggers = collect_triggers(context.dataset, train)
    test_triggers = collect_triggers(context.dataset, test)
    X_train = featurizer.extract_many([t.history for t in train_triggers])
    y_train = [context.dataset.bank_truth[t.bank_key].pattern.value
               for t in train_triggers]
    X_test = featurizer.extract_many([t.history for t in test_triggers])
    y_test = [context.dataset.bank_truth[t.bank_key].pattern.value
              for t in test_triggers]
    results = {}
    for label, model in (
            ("logistic", LogisticRegressionClassifier(reg_lambda=1.0)),
            ("random forest", RandomForestClassifier(n_estimators=150,
                                                     max_depth=12,
                                                     class_weight="balanced",
                                                     random_state=0))):
        model.fit(X_train, y_train)
        scores = precision_recall_f1(y_test, model.predict(X_test))
        results[label] = weighted_average(scores).f1
    return results


def test_linear_baseline(benchmark, context):
    results = benchmark.pedantic(run, args=(context,), rounds=1,
                                 iterations=1)
    emit("Extension — linear baseline on pattern classification\n"
         + "\n".join(f"  {k:<14} weighted F1 = {v:.3f}"
                     for k, v in results.items()))
    assert results["random forest"] >= results["logistic"] - 0.02
