"""Perf bound of the observability layer: obs-on stays close to obs-off.

Streams the benchmark fleet's test split through ``CordialService``
twice — once bare, once with the full observability bundle (tracer +
journal-to-disk + audit trail) — and records both throughputs to a
``BENCH_obs.json`` artifact.  The observed run must stay within
``OBS_OVERHEAD_TOLERANCE`` of the bare run (the ISSUE bound is 15 %;
the assertion allows the measured median to breathe on noisy CI boxes
by taking the best of ``REPEATS`` interleaved pairs), and the decision
streams must be identical — the perf claim never compromises the
equivalence contract.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared via
``conftest``), ``REPRO_PERF_OBS_OUTPUT`` (default ``BENCH_obs.json``).
"""

import json
import os
import time

from repro.core.online import CordialService
from repro.experiments.serve import serve_stream
from repro.obs import Observability

PERF_OUTPUT = os.environ.get("REPRO_PERF_OBS_OUTPUT", "BENCH_obs.json")

#: The observed serving path may cost at most this multiple of the bare
#: path (ISSUE bound: < 15 % overhead).
OBS_OVERHEAD_TOLERANCE = 1.15

#: Interleaved timing pairs; the best ratio is asserted, the median is
#: reported.  Interleaving cancels slow-start and cache effects that a
#: single A/B pair would mistake for obs overhead.
REPEATS = 3


def test_obs_overhead_is_bounded(context, tmp_path):
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = [r for r in context.dataset.store if r.bank_key in test_set]

    def serve_bare():
        service = CordialService(cordial)
        start = time.perf_counter()
        _, decisions = serve_stream(service, stream)
        return time.perf_counter() - start, decisions

    def serve_observed(run_index):
        obs = Observability.create(tmp_path / f"obs-{run_index}")
        service = CordialService(cordial, obs=obs)
        start = time.perf_counter()
        _, decisions = serve_stream(service, stream)
        elapsed = time.perf_counter() - start
        obs.journal.close()
        return elapsed, decisions, obs

    # Warm both paths once (JIT-ish caches, page cache for the journal).
    serve_bare()
    serve_observed("warmup")

    pairs = []
    for index in range(REPEATS):
        t_bare, bare_decisions = serve_bare()
        t_obs, obs_decisions, obs = serve_observed(index)
        assert ([d.to_obj() for d in obs_decisions]
                == [d.to_obj() for d in bare_decisions])
        pairs.append((t_bare, t_obs))

    ratios = sorted(t_obs / t_bare for t_bare, t_obs in pairs)
    best_ratio = ratios[0]
    median_ratio = ratios[len(ratios) // 2]
    journal_events = obs.journal.summary()["events_journalled"]
    audit_records = len(obs.audit.records)

    record = {
        "events": len(stream),
        "decisions": len(bare_decisions),
        "repeats": REPEATS,
        "bare_s": [round(b, 3) for b, _ in pairs],
        "observed_s": [round(o, 3) for _, o in pairs],
        "best_overhead_ratio": round(best_ratio, 4),
        "median_overhead_ratio": round(median_ratio, 4),
        "tolerance_ratio": OBS_OVERHEAD_TOLERANCE,
        "journal_events": journal_events,
        "audit_records": audit_records,
        "spans_started": obs.tracer.spans_started,
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nobs overhead: {record}")

    assert audit_records == sum(
        1 for _ in bare_decisions), "audit missed decisions"
    assert best_ratio <= OBS_OVERHEAD_TOLERANCE, (
        f"observability overhead too high: best ratio {best_ratio:.3f} "
        f"(median {median_ratio:.3f}) exceeds "
        f"{OBS_OVERHEAD_TOLERANCE} (timings in {PERF_OUTPUT})")
