"""Extension — Cordial robustness across what-if fleet scenarios.

Trains once on the calibrated baseline, replays against named scenarios
(see ``repro.faults.scenarios``) and reports coverage per regime — the
capacity-planning view of Table IV.
"""

from conftest import BENCH_SCALE, emit
from repro.core.pipeline import Cordial, evaluate_neighbor_baseline
from repro.datasets import generate_fleet_dataset
from repro.faults.scenarios import SCENARIOS


def run(context):
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(context.dataset, context.split[0])
    rows = {}
    for name in ("baseline", "aged-fleet", "tsv-dominant", "sudden-heavy"):
        dataset = generate_fleet_dataset(
            SCENARIOS[name](min(BENCH_SCALE, 0.2)), seed=99)
        banks = dataset.uer_banks
        evaluation = model.evaluate(dataset, banks)
        baseline = evaluate_neighbor_baseline(dataset, banks)
        rows[name] = (evaluation.icr.icr, baseline.icr.icr,
                      evaluation.icr.spared_banks)
    return rows


def test_scenario_robustness(benchmark, context):
    rows = benchmark.pedantic(run, args=(context,), rounds=1, iterations=1)
    lines = ["Extension — scenario robustness (train on baseline only)",
             f"{'scenario':<14}{'Cordial ICR':>12}{'baseline ICR':>14}"
             f"{'banks spared':>14}"]
    for name, (icr, base_icr, banks) in rows.items():
        lines.append(f"{name:<14}{icr:>12.2%}{base_icr:>14.2%}{banks:>14}")
    emit("\n".join(lines))
    # Cordial holds its lead on every spatial scenario; the sudden-heavy
    # regime is allowed to erode it (that is the scenario's point).
    for name in ("baseline", "aged-fleet", "tsv-dominant"):
        icr, base_icr, _ = rows[name]
        assert icr > base_icr, name
    assert rows["tsv-dominant"][2] > rows["baseline"][2]
