"""Extension — are the cross-row probabilities calibrated?

Thresholding assumes meaningful probabilities; this bench measures Brier
score / ECE of the raw block probabilities and after Platt / isotonic
calibration.  Calibrators must see *out-of-sample* probabilities (the
model interpolates its own training blocks), so they are fitted on one
half of the test banks and scored on the other.
"""

import numpy as np

from conftest import emit
from repro.core.pipeline import collect_triggers
from repro.ml.calibration import (IsotonicCalibrator, PlattCalibrator,
                                  brier_score, expected_calibration_error)


def run(context):
    model = context.model("Random Forest")
    predictor = model.predictor

    def blocks(banks):
        xs, ys = [], []
        for trig in collect_triggers(context.dataset, banks):
            truth = context.dataset.bank_truth[trig.bank_key]
            if not truth.pattern.is_aggregation:
                continue
            X, y = predictor.build_samples(
                trig.history, trig.uer_rows[-1], trig.timestamp,
                truth.future_uer_rows(trig.timestamp))
            xs.append(X)
            ys.append(y)
        return np.vstack(xs), np.concatenate(ys)

    _, test = context.split
    half = len(test) // 2
    X_cal, y_cal = blocks(test[:half])
    X_eval, y_eval = blocks(test[half:])
    p_cal = predictor.predict_proba_matrix(X_cal)
    p_eval = predictor.predict_proba_matrix(X_eval)

    platt = PlattCalibrator().fit(p_cal, y_cal)
    isotonic = IsotonicCalibrator().fit(p_cal, y_cal)
    out = {}
    for label, probs in (("raw", p_eval),
                         ("platt", platt.transform(p_eval)),
                         ("isotonic", isotonic.transform(p_eval))):
        out[label] = (brier_score(probs, y_eval),
                      expected_calibration_error(probs, y_eval))
    return out


def test_crossrow_calibration(benchmark, context):
    results = benchmark.pedantic(run, args=(context,), rounds=1,
                                 iterations=1)
    emit("Extension — cross-row probability calibration (test blocks)\n"
         + "\n".join(f"  {k:<9} brier={b:.4f} ece={e:.4f}"
                     for k, (b, e) in results.items()))
    # calibration never blows up the Brier score (small calibration sets
    # cost a little; divergence would cost orders of magnitude)
    raw = results["raw"][0]
    assert results["platt"][0] < raw * 1.5
    assert results["isotonic"][0] < raw * 1.5
