"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the measured-vs-paper comparison (run pytest with ``-s`` to see the
tables inline; they are also echoed into the captured output).

The fleet scale is configurable through ``REPRO_BENCH_SCALE`` (default
0.35 — large enough for stable statistics, small enough to finish the
whole suite in a few minutes; use 1.0 to reproduce the paper's dataset
magnitude exactly).
"""

import os

import pytest

from repro.experiments.common import ExperimentContext

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def context():
    """One shared experiment context: dataset + split + fitted models."""
    return ExperimentContext(scale=BENCH_SCALE, seed=BENCH_SEED)


def emit(text: str) -> None:
    """Print a result table (visible with ``pytest -s``)."""
    print("\n" + text)
