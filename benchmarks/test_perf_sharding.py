"""Perf smoke test of the sharded fleet serving engine.

Streams the benchmark fleet's test split through a 4-shard
``ShardedCordialEngine`` twice — all shards in-process (``n_jobs=1``)
and fanned out over 4 worker processes (``n_jobs=4``) — and records both
throughputs plus the speedup to a ``BENCH_sharding.json`` artifact.  The
engines must agree decision for decision (the bit-invariance contract),
and the fan-out must actually buy wall clock: parallelism is pointless
if routing and IPC eat the win.

Engine construction (process spawn + pipeline shipping) happens outside
the timed window on both sides: the claim is steady-state serving
throughput, not cold start.

Tunables: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` (shared with the
other benches via ``conftest``), ``REPRO_PERF_SHARDING_OUTPUT`` (default
``BENCH_sharding.json``), ``REPRO_PERF_SHARDING_MIN_SPEEDUP`` (default
1.0 — "4 workers beat 1").
"""

import json
import os
import time

import pytest

from repro.experiments.serve import bounded_shuffle
from repro.serving import ShardedCordialEngine

PERF_OUTPUT = os.environ.get("REPRO_PERF_SHARDING_OUTPUT",
                             "BENCH_sharding.json")
MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_SHARDING_MIN_SPEEDUP", "1.0"))

N_SHARDS = 4
N_JOBS = 4
MAX_SKEW = 3600.0


def serve(engine, stream):
    start = time.perf_counter()
    for record in stream:
        engine.submit(record)
    outcome = engine.finish()
    return outcome, time.perf_counter() - start


@pytest.mark.skipif((os.cpu_count() or 1) < N_JOBS,
                    reason=f"needs >= {N_JOBS} cores for a meaningful "
                           "speedup measurement")
def test_sharded_engine_speedup(context):
    cordial = context.model("LightGBM")
    _, test_banks = context.split
    test_set = set(test_banks)
    stream = bounded_shuffle(
        [r for r in context.dataset.store if r.bank_key in test_set],
        MAX_SKEW, seed=1)

    serial_engine = ShardedCordialEngine(cordial, N_SHARDS, n_jobs=1,
                                         max_skew=MAX_SKEW)
    try:
        serial, t_serial = serve(serial_engine, stream)
    finally:
        serial_engine.close()

    parallel_engine = ShardedCordialEngine(cordial, N_SHARDS, n_jobs=N_JOBS,
                                           max_skew=MAX_SKEW)
    try:
        parallel, t_parallel = serve(parallel_engine, stream)
    finally:
        parallel_engine.close()

    speedup = t_serial / t_parallel
    record = {
        "events": len(stream),
        "decisions": len(serial.decisions),
        "n_shards": N_SHARDS,
        "n_jobs": N_JOBS,
        "serial_s": round(t_serial, 3),
        "parallel_s": round(t_parallel, 3),
        "events_per_s_serial": round(len(stream) / t_serial, 1),
        "events_per_s_parallel": round(len(stream) / t_parallel, 1),
        "speedup": round(speedup, 3),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nsharded serving: {record}")

    # The perf claim never compromises the equivalence contract.
    serial_decisions = [d.to_obj() for d in serial.decisions]
    parallel_decisions = [d.to_obj() for d in parallel.decisions]
    assert serial_decisions == parallel_decisions
    assert serial.stats == parallel.stats
    assert serial.metrics == parallel.metrics
    assert speedup > MIN_SPEEDUP, (
        f"{N_JOBS}-worker fleet did not beat 1 worker: "
        f"{t_parallel:.2f}s vs {t_serial:.2f}s "
        f"(timings in {PERF_OUTPUT})")
