"""Perf smoke test of the sharded parallel generation engine.

Asserts that sharded generation at ``scale=2.0, jobs=4`` is no slower
than the sequential path (within a small jitter margin) and records the
timings to a ``BENCH_parallel.json`` artifact.  Skipped on machines with
fewer than 4 cores, where process parallelism cannot win.

Tunables: ``REPRO_PERF_SCALE`` (default 2.0), ``REPRO_PERF_JOBS``
(default 4), ``REPRO_PERF_OUTPUT`` (default ``BENCH_parallel.json`` in
the working directory).
"""

import json
import os
import time

import pytest

from repro.datasets import FleetGenConfig, fleet_digest, generate_fleet_dataset

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "2.0"))
PERF_JOBS = int(os.environ.get("REPRO_PERF_JOBS", "4"))
PERF_SEED = int(os.environ.get("REPRO_PERF_SEED", "0"))
PERF_OUTPUT = os.environ.get("REPRO_PERF_OUTPUT", "BENCH_parallel.json")

#: Allowed jitter: "no slower" with a margin that absorbs CI noise.
SLOWDOWN_TOLERANCE = 1.10


@pytest.mark.skipif((os.cpu_count() or 1) < PERF_JOBS,
                    reason=f"needs >= {PERF_JOBS} cores for process "
                           "parallelism to pay off")
def test_sharded_generation_not_slower_than_sequential():
    config = FleetGenConfig(scale=PERF_SCALE)

    start = time.perf_counter()
    sequential = generate_fleet_dataset(config, seed=PERF_SEED, jobs=1)
    t_sequential = time.perf_counter() - start

    start = time.perf_counter()
    parallel = generate_fleet_dataset(config, seed=PERF_SEED,
                                      jobs=PERF_JOBS)
    t_parallel = time.perf_counter() - start

    record = {
        "scale": PERF_SCALE,
        "seed": PERF_SEED,
        "jobs": PERF_JOBS,
        "events": len(sequential.store),
        "sequential_s": round(t_sequential, 3),
        "parallel_s": round(t_parallel, 3),
        "speedup": round(t_sequential / t_parallel, 3),
        "cpu_count": os.cpu_count(),
    }
    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nparallel generation: {record}")

    # The perf claim never compromises the determinism contract.
    assert fleet_digest(sequential) == fleet_digest(parallel)
    assert t_parallel <= t_sequential * SLOWDOWN_TOLERANCE, (
        f"sharded generation slower than sequential: {t_parallel:.2f}s vs "
        f"{t_sequential:.2f}s (timings in {PERF_OUTPUT})")
