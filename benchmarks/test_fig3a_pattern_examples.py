"""Benchmark E5 — regenerate Figure 3(a) (example bank error maps)."""

from conftest import emit
from repro.experiments import fig3


def test_fig3a_pattern_examples(benchmark, context):
    result = benchmark.pedantic(fig3.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format_examples())
    # One example per observable mechanism, with plotted error addresses.
    assert len(result.examples) == 5
    for label, points in result.examples.items():
        assert len(points) >= 3, label
