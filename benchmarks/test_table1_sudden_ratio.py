"""Benchmark E1 — regenerate Table I (in-row predictable ratio of UERs)."""

from conftest import emit
from repro.experiments import table1


def test_table1_sudden_ratio(benchmark, context):
    result = benchmark.pedantic(table1.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    # Shape: predictability collapses towards row level (paper: 41.9% -> 4.4%)
    assert result.is_monotone_decreasing()
    rows = result.rows
    assert rows["Row"][2] < 0.12
    assert rows["NPU"][2] > rows["Row"][2] + 0.15
