"""Benchmark E4 — regenerate Table IV (cross-row prediction + ICR)."""

from conftest import emit
from repro.experiments import table4


def test_table4_crossrow_prediction(benchmark, context):
    result = benchmark.pedantic(table4.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    # Paper's headline claims, as shapes:
    assert result.cordial_beats_baseline()
    assert result.f1_improvement() > 0.5     # paper: +90.7 %
    assert result.icr_improvement() > 0.15   # paper: +47.1 %
