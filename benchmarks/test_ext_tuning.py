"""Extension — do the paper's hyperparameters matter?

Grid-searches the pattern classifier's capacity knobs with stratified CV
and reports whether the defaults sit near the optimum.
"""

import numpy as np

from conftest import emit
from repro.core.features import BankPatternFeaturizer
from repro.core.pipeline import collect_triggers
from repro.ml.lgbm import LGBMClassifier
from repro.ml.tuning import grid_search


def run(context):
    featurizer = BankPatternFeaturizer()
    triggers = collect_triggers(context.dataset, context.split[0])
    X = featurizer.extract_many([t.history for t in triggers])
    y = np.asarray([context.dataset.bank_truth[t.bank_key].pattern.value
                    for t in triggers])
    result = grid_search(
        lambda num_leaves, n_estimators: LGBMClassifier(
            num_leaves=num_leaves, n_estimators=n_estimators,
            min_child_samples=5, random_state=0),
        {"num_leaves": [7, 31], "n_estimators": [30, 120]},
        X, y, n_splits=3, seed=0)
    return result


def test_hyperparameter_sensitivity(benchmark, context):
    result = benchmark.pedantic(run, args=(context,), rounds=1,
                                iterations=1)
    lines = ["Extension — LightGBM pattern-classifier grid search "
             "(3-fold CV accuracy)"]
    for params, score in result.ranked():
        lines.append(f"  {dict(params)}  ->  {score:.3f}")
    emit("\n".join(lines))
    scores = [score for _, score in result.ranked()]
    assert result.best_score > 0.8
    # the task is not hyperparameter-fragile: the whole grid lands close
    assert scores[0] - scores[-1] < 0.15
