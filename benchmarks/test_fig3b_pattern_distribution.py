"""Benchmark E6 — regenerate Figure 3(b) (bank failure-pattern mix)."""

from conftest import emit
from repro.experiments import fig3


def test_fig3b_pattern_distribution(benchmark, context):
    result = benchmark.pedantic(fig3.run, args=(context,),
                                rounds=1, iterations=1)
    emit(result.format())
    assert result.distribution["Single-row Clustering"] > 0.55
    assert 0.70 < result.aggregation_share() < 0.90
    assert result.max_abs_error() < 0.08
