"""Perf smoke test of the parallel model-training engine.

Fits the three model families serially and with ``REPRO_PERF_JOBS``
workers on a synthetic multiclass problem sized like the cross-row block
task, asserts the forest's parallel fit clears a speedup floor, and
records every timing to a ``BENCH_training.json`` artifact.  Skipped on
machines with fewer than 4 cores, where process parallelism cannot win.

Tunables: ``REPRO_PERF_TRAIN_SAMPLES`` (default 6000),
``REPRO_PERF_JOBS`` (default 4), ``REPRO_PERF_SEED`` (default 0),
``REPRO_PERF_TRAIN_FLOOR`` (default 2.0, the forest-fit speedup floor),
``REPRO_PERF_TRAIN_OUTPUT`` (default ``BENCH_training.json``).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBClassifier
from repro.ml.lgbm import LGBMClassifier

PERF_SAMPLES = int(os.environ.get("REPRO_PERF_TRAIN_SAMPLES", "6000"))
PERF_JOBS = int(os.environ.get("REPRO_PERF_JOBS", "4"))
PERF_SEED = int(os.environ.get("REPRO_PERF_SEED", "0"))
#: Required serial/parallel fit-time ratio for the (embarrassingly
#: parallel) forest.  The boosting families only parallelise a round's
#: per-class trees, so they are recorded but not gated.
PERF_FLOOR = float(os.environ.get("REPRO_PERF_TRAIN_FLOOR", "2.0"))
PERF_OUTPUT = os.environ.get("REPRO_PERF_TRAIN_OUTPUT",
                             "BENCH_training.json")


def _block_like_dataset(n_samples, seed):
    """Synthetic stand-in for the cross-row block task: wide-ish,
    noisy, three classes."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, 24))
    raw = (X[:, 0] + 0.6 * X[:, 1] ** 2 - 0.8 * X[:, 2] * X[:, 3]
           + rng.normal(scale=0.7, size=n_samples))
    y = np.clip(np.digitize(raw, [-0.5, 0.8]), 0, 2)
    return X, y


def _factories():
    return {
        "forest": lambda jobs: RandomForestClassifier(
            n_estimators=120, max_depth=12, min_samples_leaf=2,
            class_weight="balanced", random_state=PERF_SEED, n_jobs=jobs),
        "xgb": lambda jobs: XGBClassifier(
            n_estimators=40, max_depth=6, subsample=0.9, colsample=0.8,
            random_state=PERF_SEED, n_jobs=jobs),
        "lgbm": lambda jobs: LGBMClassifier(
            n_estimators=40, num_leaves=31, min_child_samples=5,
            feature_fraction=0.8, random_state=PERF_SEED, n_jobs=jobs),
    }


@pytest.mark.skipif((os.cpu_count() or 1) < PERF_JOBS,
                    reason=f"needs >= {PERF_JOBS} cores for process "
                           "parallelism to pay off")
def test_parallel_training_speedup():
    X, y = _block_like_dataset(PERF_SAMPLES, PERF_SEED)
    record = {
        "samples": PERF_SAMPLES,
        "jobs": PERF_JOBS,
        "seed": PERF_SEED,
        "cpu_count": os.cpu_count(),
        "floor": PERF_FLOOR,
        "models": {},
    }
    probas = {}
    for family, make in _factories().items():
        start = time.perf_counter()
        serial = make(1).fit(X, y)
        t_serial = time.perf_counter() - start

        start = time.perf_counter()
        parallel = make(PERF_JOBS).fit(X, y)
        t_parallel = time.perf_counter() - start

        record["models"][family] = {
            "serial_s": round(t_serial, 3),
            "parallel_s": round(t_parallel, 3),
            "speedup": round(t_serial / t_parallel, 3),
        }
        probas[family] = (serial.predict_proba(X), parallel.predict_proba(X))

    with open(PERF_OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nparallel training: {record}")

    # The perf claim never compromises the bit-identity contract.
    for family, (p_serial, p_parallel) in probas.items():
        assert np.array_equal(p_serial, p_parallel), (
            f"{family}: parallel fit diverged from serial")
    forest = record["models"]["forest"]
    assert forest["speedup"] >= PERF_FLOOR, (
        f"forest parallel fit speedup {forest['speedup']:.2f}x below the "
        f"{PERF_FLOOR:.1f}x floor (timings in {PERF_OUTPUT})")
