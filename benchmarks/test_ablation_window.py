"""Ablation A2 — prediction-window size around the last UER row.

The paper derives the +/-64-row window from the Figure 4 chi-square peak
at 128 rows.  This bench sweeps the half-window and reports where coverage
(recall/ICR) stops paying for extra isolated rows.
"""

from conftest import emit
from repro.core.features import CrossRowWindow
from repro.core.pipeline import Cordial


def run_sweep(context):
    rows = {}
    train, test = context.split
    for half in (32, 64, 128):
        model = Cordial(model_name="LightGBM",
                        window=CrossRowWindow(half_window=half,
                                              block_rows=8),
                        random_state=0)
        model.fit(context.dataset, train)
        evaluation = model.evaluate(context.dataset, test)
        rows[half] = (evaluation.block_scores.f1, evaluation.icr.icr,
                      evaluation.icr.spared_rows)
    return rows


def test_ablation_window(benchmark, context):
    rows = benchmark.pedantic(run_sweep, args=(context,),
                              rounds=1, iterations=1)
    lines = ["Ablation A2 — half-window sweep (paper: 64 rows -> "
             "128-row range)",
             f"{'half':>6}{'block F1':>10}{'ICR':>8}{'rows spared':>13}"]
    for half, (f1, icr, spared) in rows.items():
        lines.append(f"{half:>6}{f1:>10.3f}{icr:>8.2%}{spared:>13}")
    emit("\n".join(lines))
    for half, (f1, icr, _) in rows.items():
        assert icr > 0.05, f"half={half}"
