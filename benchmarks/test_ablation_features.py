"""Ablation A4 — which feature family carries the classification signal.

Section IV-B motivates three families (spatial, temporal, count); this
bench retrains the pattern classifier on each family alone and on all
three together.
"""

from conftest import emit
from repro.core.classifier import FailurePatternClassifier
from repro.core.features import FamilyMaskedFeaturizer
from repro.core.pipeline import collect_triggers
from repro.ml.metrics import precision_recall_f1, weighted_average


def run_sweep(context):
    train, test = context.split
    train_triggers = collect_triggers(context.dataset, train)
    test_triggers = collect_triggers(context.dataset, test)
    train_hist = [t.history for t in train_triggers]
    train_y = [context.dataset.bank_truth[t.bank_key].pattern
               for t in train_triggers]
    test_hist = [t.history for t in test_triggers]
    test_y = [context.dataset.bank_truth[t.bank_key].pattern.value
              for t in test_triggers]

    results = {}
    variants = {
        "spatial only": ["spatial"],
        "temporal only": ["temporal"],
        "count only": ["count"],
        "all families": ["spatial", "temporal", "count"],
    }
    for label, families in variants.items():
        clf = FailurePatternClassifier(
            "Random Forest",
            featurizer=FamilyMaskedFeaturizer(families),
            random_state=0)
        clf.fit(train_hist, train_y)
        predicted = [p.value for p in clf.predict_many(test_hist)]
        scores = precision_recall_f1(test_y, predicted)
        results[label] = weighted_average(scores).f1
    return results


def test_ablation_features(benchmark, context):
    results = benchmark.pedantic(run_sweep, args=(context,),
                                 rounds=1, iterations=1)
    lines = ["Ablation A4 — feature-family knockout (pattern classifier)",
             f"{'variant':<16}{'weighted F1':>12}"]
    for label, f1 in results.items():
        lines.append(f"{label:<16}{f1:>12.3f}")
    emit("\n".join(lines))
    # Spatial features carry the pattern signal; the full set is at least
    # as good as temporal- or count-only.
    assert results["spatial only"] > results["count only"] - 0.05
    assert results["all families"] >= results["temporal only"] - 0.02
    assert results["all families"] > 0.6
