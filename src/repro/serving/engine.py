"""The sharded fleet serving engine: route, serve, merge, checkpoint.

:class:`ShardedCordialEngine` scales the online serving path across
worker processes while keeping the single-service contract bit for bit:

* records are routed by stable bank-key hash
  (:mod:`repro.serving.router`), so each shard's service sees exactly
  the sub-stream one big service would have seen for its banks;
* ingest is dispatched in batches over persistent workers
  (:mod:`repro.serving.workers`); the fitted pipeline crosses to each
  worker once, as a persistence document;
* decisions come back as per-shard segments and are merged into the
  global ``(timestamp, sequence)`` emission order
  (:mod:`repro.serving.merge`), and the per-shard states union into one
  real :class:`~repro.core.online.CordialService`, so reports, ICR
  scoring, and the chaos oracle run on the fleet unchanged;
* :meth:`checkpoint` writes a manifest + per-shard checkpoint directory
  (:mod:`repro.serving.checkpoint`) that :meth:`restore` can load onto a
  *different* shard count by re-routing bank state.

Decisions, ICR, spare budgets, and checkpoint-restored state are
bit-identical for any ``(n_shards, n_jobs)`` — both knobs are pure
wall-clock levers (``tests/test_sharded_serving.py`` locks this down).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.online import CordialService, Decision
from repro.core.pipeline import Cordial
from repro.ml.parallel import resolve_n_jobs
from repro.serving.checkpoint import (load_fleet_checkpoint,
                                      save_fleet_checkpoint)
from repro.serving.merge import (merge_decisions, merge_metrics,
                                 merge_service_states, merge_stats,
                                 split_service_state)
from repro.serving.router import FleetRouter
from repro.serving.supervisor import (DEFAULT_BATCH_TIMEOUT, FAILURE_CRASH,
                                      FAILURE_HANG, FAILURE_PROTOCOL,
                                      ShardFailureError, ShardSupervisor,
                                      SupervisorConfig)
from repro.serving.workers import ShardHost, worker_main
from repro.telemetry.collector import REASON_POISON
from repro.telemetry.events import ErrorRecord
from repro.telemetry.metrics import EXPORT_VERSION, MetricsRegistry

#: Records buffered per shard before a batch crosses to its worker.
BATCH_SIZE = 256


@dataclass
class FleetOutcome:
    """What a finished fleet run hands back to the caller.

    Attributes:
        decisions: the globally ordered decision stream.
        service: a real ``CordialService`` holding the merged fleet
            state — reports, coverage queries, and checkpoints work on
            it exactly as on a single-service run.
        stats: the merged :class:`ServiceStats` document.
        metrics: the merged counters export document (gauges/histograms
            dropped — they have no shard-count-invariant meaning).
        obs: per-shard observability blocks plus fleet roll-up, when the
            engine ran observed.
    """

    decisions: List[Decision]
    service: CordialService
    stats: dict
    metrics: dict
    obs: Optional[dict] = field(default=None)


class _LocalWorker:
    """In-process worker (``n_workers == 1``): the host runs inline.

    Host exceptions surface as :class:`ShardFailureError` of kind
    ``"crash"`` — the same classification a process worker's
    ``("error", traceback)`` reply gets — so supervision treats the two
    worker kinds identically and ``n_jobs`` stays a pure wall-clock
    knob even under fault injection.
    """

    supports_chaos = False

    def __init__(self, cordial: Cordial, config: dict,
                 shard_ids: Sequence[int], obs_spec: Optional[dict],
                 worker_index: int = 0) -> None:
        self.index = worker_index
        self._host = ShardHost(cordial, config, shard_ids, obs_spec)

    def _guard(self, op: str, call):
        try:
            return call()
        except ShardFailureError:
            raise
        except Exception as exc:
            raise ShardFailureError(
                FAILURE_CRASH, op, f"{type(exc).__name__}: {exc}",
                worker_index=self.index) from exc

    def load(self, shard_id: int, state: dict) -> None:
        self._guard("load", lambda: self._host.load(shard_id, state))

    def batch(self, shard_id: int, records: List[ErrorRecord]) -> None:
        self._guard("batch", lambda: self._host.batch(shard_id, records))

    def checkpoint(self) -> Dict[int, dict]:
        return self._guard("checkpoint", self._host.checkpoint)

    def snapshot(self) -> Dict[int, dict]:
        return self._guard("snapshot", self._host.snapshot)

    def finish(self) -> Dict[int, dict]:
        return self._guard("finish", self._host.finish)

    def ping(self) -> None:
        pass

    def terminate(self) -> None:
        pass

    def close(self) -> None:
        pass


class _ProcessWorker:
    """A spawned worker process driven over a duplex pipe.

    Every pipe interaction is wrapped in the typed failure surface:
    a closed pipe or worker-side exception raises
    :class:`ShardFailureError` of kind ``"crash"``, a reply missing its
    ``batch_timeout`` deadline (``poll()`` — never a blocking ``recv``)
    raises kind ``"hang"``, and an unintelligible or unexpected reply
    raises kind ``"protocol"``.  Raw ``EOFError`` / ``BrokenPipeError``
    / ``OSError`` never escape to callers.
    """

    supports_chaos = True

    def __init__(self, pipeline_document: dict, config: dict,
                 shard_ids: Sequence[int], obs_spec: Optional[dict],
                 worker_index: int = 0,
                 batch_timeout: float = DEFAULT_BATCH_TIMEOUT) -> None:
        self.index = worker_index
        self._batch_timeout = batch_timeout
        self._ping_token = 0
        context = multiprocessing.get_context("spawn")
        self._conn, child = context.Pipe()
        self._process = context.Process(target=worker_main, args=(child,),
                                        daemon=True)
        self._process.start()
        child.close()
        self._send(("init", {"pipeline": pipeline_document,
                             "config": config,
                             "shard_ids": list(shard_ids),
                             "obs": obs_spec}))

    def _fail(self, kind: str, op: str, detail: str,
              cause: Optional[BaseException] = None) -> ShardFailureError:
        error = ShardFailureError(kind, op, detail, worker_index=self.index)
        if cause is not None:
            error.__cause__ = cause
        return error

    def _send(self, message) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise self._fail(FAILURE_CRASH, message[0],
                             f"pipe closed while sending: {exc}", exc)

    def _ask(self, message, expect: str):
        op = message[0]
        self._send(message)
        try:
            ready = self._conn.poll(self._batch_timeout)
        except (BrokenPipeError, OSError) as exc:
            raise self._fail(FAILURE_CRASH, op,
                             f"pipe failed while waiting for a reply: {exc}",
                             exc)
        if not ready:
            raise self._fail(
                FAILURE_HANG, op,
                f"no reply within batch_timeout={self._batch_timeout}s")
        try:
            reply = self._conn.recv()
        except EOFError as exc:
            raise self._fail(FAILURE_CRASH, op,
                             "pipe closed before the reply", exc)
        except (BrokenPipeError, OSError) as exc:
            raise self._fail(FAILURE_CRASH, op,
                             f"pipe failed while receiving: {exc}", exc)
        except Exception as exc:
            raise self._fail(FAILURE_PROTOCOL, op,
                             f"undecodable reply: {exc}", exc)
        if not (isinstance(reply, tuple) and len(reply) == 2):
            raise self._fail(FAILURE_PROTOCOL, op,
                             f"unintelligible reply: {reply!r}")
        kind, payload = reply
        if kind == "error":
            raise self._fail(FAILURE_CRASH, op, f"worker raised:\n{payload}")
        if kind != expect:
            raise self._fail(FAILURE_PROTOCOL, op,
                             f"expected {expect!r} reply, got {kind!r}")
        return payload

    def load(self, shard_id: int, state: dict) -> None:
        self._send(("load", shard_id, state))

    def batch(self, shard_id: int, records: List[ErrorRecord]) -> None:
        self._send(("batch", shard_id, records))

    def checkpoint(self) -> Dict[int, dict]:
        return self._ask(("checkpoint",), "checkpoint")

    def snapshot(self) -> Dict[int, dict]:
        return self._ask(("snapshot",), "snapshot")

    def finish(self) -> Dict[int, dict]:
        return self._ask(("finish",), "finish")

    def ping(self) -> None:
        """Round-trip sync: proves every earlier message was processed."""
        self._ping_token += 1
        token = self._ping_token
        payload = self._ask(("ping", token), "pong")
        if payload != token:
            raise self._fail(FAILURE_PROTOCOL, "ping",
                             f"pong token mismatch: {payload!r} != {token!r}")

    def chaos(self, mode: str) -> None:
        """Queue one injected fault behind the already-sent messages."""
        self._send(("chaos", mode))

    def terminate(self) -> None:
        """Hard-kill the worker (recovery path: no goodbye protocol)."""
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck in kernel
            self._process.kill()
            self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError, ValueError):
            pass  # a dead worker is an acceptable outcome of a stop request
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - interpreter teardown
            pass


class ShardedCordialEngine:
    """Coordinator of a sharded fleet of ``CordialService`` shards.

    Args:
        cordial: a fitted pipeline; shipped to each worker once.
        n_shards: bank-key partitions.  Decisions/ICR/state are
            identical for any value; more shards expose more
            parallelism.
        n_jobs: worker processes (``ml.parallel.resolve_n_jobs``
            semantics; capped at ``n_shards``).  ``1`` runs every shard
            in-process — a pure wall-clock knob, never a results knob.
        spares_per_bank / max_skew: per-shard service configuration
            (the router shares ``max_skew`` for its global watermark).
        obs_dir: when given, every shard journals into
            ``obs_dir/shard-NN`` (restored engines under
            ``obs_dir/epoch-NN/shard-NN``, respawned workers under
            ``obs_dir/restart-NN/shard-NN`` — a journal file must never
            be re-opened by a second writer mid-run).
        supervisor: a :class:`SupervisorConfig` turns on shard
            supervision — crash/hang/protocol failures of one worker
            recover by deterministic replay instead of killing the run,
            and ``supervisor.batch_timeout`` governs every
            coordinator-side receive.  Output stays byte-identical to an
            unsupervised run (``tests/test_shard_supervision.py``).
        batch_timeout: receive deadline (seconds) when running
            *unsupervised* — a dead or hung worker fails fast with a
            typed :class:`ShardFailureError` instead of blocking
            forever.
    """

    def __init__(self, cordial: Cordial, n_shards: int, n_jobs: int = 1,
                 spares_per_bank: int = 64, max_skew: float = 0.0,
                 obs_dir: Optional[str] = None,
                 obs_provenance: Optional[dict] = None,
                 obs_attributions: bool = False,
                 batch_size: int = BATCH_SIZE, epoch: int = 0,
                 supervisor: Optional[SupervisorConfig] = None,
                 batch_timeout: float = DEFAULT_BATCH_TIMEOUT) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_timeout <= 0:
            raise ValueError("batch_timeout must be > 0")
        self.cordial = cordial
        self.n_shards = n_shards
        self.n_jobs = n_jobs
        self.n_workers = min(resolve_n_jobs(n_jobs), n_shards)
        self.spares_per_bank = spares_per_bank
        self.max_skew = max_skew
        self.obs_dir = obs_dir
        self.obs_provenance = obs_provenance
        self.obs_attributions = obs_attributions
        self.epoch = epoch
        self.router = FleetRouter(n_shards, max_skew=max_skew)
        self._batch_size = batch_size
        self._events_submitted = 0
        self._carried_stats: Optional[dict] = None
        self._carried_counters: Optional[Dict[str, float]] = None
        self._segments: List[List[Decision]] = []
        self._buffers: Dict[int, List[ErrorRecord]] = {
            shard_id: [] for shard_id in range(n_shards)}

        config = {"spares_per_bank": spares_per_bank, "max_skew": max_skew}
        self._worker_config = config
        self._pipeline_document: Optional[dict] = None
        self.supervisor_config = supervisor
        self._batch_timeout = (supervisor.batch_timeout
                               if supervisor is not None else batch_timeout)
        self._obs_base = None
        if obs_dir is not None:
            self._obs_base = (obs_dir if epoch == 0
                              else os.path.join(obs_dir, f"epoch-{epoch:02d}"))
        shard_ids_of = [
            [shard_id for shard_id in range(n_shards)
             if shard_id % self.n_workers == worker]
            for worker in range(self.n_workers)]
        self._workers: List = [
            self._spawn_worker(index, shard_ids, 0)
            for index, shard_ids in enumerate(shard_ids_of)]
        self._worker_of = {shard_id: self._workers[shard_id % self.n_workers]
                           for shard_id in range(n_shards)}

        self.supervisor_metrics: Optional[MetricsRegistry] = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._sup_obs = None
        if supervisor is not None:
            self.supervisor_metrics = MetricsRegistry()
            journal = audit = None
            if self._obs_base is not None:
                from repro.obs import Observability

                provenance = dict(obs_provenance or {})
                provenance["role"] = "supervisor"
                self._sup_obs = Observability.create(
                    os.path.join(self._obs_base, "supervisor"),
                    metrics=self.supervisor_metrics, provenance=provenance)
                journal, audit = self._sup_obs.journal, self._sup_obs.audit
            self._supervisor = ShardSupervisor(
                supervisor, spawn=self._spawn_worker,
                spawn_fallback=self._spawn_fallback,
                on_segment=lambda segment: self._segments.append(segment),
                on_poison=self._quarantine_poison,
                metrics=self.supervisor_metrics, journal=journal, audit=audit)
            for worker, shard_ids in zip(self._workers, shard_ids_of):
                self._supervisor.register(worker, shard_ids)

    # -- worker lifecycle ----------------------------------------------------
    def _worker_obs_spec(self, restart: int) -> Optional[dict]:
        """Observability spec for a (re)spawned worker.

        Respawns write under ``restart-NN`` so no journal file ever gets
        a second writer (mirrors the ``epoch-NN`` restore convention).
        """
        if self._obs_base is None:
            return None
        directory = (self._obs_base if restart == 0 else
                     os.path.join(self._obs_base, f"restart-{restart:02d}"))
        return {"directory": directory,
                "provenance": dict(self.obs_provenance or {}),
                "attributions": self.obs_attributions}

    def _spawn_worker(self, worker_index: int, shard_ids: Sequence[int],
                      restart: int):
        """A fresh worker of the engine's native kind."""
        obs_spec = self._worker_obs_spec(restart)
        if self.n_workers == 1:
            return _LocalWorker(self.cordial, self._worker_config, shard_ids,
                                obs_spec, worker_index=worker_index)
        if self._pipeline_document is None:
            from repro.core.persistence import pipeline_to_document

            self._pipeline_document = pipeline_to_document(self.cordial)
        return _ProcessWorker(self._pipeline_document, self._worker_config,
                              shard_ids, obs_spec, worker_index=worker_index,
                              batch_timeout=self._batch_timeout)

    def _spawn_fallback(self, worker_index: int, shard_ids: Sequence[int],
                        restart: int):
        """Degraded-mode fallback: the shards run in the coordinator."""
        return _LocalWorker(self.cordial, self._worker_config, shard_ids,
                            self._worker_obs_spec(restart),
                            worker_index=worker_index)

    def _quarantine_poison(self, record, shard_id: int, detail: str) -> None:
        """Dead-letter one poison record on the coordinator ledger.

        The record itself is *not* stored: rendering a poison record
        (``state_dict`` → ``record_to_obj``) could detonate it again.
        """
        timestamp = None
        try:
            timestamp = float(record.timestamp)
        except Exception:  # noqa: BLE001 - poison by definition misbehaves
            pass
        self.router.quarantine(REASON_POISON, detail, timestamp=timestamp)

    # -- streaming -----------------------------------------------------------
    def submit(self, record: ErrorRecord) -> None:
        """Route one event to its shard (or the quarantine ledger)."""
        self._events_submitted += 1
        shard_id = self.router.route(record)
        if shard_id is None:
            return
        buffered = self._buffers[shard_id]
        buffered.append(record)
        if len(buffered) >= self._batch_size:
            self._dispatch(shard_id)

    def _dispatch(self, shard_id: int) -> None:
        buffered = self._buffers[shard_id]
        if buffered:
            if self._supervisor is not None:
                self._supervisor.dispatch(shard_id, buffered)
            else:
                self._worker_of[shard_id].batch(shard_id, buffered)
            self._buffers[shard_id] = []

    def _dispatch_all(self) -> None:
        for shard_id in range(self.n_shards):
            self._dispatch(shard_id)

    def inject_fault(self, shard_id: int, mode: str) -> None:
        """Chaos hook: fault the worker owning ``shard_id``.

        ``mode`` is one of ``supervisor.FAULT_MODES`` (``"crash"``,
        ``"hang"``, ``"garbage"``).  Requires supervision — injecting a
        fault into an unsupervised fleet would just kill the run.
        """
        if self._supervisor is None:
            raise RuntimeError(
                "fault injection requires a supervised engine "
                "(pass supervisor=SupervisorConfig())")
        self._dispatch(shard_id)  # keep pre-fault records ahead of the fault
        self._supervisor.inject_fault(shard_id, mode)

    # -- checkpointing -------------------------------------------------------
    def checkpoint(self, directory: str) -> str:
        """Snapshot the fleet into a checkpoint directory (mid-stream).

        Returns the manifest path.  Decision segments drained at the
        snapshot stay with the engine and are merged at :meth:`finish`
        (or handed over via :meth:`drain_segments` on a restart).
        """
        self._dispatch_all()
        shard_documents: List[Optional[dict]] = [None] * self.n_shards
        if self._supervisor is not None:
            payloads = [self._supervisor.checkpoint_worker(slot)
                        for slot in self._supervisor.slots]
        else:
            payloads = [worker.checkpoint() for worker in self._workers]
        for payload in payloads:
            for shard_id, entry in sorted(payload.items()):
                shard_documents[shard_id] = entry["document"]
                self._segments.append(entry["decisions"])
        shard_states = [document["state"] for document in shard_documents]
        stats = merge_stats([state["stats"] for state in shard_states],
                            self._events_submitted,
                            carried=self._carried_stats)
        counters = merge_metrics(
            [state["metrics"] for state in shard_states],
            self.router.dead_letter_counts, stats["events_ingested"],
            carried_counters=self._carried_counters)
        config = {"spares_per_bank": self.spares_per_bank,
                  "max_skew": self.max_skew}
        return save_fleet_checkpoint(directory, shard_documents,
                                     self.router.state_dict(), stats,
                                     counters["counters"], config)

    def drain_segments(self) -> List[List[Decision]]:
        """Take ownership of the decision segments drained so far."""
        segments = self._segments
        self._segments = []
        return segments

    @classmethod
    def restore(cls, directory: str, n_shards: Optional[int] = None,
                n_jobs: int = 1, obs_dir: Optional[str] = None,
                obs_provenance: Optional[dict] = None,
                obs_attributions: bool = False,
                batch_size: int = BATCH_SIZE,
                epoch: int = 1,
                supervisor: Optional[SupervisorConfig] = None,
                batch_timeout: float = DEFAULT_BATCH_TIMEOUT
                ) -> "ShardedCordialEngine":
        """Restore a fleet from a checkpoint directory.

        ``n_shards`` defaults to the saved topology but may differ: the
        shard states are merged and re-split by the stable bank hash, so
        a fleet saved at 4 shards restores onto 2 (or 8) with
        bit-identical downstream behaviour.
        """
        manifest, services = load_fleet_checkpoint(directory)
        if n_shards is None:
            n_shards = int(manifest["n_shards"])
        merged_state = merge_service_states(
            [service.state_dict() for service in services],
            manifest["router"], manifest["stats"],
            {"version": EXPORT_VERSION,
             "counters": dict(manifest["counters"]), "gauges": {}})
        config = manifest["config"]
        engine = cls(services[0].cordial, n_shards, n_jobs=n_jobs,
                     spares_per_bank=int(config["spares_per_bank"]),
                     max_skew=float(config["max_skew"]), obs_dir=obs_dir,
                     obs_provenance=obs_provenance,
                     obs_attributions=obs_attributions,
                     batch_size=batch_size, epoch=epoch,
                     supervisor=supervisor, batch_timeout=batch_timeout)
        engine.router.load_state_dict(manifest["router"])
        engine._carried_stats = dict(manifest["stats"])
        engine._carried_counters = dict(manifest["counters"])
        for shard_id, state in enumerate(
                split_service_state(merged_state, n_shards)):
            if engine._supervisor is not None:
                # The restored split state becomes the slot baseline, so
                # a later failure replays from here, not from scratch.
                engine._supervisor.load(shard_id, state)
            else:
                engine._worker_of[shard_id].load(shard_id, state)
        return engine

    def restore_successor(self, directory: str) -> "ShardedCordialEngine":
        """The restarted engine that resumes from ``directory``.

        Carries this engine's topology and observability configuration
        forward (the successor journals under the next epoch directory).
        Close this engine first; its undrained segments should be taken
        with :meth:`drain_segments` before the handoff.
        """
        return ShardedCordialEngine.restore(
            directory, n_shards=self.n_shards, n_jobs=self.n_jobs,
            obs_dir=self.obs_dir, obs_provenance=self.obs_provenance,
            obs_attributions=self.obs_attributions,
            batch_size=self._batch_size, epoch=self.epoch + 1,
            supervisor=self.supervisor_config,
            batch_timeout=self._batch_timeout)

    # -- completion ----------------------------------------------------------
    def finish(self) -> FleetOutcome:
        """Flush every shard, merge, and return the fleet outcome."""
        self._dispatch_all()
        shard_states: List[Optional[dict]] = [None] * self.n_shards
        obs_blocks: Dict[str, dict] = {}
        if self._supervisor is not None:
            payloads = [self._supervisor.finish_worker(slot)
                        for slot in self._supervisor.slots]
        else:
            payloads = [worker.finish() for worker in self._workers]
        for payload in payloads:
            for shard_id, entry in sorted(payload.items()):
                self._segments.append(entry["decisions"])
                shard_states[shard_id] = entry["state"]
                if "obs" in entry:
                    obs_blocks[f"shard-{shard_id:02d}"] = entry["obs"]
        decisions = merge_decisions(self._segments)
        self._segments = []
        stats = merge_stats([state["stats"] for state in shard_states],
                            self._events_submitted,
                            carried=self._carried_stats)
        metrics = merge_metrics(
            [state["metrics"] for state in shard_states],
            self.router.dead_letter_counts, stats["events_ingested"],
            carried_counters=self._carried_counters)
        merged_state = merge_service_states(shard_states,
                                            self.router.state_dict(),
                                            stats, metrics)
        service = CordialService(self.cordial,
                                 spares_per_bank=self.spares_per_bank,
                                 max_skew=self.max_skew)
        service.load_state_dict(merged_state)
        obs = None
        if obs_blocks:
            obs = {
                "shards": obs_blocks,
                "merged": {
                    "journal_events_total": sum(
                        block["summary"]["journal"]["events_journalled"]
                        for block in obs_blocks.values()),
                    "audit_records_total": sum(
                        block["summary"]["audit"]["records"]
                        for block in obs_blocks.values()),
                },
            }
        if self._sup_obs is not None:
            artifacts = self._sup_obs.export(
                os.path.join(self._obs_base, "supervisor"),
                metrics=self.supervisor_metrics)
            obs = obs or {}
            obs["supervisor"] = {"artifacts": artifacts,
                                 "summary": self._sup_obs.summary()}
        return FleetOutcome(decisions=decisions, service=service,
                            stats=stats, metrics=metrics, obs=obs)

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._supervisor is not None:
            # Respawns replace slot workers; the supervisor knows the
            # live set (stale handles were terminated at replacement).
            self._supervisor.close()
            return
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ShardedCordialEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_stream_sharded(engine: ShardedCordialEngine,
                         records: Sequence[ErrorRecord],
                         checkpoint_dir: Optional[str] = None,
                         checkpoint_at: Optional[int] = None):
    """Feed ``records`` through a fleet engine (submit + finish).

    When ``checkpoint_dir`` and ``checkpoint_at`` are given, the fleet
    is snapshotted after ``checkpoint_at`` events, the engine is torn
    down, and a *restored* engine serves the remainder — the sharded
    crash/restart path, mirroring ``serve_stream``.  Raises
    ``ValueError`` when ``checkpoint_at`` lies outside the stream (a
    checkpoint that silently never fires is a misconfiguration, not a
    run).

    Returns ``(engine, outcome)`` — the engine actually finishing the
    stream, and a :class:`FleetOutcome` whose ``decisions`` span the
    whole run (pre- and post-restart segments globally merged).
    """
    if checkpoint_dir is not None and checkpoint_at is not None:
        if not 1 <= checkpoint_at <= len(records):
            raise ValueError(
                f"checkpoint_at={checkpoint_at} outside the stream "
                f"(1..{len(records)}); the checkpoint would never fire")
    early_segments: List[List[Decision]] = []
    for index, record in enumerate(records):
        engine.submit(record)
        if checkpoint_dir is not None and checkpoint_at == index + 1:
            engine.checkpoint(checkpoint_dir)
            early_segments.extend(engine.drain_segments())
            engine.close()
            engine = engine.restore_successor(checkpoint_dir)
    outcome = engine.finish()
    if early_segments:
        outcome.decisions = merge_decisions(
            early_segments + [outcome.decisions])
    return engine, outcome
