"""The sharded fleet serving engine: route, serve, merge, checkpoint.

:class:`ShardedCordialEngine` scales the online serving path across
worker processes while keeping the single-service contract bit for bit:

* records are routed by stable bank-key hash
  (:mod:`repro.serving.router`), so each shard's service sees exactly
  the sub-stream one big service would have seen for its banks;
* ingest is dispatched in batches over persistent workers
  (:mod:`repro.serving.workers`); the fitted pipeline crosses to each
  worker once, as a persistence document;
* decisions come back as per-shard segments and are merged into the
  global ``(timestamp, sequence)`` emission order
  (:mod:`repro.serving.merge`), and the per-shard states union into one
  real :class:`~repro.core.online.CordialService`, so reports, ICR
  scoring, and the chaos oracle run on the fleet unchanged;
* :meth:`checkpoint` writes a manifest + per-shard checkpoint directory
  (:mod:`repro.serving.checkpoint`) that :meth:`restore` can load onto a
  *different* shard count by re-routing bank state.

Decisions, ICR, spare budgets, and checkpoint-restored state are
bit-identical for any ``(n_shards, n_jobs)`` — both knobs are pure
wall-clock levers (``tests/test_sharded_serving.py`` locks this down).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.online import CordialService, Decision
from repro.core.pipeline import Cordial
from repro.ml.parallel import resolve_n_jobs
from repro.serving.checkpoint import (load_fleet_checkpoint,
                                      save_fleet_checkpoint)
from repro.serving.merge import (merge_decisions, merge_metrics,
                                 merge_service_states, merge_stats,
                                 split_service_state)
from repro.serving.router import FleetRouter
from repro.serving.workers import ShardHost, worker_main
from repro.telemetry.events import ErrorRecord
from repro.telemetry.metrics import EXPORT_VERSION

#: Records buffered per shard before a batch crosses to its worker.
BATCH_SIZE = 256


@dataclass
class FleetOutcome:
    """What a finished fleet run hands back to the caller.

    Attributes:
        decisions: the globally ordered decision stream.
        service: a real ``CordialService`` holding the merged fleet
            state — reports, coverage queries, and checkpoints work on
            it exactly as on a single-service run.
        stats: the merged :class:`ServiceStats` document.
        metrics: the merged counters export document (gauges/histograms
            dropped — they have no shard-count-invariant meaning).
        obs: per-shard observability blocks plus fleet roll-up, when the
            engine ran observed.
    """

    decisions: List[Decision]
    service: CordialService
    stats: dict
    metrics: dict
    obs: Optional[dict] = field(default=None)


class _LocalWorker:
    """In-process worker (``n_workers == 1``): the host runs inline."""

    def __init__(self, cordial: Cordial, config: dict,
                 shard_ids: Sequence[int], obs_spec: Optional[dict]) -> None:
        self._host = ShardHost(cordial, config, shard_ids, obs_spec)

    def load(self, shard_id: int, state: dict) -> None:
        self._host.load(shard_id, state)

    def batch(self, shard_id: int, records: List[ErrorRecord]) -> None:
        self._host.batch(shard_id, records)

    def checkpoint(self) -> Dict[int, dict]:
        return self._host.checkpoint()

    def finish(self) -> Dict[int, dict]:
        return self._host.finish()

    def close(self) -> None:
        pass


class _ProcessWorker:
    """A spawned worker process driven over a duplex pipe."""

    def __init__(self, pipeline_document: dict, config: dict,
                 shard_ids: Sequence[int], obs_spec: Optional[dict]) -> None:
        context = multiprocessing.get_context("spawn")
        self._conn, child = context.Pipe()
        self._process = context.Process(target=worker_main, args=(child,),
                                        daemon=True)
        self._process.start()
        child.close()
        self._send(("init", {"pipeline": pipeline_document,
                             "config": config,
                             "shard_ids": list(shard_ids),
                             "obs": obs_spec}))

    def _send(self, message) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                "shard worker died (pipe closed while sending "
                f"{message[0]!r})") from exc

    def _ask(self, message) -> Dict[int, dict]:
        self._send(message)
        try:
            kind, payload = self._conn.recv()
        except EOFError as exc:
            raise RuntimeError(
                f"shard worker died before replying to {message[0]!r}"
            ) from exc
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def load(self, shard_id: int, state: dict) -> None:
        self._send(("load", shard_id, state))

    def batch(self, shard_id: int, records: List[ErrorRecord]) -> None:
        self._send(("batch", shard_id, records))

    def checkpoint(self) -> Dict[int, dict]:
        return self._ask(("checkpoint",))

    def finish(self) -> Dict[int, dict]:
        return self._ask(("finish",))

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()


class ShardedCordialEngine:
    """Coordinator of a sharded fleet of ``CordialService`` shards.

    Args:
        cordial: a fitted pipeline; shipped to each worker once.
        n_shards: bank-key partitions.  Decisions/ICR/state are
            identical for any value; more shards expose more
            parallelism.
        n_jobs: worker processes (``ml.parallel.resolve_n_jobs``
            semantics; capped at ``n_shards``).  ``1`` runs every shard
            in-process — a pure wall-clock knob, never a results knob.
        spares_per_bank / max_skew: per-shard service configuration
            (the router shares ``max_skew`` for its global watermark).
        obs_dir: when given, every shard journals into
            ``obs_dir/shard-NN`` (restored engines under
            ``obs_dir/epoch-NN/shard-NN`` — a journal file must never be
            re-opened by a second writer mid-run).
    """

    def __init__(self, cordial: Cordial, n_shards: int, n_jobs: int = 1,
                 spares_per_bank: int = 64, max_skew: float = 0.0,
                 obs_dir: Optional[str] = None,
                 obs_provenance: Optional[dict] = None,
                 obs_attributions: bool = False,
                 batch_size: int = BATCH_SIZE, epoch: int = 0) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.cordial = cordial
        self.n_shards = n_shards
        self.n_jobs = n_jobs
        self.n_workers = min(resolve_n_jobs(n_jobs), n_shards)
        self.spares_per_bank = spares_per_bank
        self.max_skew = max_skew
        self.obs_dir = obs_dir
        self.obs_provenance = obs_provenance
        self.obs_attributions = obs_attributions
        self.epoch = epoch
        self.router = FleetRouter(n_shards, max_skew=max_skew)
        self._batch_size = batch_size
        self._events_submitted = 0
        self._carried_stats: Optional[dict] = None
        self._carried_counters: Optional[Dict[str, float]] = None
        self._segments: List[List[Decision]] = []
        self._buffers: Dict[int, List[ErrorRecord]] = {
            shard_id: [] for shard_id in range(n_shards)}

        config = {"spares_per_bank": spares_per_bank, "max_skew": max_skew}
        obs_spec = None
        if obs_dir is not None:
            directory = (obs_dir if epoch == 0
                         else os.path.join(obs_dir, f"epoch-{epoch:02d}"))
            obs_spec = {"directory": directory,
                        "provenance": dict(obs_provenance or {}),
                        "attributions": obs_attributions}
        shard_ids_of = [
            [shard_id for shard_id in range(n_shards)
             if shard_id % self.n_workers == worker]
            for worker in range(self.n_workers)]
        if self.n_workers == 1:
            self._workers: List = [
                _LocalWorker(cordial, config, shard_ids_of[0], obs_spec)]
        else:
            from repro.core.persistence import pipeline_to_document

            document = pipeline_to_document(cordial)
            self._workers = [
                _ProcessWorker(document, config, shard_ids, obs_spec)
                for shard_ids in shard_ids_of]
        self._worker_of = {shard_id: self._workers[shard_id % self.n_workers]
                           for shard_id in range(n_shards)}

    # -- streaming -----------------------------------------------------------
    def submit(self, record: ErrorRecord) -> None:
        """Route one event to its shard (or the quarantine ledger)."""
        self._events_submitted += 1
        shard_id = self.router.route(record)
        if shard_id is None:
            return
        buffered = self._buffers[shard_id]
        buffered.append(record)
        if len(buffered) >= self._batch_size:
            self._dispatch(shard_id)

    def _dispatch(self, shard_id: int) -> None:
        buffered = self._buffers[shard_id]
        if buffered:
            self._worker_of[shard_id].batch(shard_id, buffered)
            self._buffers[shard_id] = []

    def _dispatch_all(self) -> None:
        for shard_id in range(self.n_shards):
            self._dispatch(shard_id)

    # -- checkpointing -------------------------------------------------------
    def checkpoint(self, directory: str) -> str:
        """Snapshot the fleet into a checkpoint directory (mid-stream).

        Returns the manifest path.  Decision segments drained at the
        snapshot stay with the engine and are merged at :meth:`finish`
        (or handed over via :meth:`drain_segments` on a restart).
        """
        self._dispatch_all()
        shard_documents: List[Optional[dict]] = [None] * self.n_shards
        for worker in self._workers:
            for shard_id, entry in sorted(worker.checkpoint().items()):
                shard_documents[shard_id] = entry["document"]
                self._segments.append(entry["decisions"])
        shard_states = [document["state"] for document in shard_documents]
        stats = merge_stats([state["stats"] for state in shard_states],
                            self._events_submitted,
                            carried=self._carried_stats)
        counters = merge_metrics(
            [state["metrics"] for state in shard_states],
            self.router.dead_letter_counts, stats["events_ingested"],
            carried_counters=self._carried_counters)
        config = {"spares_per_bank": self.spares_per_bank,
                  "max_skew": self.max_skew}
        return save_fleet_checkpoint(directory, shard_documents,
                                     self.router.state_dict(), stats,
                                     counters["counters"], config)

    def drain_segments(self) -> List[List[Decision]]:
        """Take ownership of the decision segments drained so far."""
        segments = self._segments
        self._segments = []
        return segments

    @classmethod
    def restore(cls, directory: str, n_shards: Optional[int] = None,
                n_jobs: int = 1, obs_dir: Optional[str] = None,
                obs_provenance: Optional[dict] = None,
                obs_attributions: bool = False,
                batch_size: int = BATCH_SIZE,
                epoch: int = 1) -> "ShardedCordialEngine":
        """Restore a fleet from a checkpoint directory.

        ``n_shards`` defaults to the saved topology but may differ: the
        shard states are merged and re-split by the stable bank hash, so
        a fleet saved at 4 shards restores onto 2 (or 8) with
        bit-identical downstream behaviour.
        """
        manifest, services = load_fleet_checkpoint(directory)
        if n_shards is None:
            n_shards = int(manifest["n_shards"])
        merged_state = merge_service_states(
            [service.state_dict() for service in services],
            manifest["router"], manifest["stats"],
            {"version": EXPORT_VERSION,
             "counters": dict(manifest["counters"]), "gauges": {}})
        config = manifest["config"]
        engine = cls(services[0].cordial, n_shards, n_jobs=n_jobs,
                     spares_per_bank=int(config["spares_per_bank"]),
                     max_skew=float(config["max_skew"]), obs_dir=obs_dir,
                     obs_provenance=obs_provenance,
                     obs_attributions=obs_attributions,
                     batch_size=batch_size, epoch=epoch)
        engine.router.load_state_dict(manifest["router"])
        engine._carried_stats = dict(manifest["stats"])
        engine._carried_counters = dict(manifest["counters"])
        for shard_id, state in enumerate(
                split_service_state(merged_state, n_shards)):
            engine._worker_of[shard_id].load(shard_id, state)
        return engine

    def restore_successor(self, directory: str) -> "ShardedCordialEngine":
        """The restarted engine that resumes from ``directory``.

        Carries this engine's topology and observability configuration
        forward (the successor journals under the next epoch directory).
        Close this engine first; its undrained segments should be taken
        with :meth:`drain_segments` before the handoff.
        """
        return ShardedCordialEngine.restore(
            directory, n_shards=self.n_shards, n_jobs=self.n_jobs,
            obs_dir=self.obs_dir, obs_provenance=self.obs_provenance,
            obs_attributions=self.obs_attributions,
            batch_size=self._batch_size, epoch=self.epoch + 1)

    # -- completion ----------------------------------------------------------
    def finish(self) -> FleetOutcome:
        """Flush every shard, merge, and return the fleet outcome."""
        self._dispatch_all()
        shard_states: List[Optional[dict]] = [None] * self.n_shards
        obs_blocks: Dict[str, dict] = {}
        for worker in self._workers:
            for shard_id, entry in sorted(worker.finish().items()):
                self._segments.append(entry["decisions"])
                shard_states[shard_id] = entry["state"]
                if "obs" in entry:
                    obs_blocks[f"shard-{shard_id:02d}"] = entry["obs"]
        decisions = merge_decisions(self._segments)
        self._segments = []
        stats = merge_stats([state["stats"] for state in shard_states],
                            self._events_submitted,
                            carried=self._carried_stats)
        metrics = merge_metrics(
            [state["metrics"] for state in shard_states],
            self.router.dead_letter_counts, stats["events_ingested"],
            carried_counters=self._carried_counters)
        merged_state = merge_service_states(shard_states,
                                            self.router.state_dict(),
                                            stats, metrics)
        service = CordialService(self.cordial,
                                 spares_per_bank=self.spares_per_bank,
                                 max_skew=self.max_skew)
        service.load_state_dict(merged_state)
        obs = None
        if obs_blocks:
            obs = {
                "shards": obs_blocks,
                "merged": {
                    "journal_events_total": sum(
                        block["summary"]["journal"]["events_journalled"]
                        for block in obs_blocks.values()),
                    "audit_records_total": sum(
                        block["summary"]["audit"]["records"]
                        for block in obs_blocks.values()),
                },
            }
        return FleetOutcome(decisions=decisions, service=service,
                            stats=stats, metrics=metrics, obs=obs)

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ShardedCordialEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_stream_sharded(engine: ShardedCordialEngine,
                         records: Sequence[ErrorRecord],
                         checkpoint_dir: Optional[str] = None,
                         checkpoint_at: Optional[int] = None):
    """Feed ``records`` through a fleet engine (submit + finish).

    When ``checkpoint_dir`` and ``checkpoint_at`` are given, the fleet
    is snapshotted after ``checkpoint_at`` events, the engine is torn
    down, and a *restored* engine serves the remainder — the sharded
    crash/restart path, mirroring ``serve_stream``.  Raises
    ``ValueError`` when ``checkpoint_at`` lies outside the stream (a
    checkpoint that silently never fires is a misconfiguration, not a
    run).

    Returns ``(engine, outcome)`` — the engine actually finishing the
    stream, and a :class:`FleetOutcome` whose ``decisions`` span the
    whole run (pre- and post-restart segments globally merged).
    """
    if checkpoint_dir is not None and checkpoint_at is not None:
        if not 1 <= checkpoint_at <= len(records):
            raise ValueError(
                f"checkpoint_at={checkpoint_at} outside the stream "
                f"(1..{len(records)}); the checkpoint would never fire")
    early_segments: List[List[Decision]] = []
    for index, record in enumerate(records):
        engine.submit(record)
        if checkpoint_dir is not None and checkpoint_at == index + 1:
            engine.checkpoint(checkpoint_dir)
            early_segments.extend(engine.drain_segments())
            engine.close()
            engine = engine.restore_successor(checkpoint_dir)
    outcome = engine.finish()
    if early_segments:
        outcome.decisions = merge_decisions(
            early_segments + [outcome.decisions])
    return engine, outcome
