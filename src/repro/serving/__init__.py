"""`repro.serving`: the sharded fleet-scale serving engine.

Bank-level error locality makes Cordial's online path embarrassingly
shardable: every record routes to its bank's shard by a stable hash
(:mod:`~repro.serving.router`), each shard runs an independent
:class:`~repro.core.online.CordialService`
(:mod:`~repro.serving.workers`), and the coordinator merges decisions,
stats, metrics, and state back into single-service form
(:mod:`~repro.serving.merge`), with re-shardable fleet checkpoints
(:mod:`~repro.serving.checkpoint`).  The whole fleet is bit-identical to
one big service for any ``(n_shards, n_jobs)`` — both are pure
wall-clock knobs (``tests/test_sharded_serving.py``).
"""

from repro.serving.checkpoint import (FLEET_CHECKPOINT_FORMAT,
                                      FLEET_CHECKPOINT_VERSION, MANIFEST_FILE,
                                      load_fleet_checkpoint,
                                      load_fleet_manifest,
                                      save_fleet_checkpoint, shard_file_name)
from repro.serving.engine import (BATCH_SIZE, FleetOutcome,
                                  ShardedCordialEngine, serve_stream_sharded)
from repro.serving.merge import (merge_decisions, merge_metrics,
                                 merge_service_states, merge_stats,
                                 split_service_state)
from repro.serving.router import FleetRouter, shard_of_bank
from repro.serving.supervisor import (DEFAULT_BATCH_TIMEOUT, FAILURE_CRASH,
                                      FAILURE_HANG, FAILURE_KINDS,
                                      FAILURE_PROTOCOL, FAULT_MODES,
                                      ShardFailureError, ShardSupervisor,
                                      SupervisorConfig, backoff_delay)
from repro.serving.workers import ShardHost

__all__ = [
    "BATCH_SIZE", "DEFAULT_BATCH_TIMEOUT", "FAILURE_CRASH", "FAILURE_HANG",
    "FAILURE_KINDS", "FAILURE_PROTOCOL", "FAULT_MODES",
    "FLEET_CHECKPOINT_FORMAT", "FLEET_CHECKPOINT_VERSION",
    "FleetOutcome", "FleetRouter", "MANIFEST_FILE", "ShardFailureError",
    "ShardHost", "ShardSupervisor", "ShardedCordialEngine",
    "SupervisorConfig", "backoff_delay", "load_fleet_checkpoint",
    "load_fleet_manifest", "merge_decisions", "merge_metrics",
    "merge_service_states", "merge_stats", "save_fleet_checkpoint",
    "serve_stream_sharded", "shard_file_name", "shard_of_bank",
    "split_service_state",
]
