"""Deterministic bank-key routing for the sharded fleet engine.

Bank-level error locality (the paper's Section III observation the whole
method rests on) means every bank's stream is independent: no feature,
trigger, or sparing decision ever crosses a bank boundary.  The serving
path therefore shards *by bank key* — every record of a bank lands on
the same shard, so each shard's :class:`~repro.core.online.CordialService`
sees exactly the sub-stream a single service would have seen for those
banks, and per-bank state never needs to move.

Two design rules keep the fleet bit-identical to one big service:

* **stable hashing** — :func:`shard_of_bank` uses BLAKE2s over the
  canonical bank-key rendering, never Python's seed-randomised ``hash``,
  so the bank→shard map is a pure function of ``(bank_key, n_shards)``
  across processes, restarts, and machines;
* **coordinator-owned quarantine** — the router performs the collector's
  ingest checks (malformed / non-finite / late) against the *global*
  watermark before routing, reproducing
  :meth:`~repro.telemetry.collector.BMCCollector.ingest` byte for byte
  (same check order, same reason constants, same detail strings).  Shard
  collectors then never quarantine: their local watermark only ever
  trails the global one, so a record the router accepted can never be
  late on its shard.  The fleet's dead-letter ledger lives here, in one
  place, and merges trivially.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional

from repro.telemetry.collector import (REASON_LATE, REASON_MALFORMED,
                                       DeadLetter)
from repro.telemetry.events import ErrorRecord


def shard_of_bank(bank_key: tuple, n_shards: int) -> int:
    """The shard owning ``bank_key`` — stable across processes and runs.

    BLAKE2s over the comma-joined integer rendering of the key; Python's
    built-in ``hash`` is seed-randomised per process and would scatter
    the same bank to different shards on every restart.
    """
    rendered = ",".join(str(int(part)) for part in bank_key)
    digest = hashlib.blake2s(rendered.encode("ascii"), digest_size=8)
    return int.from_bytes(digest.digest(), "big") % n_shards


class FleetRouter:
    """Routes records to shards; owns the fleet-global quarantine.

    Args:
        n_shards: number of shards records are partitioned across.
        max_skew: tolerated timestamp disorder (must match the shard
            services' collectors — the router's watermark is the fleet's
            single source of truth for lateness).
        max_dead_letters: bounded evidence window, mirroring
            :class:`~repro.telemetry.collector.BMCCollector`.
    """

    def __init__(self, n_shards: int, max_skew: float = 0.0,
                 max_dead_letters: int = 1_000) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_skew < 0:
            raise ValueError("max_skew must be >= 0")
        self.n_shards = n_shards
        self.max_skew = max_skew
        self.max_dead_letters = max_dead_letters
        self._max_timestamp = float("-inf")
        self.dead_letters: List[DeadLetter] = []
        self.dead_letter_counts: Dict[str, int] = {}

    @property
    def watermark(self) -> float:
        """Events with timestamps below this are late (dead-lettered)."""
        return self._max_timestamp - self.max_skew

    def quarantine(self, reason: str, detail: str,
                   timestamp: Optional[float] = None,
                   record: Optional[ErrorRecord] = None) -> None:
        """Record one dead-lettered input (bounded list, exact counts)."""
        self.dead_letter_counts[reason] = (
            self.dead_letter_counts.get(reason, 0) + 1)
        if len(self.dead_letters) < self.max_dead_letters:
            self.dead_letters.append(DeadLetter(
                reason=reason, detail=detail, timestamp=timestamp,
                record=record))

    def route(self, record: ErrorRecord) -> Optional[int]:
        """Shard id for ``record``, or ``None`` when it was quarantined.

        The checks run in the exact order of ``BMCCollector.ingest`` and
        produce the exact detail strings, so the fleet's dead-letter
        ledger is byte-identical to a single service's.
        """
        if not isinstance(record, ErrorRecord):
            self.quarantine(REASON_MALFORMED,
                            f"not an ErrorRecord: {type(record).__name__}")
            return None
        if not math.isfinite(record.timestamp):
            self.quarantine(
                REASON_MALFORMED,
                f"non-finite timestamp: {record.timestamp} "
                f"(sequence {record.sequence})")
            return None
        if record.timestamp < self.watermark:
            self.quarantine(
                REASON_LATE,
                f"timestamp {record.timestamp} behind watermark "
                f"{self.watermark}",
                timestamp=record.timestamp, record=record)
            return None
        if record.timestamp > self._max_timestamp:
            self._max_timestamp = record.timestamp
        return shard_of_bank(record.bank_key, self.n_shards)

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready router state (deterministic layout).

        ``n_shards`` is deliberately *not* part of the state: a fleet
        checkpoint restores onto any shard count by re-routing bank
        state, and the ledger/watermark are shard-count-invariant.
        """
        from repro.telemetry.mcelog import record_to_obj

        return {
            "max_skew": self.max_skew,
            "max_dead_letters": self.max_dead_letters,
            "max_timestamp": (None if self._max_timestamp == float("-inf")
                              else self._max_timestamp),
            "dead_letters": [
                {"reason": d.reason, "detail": d.detail,
                 "timestamp": d.timestamp,
                 "record": (None if d.record is None
                            else record_to_obj(d.record))}
                for d in self.dead_letters
            ],
            "dead_letter_counts": {k: self.dead_letter_counts[k]
                                   for k in sorted(self.dead_letter_counts)},
        }

    def load_state_dict(self, state: dict) -> "FleetRouter":
        """Restore state captured by :meth:`state_dict`."""
        from repro.telemetry.mcelog import record_from_obj

        self.max_skew = float(state["max_skew"])
        self.max_dead_letters = int(state["max_dead_letters"])
        self._max_timestamp = (float("-inf")
                               if state["max_timestamp"] is None
                               else float(state["max_timestamp"]))
        self.dead_letters = [
            DeadLetter(reason=d["reason"], detail=d["detail"],
                       timestamp=d["timestamp"],
                       record=(None if d["record"] is None
                               else record_from_obj(d["record"])))
            for d in state["dead_letters"]
        ]
        self.dead_letter_counts = dict(state["dead_letter_counts"])
        return self
