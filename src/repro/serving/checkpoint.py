"""Fleet checkpoints: a manifest plus per-shard service checkpoint files.

A sharded engine snapshots into a *directory*::

    fleet.ckpt/
      manifest.json        # cordial-fleet-checkpoint: topology + router
                           # ledger + carried fleet stats/counters
      shard-00.ckpt.json   # ordinary cordial-service-checkpoint files,
      shard-01.ckpt.json   # self-contained (each embeds the pipeline)
      ...

The shard files are plain
:func:`~repro.core.persistence.save_service_checkpoint` documents, so
every existing tool that reads a service checkpoint reads a shard file
unchanged, and the corruption taxonomy
(:class:`~repro.core.persistence.CheckpointCorruptionError` for damage,
:class:`~repro.ml.persist.ModelPersistenceError` for honest version
skew) applies file by file.  Restoring re-routes bank state through
:func:`~repro.serving.merge.split_service_state`, so the saved and
restored shard counts are independent.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.core.persistence import (CheckpointCorruptionError,
                                    ModelPersistenceError)

FLEET_CHECKPOINT_FORMAT = "cordial-fleet-checkpoint"
FLEET_CHECKPOINT_VERSION = 1
SUPPORTED_FLEET_VERSIONS = (1,)

MANIFEST_FILE = "manifest.json"


def shard_file_name(shard_id: int) -> str:
    """Canonical shard checkpoint file name inside the directory."""
    return f"shard-{shard_id:02d}.ckpt.json"


def save_fleet_checkpoint(directory: Union[str, Path],
                          shard_documents: Sequence[dict],
                          router_state: dict, stats: dict, counters: dict,
                          config: dict) -> str:
    """Write a fleet checkpoint directory; returns the manifest path.

    Args:
        shard_documents: one ``cordial-service-checkpoint`` document per
            shard, in shard order.
        router_state: :meth:`FleetRouter.state_dict` output.
        stats: merged fleet :class:`ServiceStats` document (the restored
            engine carries these totals forward).
        counters: merged counters export document
            (:func:`~repro.serving.merge.merge_metrics` output).
        config: engine configuration (``spares_per_bank``, ``max_skew``,
            ...) echoed into the manifest for the restore path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names: List[str] = []
    for shard_id, document in enumerate(shard_documents):
        name = shard_file_name(shard_id)
        with open(directory / name, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        names.append(name)
    manifest = {
        "format": FLEET_CHECKPOINT_FORMAT,
        "version": FLEET_CHECKPOINT_VERSION,
        "n_shards": len(shard_documents),
        "shards": names,
        "router": router_state,
        "stats": stats,
        "counters": counters,
        "config": dict(config),
    }
    manifest_path = directory / MANIFEST_FILE
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    return str(manifest_path)


def load_fleet_manifest(directory: Union[str, Path]) -> dict:
    """Read and validate a fleet-checkpoint manifest.

    Error taxonomy mirrors ``service_from_document``: a garbled header,
    unparseable JSON, or a manifest referencing a missing shard file is
    :class:`CheckpointCorruptionError` (recovery code falls back to an
    older checkpoint); an honest-but-unsupported integer version is
    :class:`ModelPersistenceError`.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointCorruptionError(
            f"no {MANIFEST_FILE} under {directory} (not a fleet checkpoint, "
            "or a truncated one)")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptionError(
            f"unreadable fleet manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointCorruptionError(
            f"fleet manifest is {type(manifest).__name__}, not an object")
    fmt = manifest.get("format")
    if fmt != FLEET_CHECKPOINT_FORMAT:
        raise CheckpointCorruptionError(
            f"unrecognized fleet-checkpoint format: {fmt!r} "
            "(damaged header?)")
    version = manifest.get("version")
    if version not in SUPPORTED_FLEET_VERSIONS:
        if isinstance(version, int):
            raise ModelPersistenceError(
                f"unsupported fleet-checkpoint version: {version!r}")
        raise CheckpointCorruptionError(
            f"invalid fleet-checkpoint version: {version!r}")
    try:
        shards = list(manifest["shards"])
        if int(manifest["n_shards"]) != len(shards):
            raise CheckpointCorruptionError(
                f"fleet manifest claims {manifest['n_shards']} shards but "
                f"lists {len(shards)} files")
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorruptionError(
            f"corrupt fleet manifest payload: {type(exc).__name__}: "
            f"{exc}") from exc
    for name in shards:
        if os.path.basename(str(name)) != str(name):
            raise CheckpointCorruptionError(
                f"fleet manifest references a non-local shard file: {name!r}")
        if not (directory / str(name)).exists():
            raise CheckpointCorruptionError(
                f"fleet manifest references missing shard file: {name!r}")
    return manifest


def load_fleet_checkpoint(directory: Union[str, Path]
                          ) -> Tuple[dict, List["object"]]:
    """Load ``(manifest, [shard CordialService, ...])`` from a directory.

    Each shard file goes through
    :func:`~repro.core.persistence.load_service_checkpoint`, so per-file
    truncation/tampering surfaces as the same typed errors single-service
    recovery already handles.
    """
    from repro.core.persistence import load_service_checkpoint

    directory = Path(directory)
    manifest = load_fleet_manifest(directory)
    services = [load_service_checkpoint(directory / name)
                for name in manifest["shards"]]
    return manifest, services
