"""Shard hosts: the per-worker runtime of the fleet serving engine.

One :class:`ShardHost` owns one or more shards, each an independent
:class:`~repro.core.online.CordialService` with its own metrics registry
and (optionally) its own observability bundle writing into
``obs_dir/shard-NN``.  The host speaks a tiny message protocol — init /
load / batch / checkpoint / finish — and is deliberately process-agnostic:
the engine drives it directly in-process when one worker suffices, or
through :func:`worker_main` over a ``multiprocessing`` pipe when the
fleet fans out, and the two paths execute the identical code (the
``n_jobs`` bit-invariance contract of ``ml/parallel.py``, applied to
serving).

Batch messages get no replies — the coordinator streams ingest batches
one way and only synchronises on checkpoint/finish, so the pipe carries
pure producer→consumer backpressure and can never deadlock.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.core.online import CordialService, Decision
from repro.core.pipeline import Cordial
from repro.obs import Observability
from repro.telemetry.events import ErrorRecord
from repro.telemetry.metrics import MetricsRegistry


def shard_obs_directory(base: str, shard_id: int) -> str:
    """Observability directory of one shard under the run's base dir."""
    return os.path.join(base, f"shard-{shard_id:02d}")


class ShardHost:
    """Runs the shard services assigned to one worker.

    Args:
        cordial: the fitted pipeline (shared by every shard service).
        config: ``{"spares_per_bank": int, "max_skew": float}``.
        shard_ids: the shards this host owns.
        obs_spec: ``None`` or ``{"directory": str, "provenance": dict,
            "attributions": bool}`` — each shard gets its own bundle
            under ``directory/shard-NN`` with ``"shard": id`` stamped
            into its journal provenance.
    """

    def __init__(self, cordial: Cordial, config: dict,
                 shard_ids: Sequence[int],
                 obs_spec: Optional[dict] = None) -> None:
        self.cordial = cordial
        self.config = dict(config)
        self.obs_spec = obs_spec
        self.services: Dict[int, CordialService] = {}
        self.decisions: Dict[int, List[Decision]] = {}
        self._obs_dirs: Dict[int, str] = {}
        for shard_id in shard_ids:
            self.services[shard_id] = self._create_service(shard_id)
            self.decisions[shard_id] = []

    def _create_service(self, shard_id: int) -> CordialService:
        metrics = MetricsRegistry()
        obs = None
        if self.obs_spec is not None:
            directory = shard_obs_directory(self.obs_spec["directory"],
                                            shard_id)
            self._obs_dirs[shard_id] = directory
            provenance = dict(self.obs_spec.get("provenance") or {})
            provenance["shard"] = shard_id
            obs = Observability.create(
                directory, metrics=metrics, provenance=provenance,
                attributions=bool(self.obs_spec.get("attributions", False)))
        return CordialService(
            self.cordial,
            spares_per_bank=int(self.config["spares_per_bank"]),
            max_skew=float(self.config["max_skew"]),
            metrics=metrics, obs=obs)

    # -- protocol ------------------------------------------------------------
    def load(self, shard_id: int, state: dict) -> None:
        """Restore one shard from a split service state dict."""
        service = self.services[shard_id]
        service.load_state_dict(state)
        if service.obs is not None:
            service.obs.journal.checkpoint(
                "restore", at_event=service.stats.events_ingested)

    def batch(self, shard_id: int, records: Sequence[ErrorRecord]) -> None:
        """Ingest one routed batch; decisions buffer until a sync point."""
        service = self.services[shard_id]
        buffered = self.decisions[shard_id]
        for record in records:
            buffered.extend(service.ingest(record))

    def checkpoint(self) -> Dict[int, dict]:
        """Snapshot every shard; drains each shard's decision segment.

        The reorder buffers are *not* flushed — a checkpoint is a
        mid-stream snapshot, exactly like the single-service path.
        """
        from repro.core.persistence import service_to_document

        out: Dict[int, dict] = {}
        for shard_id in sorted(self.services):
            service = self.services[shard_id]
            if service.obs is not None:
                service.obs.journal.checkpoint(
                    "save", at_event=service.stats.events_ingested)
            out[shard_id] = {
                "document": service_to_document(service),
                "decisions": self._drain(shard_id),
            }
        return out

    def snapshot(self) -> Dict[int, dict]:
        """Supervision baseline: every shard's state dict + drained segment.

        Lighter than :meth:`checkpoint` (no persistence document, no
        journal event) — this is the supervisor's recovery point, not an
        operator-visible checkpoint, and it must leave no trace a clean
        run would lack.
        """
        out: Dict[int, dict] = {}
        for shard_id in sorted(self.services):
            out[shard_id] = {
                "state": self.services[shard_id].state_dict(),
                "decisions": self._drain(shard_id),
            }
        return out

    def finish(self) -> Dict[int, dict]:
        """Flush every shard and return its final segment + state (+obs)."""
        out: Dict[int, dict] = {}
        for shard_id in sorted(self.services):
            service = self.services[shard_id]
            self.decisions[shard_id].extend(service.flush())
            entry = {
                "decisions": self._drain(shard_id),
                "state": service.state_dict(),
            }
            if service.obs is not None:
                artifacts = service.obs.export(self._obs_dirs[shard_id],
                                               metrics=service.metrics)
                entry["obs"] = {"artifacts": artifacts,
                                "summary": service.obs.summary()}
            out[shard_id] = entry
        return out

    def _drain(self, shard_id: int) -> List[Decision]:
        segment = self.decisions[shard_id]
        self.decisions[shard_id] = []
        return segment


def worker_main(conn) -> None:
    """Process entry point: serve ShardHost messages over a pipe.

    Protocol (coordinator → worker unless noted)::

        ("init", {"pipeline": doc, "config": {...},
                  "shard_ids": [...], "obs": spec-or-None})
        ("load", shard_id, state)
        ("batch", shard_id, [records...])          # no reply
        ("checkpoint",)  → ("checkpoint", {sid: {...}})
        ("snapshot",)    → ("snapshot", {sid: {...}})
        ("finish",)      → ("finish", {sid: {...}})
        ("ping", token)  → ("pong", token)
        ("chaos", mode)                            # test-only fault hook
        ("stop",)
        any failure      → ("error", traceback text)

    The pipeline crosses the pipe once, as its persistence document
    (parsed with :func:`pipeline_from_document`), never per batch.

    The ``chaos`` message exists for the supervision harness:
    ``"crash"`` hard-exits the process mid-protocol, ``"hang"`` makes
    the worker swallow every further message without replying (the
    coordinator's ``batch_timeout`` deadline must catch it), and
    ``"garbage"`` emits an unprompted non-protocol object into the pipe
    (the coordinator must classify it as a protocol failure).
    """
    host: Optional[ShardHost] = None
    hanging = False
    try:
        while True:
            message = conn.recv()
            if hanging:
                continue
            kind = message[0]
            if kind == "init":
                from repro.core.persistence import pipeline_from_document

                payload = message[1]
                host = ShardHost(pipeline_from_document(payload["pipeline"]),
                                 payload["config"], payload["shard_ids"],
                                 payload.get("obs"))
            elif kind == "load":
                host.load(message[1], message[2])
            elif kind == "batch":
                host.batch(message[1], message[2])
            elif kind == "checkpoint":
                conn.send(("checkpoint", host.checkpoint()))
            elif kind == "snapshot":
                conn.send(("snapshot", host.snapshot()))
            elif kind == "finish":
                conn.send(("finish", host.finish()))
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "chaos":
                mode = message[1]
                if mode == "crash":
                    os._exit(13)
                elif mode == "hang":
                    hanging = True
                elif mode == "garbage":
                    conn.send("!!pipe-garbage!!")
                else:  # pragma: no cover - protocol misuse
                    raise ValueError(f"unknown chaos mode: {mode!r}")
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown worker message: {kind!r}")
    except EOFError:  # pragma: no cover - coordinator vanished
        pass
    except BaseException:
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()
