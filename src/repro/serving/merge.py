"""Total-order merge and re-shard split of per-shard serving state.

Bank keys partition cleanly across shards (:mod:`repro.serving.router`),
so every per-bank structure — collector bank buffers, pending reorder
entries, sparing ledgers, pattern/UER/feature state — is *disjoint*
across shards.  Merging is therefore a union re-sorted into the exact
deterministic layout :meth:`CordialService.state_dict` produces, and a
merged state loads into one real :class:`~repro.core.online.CordialService`
that is indistinguishable from a service that served the whole stream
alone.  Splitting is the inverse: filter every per-bank structure by
:func:`~repro.serving.router.shard_of_bank`, which is how a fleet
checkpoint saved at one shard count restores onto another.

The non-bank-keyed pieces need explicit accounting:

* **decisions** — every shard emits its own ascending ``(timestamp,
  sequence)`` stream; pooling *all* segments (across shards *and* across
  checkpoint epochs) and sorting once on that key reproduces the single
  service's emission order.  Segments must never be concatenated
  epoch-wise: shard watermarks lag the global one differently, so one
  shard's pre-checkpoint decision can sort after another's
  post-checkpoint decision.
* **stats / counters** — ``events_ingested`` counts *submissions*
  (including quarantined ones) on a single service, but shard services
  only ever see routed records; the merge overrides it with
  ``carried + coordinator-submitted``.  The ``collector.dead_letters``
  counter family is likewise overridden from the router's cumulative
  ledger (shard collectors never quarantine).  Everything else is a
  plain sum — counters are integer-valued, so float summation is exact
  and order-free below 2**53.
* **replay truncation/duplicate counters** — fleet totals are
  shard-count-invariant but their per-shard attribution is not; a split
  assigns the merged totals to shard 0 so the sums survive any
  save/restore topology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.online import Decision, ServiceStats
from repro.serving.router import shard_of_bank
from repro.telemetry.metrics import EXPORT_VERSION, MetricsRegistry, _series_key


def merge_decisions(segments: Sequence[Sequence[Decision]]) -> List[Decision]:
    """All decision segments pooled into the global emission order.

    Valid for ascending-release streams (sorted input, or any stream
    displaced within a positive ``max_skew`` — the reorder heap releases
    in ascending ``(timestamp, sequence)`` order); that is exactly the
    contract the single-service reorder buffer guarantees decisions for.
    """
    pooled = [d for segment in segments for d in segment]
    return sorted(pooled, key=lambda d: (d.timestamp, d.sequence))


def merge_stats(shard_stats: Sequence[dict],
                events_submitted: int,
                carried: Optional[dict] = None) -> dict:
    """Fleet-level :class:`~repro.core.online.ServiceStats` document.

    ``events_ingested`` is overridden to ``carried + events_submitted``
    (the coordinator counts every submission, exactly as a single
    service's ingest counter would); the remaining fields are
    ``carried + sum over shards``.
    """
    carried = carried or ServiceStats().to_dict()
    actions: Dict[str, int] = dict(carried["decisions_by_action"])
    triggers = int(carried["triggers_fired"])
    repredictions = int(carried["repredictions"])
    for stats in shard_stats:
        triggers += int(stats["triggers_fired"])
        repredictions += int(stats["repredictions"])
        for action, count in stats["decisions_by_action"].items():
            actions[action] = actions.get(action, 0) + int(count)
    return {
        "events_ingested": int(carried["events_ingested"]) + events_submitted,
        "triggers_fired": triggers,
        "repredictions": repredictions,
        "decisions_by_action": {k: actions[k] for k in sorted(actions)},
    }


def merge_metrics(shard_documents: Sequence[dict],
                  dead_letter_counts: Dict[str, int],
                  events_ingested: int,
                  carried_counters: Optional[Dict[str, float]] = None) -> dict:
    """Merged registry export document (counters only, sorted keys).

    Gauges (reorder depth, budget pressure) and histograms (wall-clock
    latency) are intentionally dropped: they are per-shard instantaneous
    or timing series with no shard-count-invariant fleet meaning.  The
    result is a valid :meth:`MetricsRegistry.restore` document.
    """
    counters: Dict[str, float] = dict(carried_counters or {})
    for document in shard_documents:
        for key, value in document.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
    counters["collector.events_ingested"] = float(events_ingested)
    for reason, count in dead_letter_counts.items():
        key = _series_key("collector.dead_letters", {"reason": reason})
        counters[key] = float(count)
    return {
        "version": EXPORT_VERSION,
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {},
    }


def merge_service_states(shard_states: Sequence[dict], router_state: dict,
                         stats: dict, metrics: dict) -> dict:
    """Union the per-shard state dicts into one service state dict.

    The result has the exact layout of ``CordialService.state_dict()``
    for a service that served the whole stream alone, so it loads into a
    real service (reports, oracle checks, and re-sharding all reuse the
    single-service machinery unchanged).
    """
    reference = shard_states[0]
    collector_ref = reference["collector"]
    collector = {
        "trigger_uer_rows": collector_ref["trigger_uer_rows"],
        "max_skew": collector_ref["max_skew"],
        "max_pending": collector_ref["max_pending"],
        "max_dead_letters": collector_ref["max_dead_letters"],
        "max_timestamp": router_state["max_timestamp"],
        "banks": sorted((entry for state in shard_states
                         for entry in state["collector"]["banks"]),
                        key=lambda entry: entry[0]),
        "pending": sorted((obj for state in shard_states
                           for obj in state["collector"]["pending"]),
                          key=lambda obj: (obj["ts"], obj["seq"])),
        "dead_letters": list(router_state["dead_letters"]),
        "dead_letter_counts": {
            k: router_state["dead_letter_counts"][k]
            for k in sorted(router_state["dead_letter_counts"])},
    }
    counter_names = ("truncated_requests", "truncated_rows",
                     "duplicate_requests", "duplicate_rows")
    replay = {
        "spares_per_bank": reference["replay"]["spares_per_bank"],
        "spared_rows": sorted((entry for state in shard_states
                               for entry in state["replay"]["spared_rows"]),
                              key=lambda entry: entry[0]),
        "spared_banks": sorted((entry for state in shard_states
                                for entry in state["replay"]["spared_banks"]),
                               key=lambda entry: entry[0]),
        "counters": {name: sum(int(state["replay"]["counters"][name])
                               for state in shard_states)
                     for name in counter_names},
    }

    def union(key: str) -> list:
        return sorted((entry for state in shard_states for entry in state[key]),
                      key=lambda entry: entry[0])

    return {
        "spares_per_bank": reference["spares_per_bank"],
        "max_skew": reference["max_skew"],
        "collector": collector,
        "replay": replay,
        "stats": stats,
        "pattern_of": union("pattern_of"),
        "uer_rows": union("uer_rows"),
        "feature_state": union("feature_state"),
        "metrics": metrics,
    }


def split_service_state(state: dict, n_shards: int) -> List[dict]:
    """Partition one merged service state onto ``n_shards`` shards.

    Every per-bank structure is filtered by
    :func:`~repro.serving.router.shard_of_bank`; stats and metrics start
    fresh on every shard (the fleet totals ride in the manifest as
    *carried* values — see :mod:`repro.serving.engine`); the router owns
    the dead-letter ledger, so shard collectors restore with an empty
    one; and every shard inherits the *global* ``max_timestamp`` so its
    local watermark can never run ahead of where the fleet's already is.
    """
    from repro.telemetry.mcelog import record_from_obj

    def owner(bank_entry) -> int:
        return shard_of_bank(tuple(bank_entry), n_shards)

    collector_src = state["collector"]
    replay_src = state["replay"]
    zero_replay_counters = {"truncated_requests": 0, "truncated_rows": 0,
                            "duplicate_requests": 0, "duplicate_rows": 0}
    shards: List[dict] = []
    for sid in range(n_shards):
        collector = {
            "trigger_uer_rows": collector_src["trigger_uer_rows"],
            "max_skew": collector_src["max_skew"],
            "max_pending": collector_src["max_pending"],
            "max_dead_letters": collector_src["max_dead_letters"],
            "max_timestamp": collector_src["max_timestamp"],
            "banks": [entry for entry in collector_src["banks"]
                      if owner(entry[0]) == sid],
            "pending": [obj for obj in collector_src["pending"]
                        if shard_of_bank(record_from_obj(obj).bank_key,
                                         n_shards) == sid],
            "dead_letters": [],
            "dead_letter_counts": {},
        }
        replay = {
            "spares_per_bank": replay_src["spares_per_bank"],
            "spared_rows": [entry for entry in replay_src["spared_rows"]
                            if owner(entry[0]) == sid],
            "spared_banks": [entry for entry in replay_src["spared_banks"]
                             if owner(entry[0]) == sid],
            # Fleet truncation/duplicate totals are shard-count-invariant
            # but their attribution is not; shard 0 carries them so the
            # sums survive any save/restore topology.
            "counters": (dict(replay_src["counters"]) if sid == 0
                         else dict(zero_replay_counters)),
        }
        shards.append({
            "spares_per_bank": state["spares_per_bank"],
            "max_skew": state["max_skew"],
            "collector": collector,
            "replay": replay,
            "stats": ServiceStats().to_dict(),
            "pattern_of": [entry for entry in state["pattern_of"]
                           if owner(entry[0]) == sid],
            "uer_rows": [entry for entry in state["uer_rows"]
                         if owner(entry[0]) == sid],
            "feature_state": [entry for entry in state["feature_state"]
                              if owner(entry[0]) == sid],
            "metrics": MetricsRegistry().as_dict(),
        })
    return shards
