"""Sharded parallel realisation engine for fleet generation.

The generator's work splits into a cheap sequential *planning* phase and
an expensive, embarrassingly parallel *realisation* phase.  The engine
makes realisation safe to distribute by giving every planted fault its own
``numpy.random.SeedSequence`` child, so the realised stream is a pure
function of ``(config, seed)`` — never of the shard arrangement, the
number of worker processes, or their completion order.

Seeding contract (the determinism contract of the whole dataset layer)::

    SeedSequence(seed)
    ├── child 0  → UCE *placement* generator   (plan_uce_faults)
    ├── child 1  → cell *placement* generator  (plan_cell_faults)
    └── child 2  → realisation root
         ├── spawn(n_uce)   → one child per UCE fault realisation
         └── spawn(n_cell)  → one child per cell fault realisation
                              (incl. its anchor retiming draws)

Phases, in order:

1. plan UCE placements        (sequential, placement generator)
2. realise UCE faults         (parallel, per-fault children, sharded by HBM)
3. plan cell placements       (sequential — needs which anchors realised
                               a UER, but none of their realisation draws)
4. realise + retime cell faults (parallel, per-fault children)
5. merge shard streams        (sequential, total order, global sequence
                               numbers — see :func:`merge_key`)

``jobs=1`` runs the identical planning and per-fault seeding entirely
in-process; ``jobs>1`` fans the realisation phases out over a
``ProcessPoolExecutor``.  Both paths produce byte-identical datasets;
``tests/test_parallel_equivalence.py`` and the golden digest test enforce
this.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.config import FleetGenConfig
from repro.faults.injector import (FaultInjector, PlantedFault,
                                   retime_near_anchor)
from repro.faults.processes import (FaultProcess, FaultProcessParams,
                                    FaultRealization)
from repro.faults.types import FaultType

#: Shards per worker: enough slack that an unlucky shard (one HBM with
#: many faults) does not serialise the tail of the pool.
SHARDS_PER_JOB = 4


@dataclass(frozen=True)
class UceWork:
    """One UCE fault realisation work unit (picklable)."""

    index: int
    fault_type: FaultType
    emit_precursors: bool
    seed: np.random.SeedSequence


@dataclass(frozen=True)
class CellWork:
    """One cell fault realisation work unit (picklable).

    ``anchor_first_uer`` carries the anchor's first UER time into the
    worker (``None`` for uniformly placed faults), so workers never need
    the anchor realisations themselves.
    """

    index: int
    anchor_first_uer: Optional[float]
    seed: np.random.SeedSequence


def shard_by_hbm(bank_keys: Sequence[tuple], n_shards: int) -> List[List[int]]:
    """Partition fault indexes into shards, keeping each HBM's faults
    together.

    Faults are grouped by HBM key (``bank_key[:3]``), groups are walked in
    sorted order and dealt round-robin onto ``n_shards`` shards.  The
    arrangement is deterministic but — thanks to per-fault seeding —
    equivalence never depends on it.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    groups: Dict[tuple, List[int]] = {}
    for index, bank_key in enumerate(bank_keys):
        groups.setdefault(tuple(bank_key[:3]), []).append(index)
    shards: List[List[int]] = [[] for _ in range(n_shards)]
    for position, hbm_key in enumerate(sorted(groups)):
        shards[position % n_shards].extend(groups[hbm_key])
    return [shard for shard in shards if shard]


def _realize_uce_shard(params: FaultProcessParams,
                       work: List[UceWork]
                       ) -> List[Tuple[int, FaultRealization]]:
    """Worker: realise one shard of UCE faults (module-level, picklable)."""
    process = FaultProcess(params)
    out = []
    for item in work:
        rng = np.random.default_rng(item.seed)
        out.append((item.index, process.realize(
            item.fault_type, rng, emit_precursors=item.emit_precursors)))
    return out


def _realize_cell_shard(params: FaultProcessParams,
                        work: List[CellWork]
                        ) -> List[Tuple[int, FaultRealization]]:
    """Worker: realise (and retime) one shard of cell faults."""
    process = FaultProcess(params)
    out = []
    for item in work:
        rng = np.random.default_rng(item.seed)
        realization = process.realize(FaultType.CELL_FAULT, rng)
        if item.anchor_first_uer is not None:
            realization = retime_near_anchor(realization,
                                             item.anchor_first_uer,
                                             params, rng)
        out.append((item.index, realization))
    return out


def _run_sharded(worker, params: FaultProcessParams, work: Sequence,
                 shards: List[List[int]], jobs: int) -> List:
    """Run ``worker`` over the shards; return realisations in work order."""
    if jobs <= 1 or len(shards) <= 1:
        pairs = worker(params, list(work))
    else:
        pairs = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(worker, params,
                                   [work[i] for i in shard])
                       for shard in shards]
            for future in futures:
                pairs.extend(future.result())
    realizations: List = [None] * len(work)
    for index, realization in pairs:
        realizations[index] = realization
    return realizations


def realize_fleet(config: FleetGenConfig, seed: int, jobs: int = 1
                  ) -> Tuple[List[PlantedFault], List[PlantedFault]]:
    """Plan and realise the whole fleet's faults.

    Returns ``(uce_faults, cell_faults)`` in planning order — identical
    for every ``jobs`` value (see the module docstring's seeding
    contract).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    root = np.random.SeedSequence(seed)
    place_uce_seed, place_cell_seed, realize_root = root.spawn(3)
    injector = FaultInjector(config.fleet,
                             process=FaultProcess(config.process),
                             pattern_weights=config.pattern_weights)

    # Phase 1+2 — UCE faults.
    uce_placements = injector.plan_uce_faults(
        n_bad_hbms=config.scaled_bad_hbms,
        extra_banks_mean=config.extra_banks_mean,
        rng=np.random.default_rng(place_uce_seed))
    uce_children = realize_root.spawn(len(uce_placements))
    uce_work = [UceWork(index=i, fault_type=p.fault_type,
                        emit_precursors=p.emit_precursors,
                        seed=child)
                for i, (p, child) in enumerate(zip(uce_placements,
                                                   uce_children))]
    n_shards = max(1, jobs * SHARDS_PER_JOB)
    uce_shards = shard_by_hbm([p.bank_key for p in uce_placements], n_shards)
    uce_realizations = _run_sharded(_realize_uce_shard, config.process,
                                    uce_work, uce_shards, jobs)
    uce_faults = [PlantedFault(bank_key=p.bank_key, fault_type=p.fault_type,
                               realization=r)
                  for p, r in zip(uce_placements, uce_realizations)]

    # Phase 3+4 — cell faults (placement needs only which anchors have a
    # UER; realisation children continue the same spawn counter).
    cell_placements = injector.plan_cell_faults(
        n_faults=config.scaled_cell_faults, anchors=uce_faults,
        rng=np.random.default_rng(place_cell_seed))
    cell_children = realize_root.spawn(len(cell_placements))
    cell_work = []
    for i, (p, child) in enumerate(zip(cell_placements, cell_children)):
        t_star = None
        if p.anchor_index is not None:
            t_star = float(uce_faults[p.anchor_index]
                           .realization.uer_row_sequence[0][0])
        cell_work.append(CellWork(index=i, anchor_first_uer=t_star,
                                  seed=child))
    cell_shards = shard_by_hbm([p.bank_key for p in cell_placements],
                               n_shards)
    cell_realizations = _run_sharded(_realize_cell_shard, config.process,
                                     cell_work, cell_shards, jobs)
    cell_faults = [PlantedFault(bank_key=p.bank_key,
                                fault_type=FaultType.CELL_FAULT,
                                realization=r)
                   for p, r in zip(cell_placements, cell_realizations)]
    return uce_faults, cell_faults
