"""Configuration of the synthetic fleet and the published calibration targets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.faults.processes import FaultProcessParams
from repro.faults.types import FaultType
from repro.hbm.geometry import FleetGeometry


@dataclass(frozen=True)
class FleetGenConfig:
    """Everything that determines a synthetic fleet dataset.

    Attributes:
        fleet: address-space geometry (paper scale: 1280 nodes x 8 NPUs x
            8 HBMs = 81,920 HBMs).
        n_bad_hbms: HBMs receiving UCE-producing faults (421 at full scale,
            the Table II "HBM with UER" count).
        extra_banks_mean: Poisson mean of *additional* fault banks per bad
            HBM (1.55 reproduces the 1074 UER banks / 421 HBMs clustering).
        n_cell_faults: CE-only background faults (8200 at full scale, so
            that banks-with-CE lands near Table II's 8557 once UER banks'
            own CE streams are counted).
        process: fault error-process parameters (see
            :class:`repro.faults.processes.FaultProcessParams`).
        pattern_weights: optional override of the Figure 3(b) fault-type
            mix (used by what-if scenarios; ``None`` = calibrated mix).
        scale: multiplies ``n_bad_hbms`` and ``n_cell_faults``; tests run
            the identical pipeline at ``scale < 1``.
    """

    fleet: FleetGeometry = field(default_factory=FleetGeometry)
    n_bad_hbms: int = 421
    extra_banks_mean: float = 1.55
    n_cell_faults: int = 8200
    process: FaultProcessParams = field(default_factory=FaultProcessParams)
    pattern_weights: Optional[Dict[FaultType, float]] = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_bad_hbms < 1:
            raise ValueError("n_bad_hbms must be >= 1")

    @property
    def scaled_bad_hbms(self) -> int:
        """Bad-HBM count after applying ``scale``."""
        return max(1, round(self.n_bad_hbms * self.scale))

    @property
    def scaled_cell_faults(self) -> int:
        """Cell-fault count after applying ``scale``."""
        return max(0, round(self.n_cell_faults * self.scale))


@dataclass(frozen=True)
class CalibrationTargets:
    """The published statistics the generator is calibrated against.

    Every number here is copied from the paper; tolerances reflect that we
    reproduce *shapes*, not the exact field data.
    """

    # Table I — predictable (non-sudden) ratio per micro-level.
    predictable_ratio: Dict[str, float] = field(default_factory=lambda: {
        "NPU": 0.4186, "HBM": 0.4156, "SID": 0.4091,
        "PS-CH": 0.3729, "BG": 0.3673, "Bank": 0.2923, "Row": 0.0439,
    })

    # Table II — entity counts (full scale).
    table2_counts: Dict[str, Tuple[int, int, int, int]] = field(
        default_factory=lambda: {
            # level: (with CE, with UEO, with UER, total)
            "NPU": (5497, 327, 418, 5703),
            "HBM": (5944, 330, 421, 6155),
            "SID": (6049, 341, 440, 6277),
            "PS-CH": (6856, 360, 496, 7136),
            "BG": (7571, 423, 686, 7970),
            "Bank": (8557, 537, 1074, 9318),
            "Row": (51518, 4888, 5209, 60693),
        })

    # Figure 3(b) — disjoint slice percentages (see DESIGN.md section 3).
    fig3b_slices: Dict[str, float] = field(default_factory=lambda: {
        "Single-row Clustering": 0.682,
        "Double-row Clustering": 0.099,
        "Half Total-row Clustering": 0.021,
        "Scattered Pattern": 0.125,
        "Whole Column": 0.073,
    })

    # Figure 4 — chi-square locality peak.
    locality_peak_threshold: int = 128
    locality_thresholds: Tuple[int, ...] = (
        4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)

    # Table III / IV headline numbers (for EXPERIMENTS.md comparison).
    table3_weighted_f1: Dict[str, float] = field(default_factory=lambda: {
        "LightGBM": 0.837, "XGBoost": 0.813, "Random Forest": 0.854,
    })
    table4: Dict[str, Tuple[float, float, float, float]] = field(
        default_factory=lambda: {
            # method: (precision, recall, f1, icr)
            "Neighbor Rows": (0.322, 0.393, 0.347, 0.1331),
            "Cordial-LGBM": (0.642, 0.504, 0.563, 0.1860),
            "Cordial-XGB": (0.732, 0.509, 0.591, 0.1887),
            "Cordial-RF": (0.806, 0.569, 0.662, 0.1958),
        })
