"""Measuring a generated fleet against the paper's published statistics.

``measure_calibration`` runs the full empirical-study battery on a dataset
and reports measured-vs-target for Table I ratios, Table II counts,
Figure 3(b) slices and the Figure 4 locality peak.  The calibration tests
assert these stay inside tolerance bands; the Table I/II benchmarks print
them side by side with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.analysis.locality import LocalityCurve, compute_locality_chisquare
from repro.analysis.patterns_dist import compute_pattern_distribution
from repro.analysis.sudden import compute_sudden_uer_table
from repro.analysis.summary import compute_dataset_summary
from repro.datasets.config import CalibrationTargets
from repro.datasets.fleetgen import FleetDataset
from repro.hbm.address import MicroLevel


@dataclass
class CalibrationReport:
    """Measured fleet statistics next to the paper's targets."""

    targets: CalibrationTargets
    predictable_ratio: Dict[str, float] = field(default_factory=dict)
    table2_counts: Dict[str, Tuple[int, int, int, int]] = field(
        default_factory=dict)
    fig3b_slices: Dict[str, float] = field(default_factory=dict)
    locality: LocalityCurve = None
    scale: float = 1.0

    @property
    def locality_peak(self) -> int:
        """Measured chi-square peak threshold."""
        return self.locality.peak_threshold

    def predictable_ratio_errors(self) -> Dict[str, float]:
        """Absolute error per level vs the Table I targets."""
        return {
            level: abs(self.predictable_ratio[level]
                       - self.targets.predictable_ratio[level])
            for level in self.targets.predictable_ratio
            if level in self.predictable_ratio
        }

    def fig3b_errors(self) -> Dict[str, float]:
        """Absolute error per slice vs the Figure 3(b) targets."""
        return {
            label: abs(self.fig3b_slices.get(label, 0.0) - target)
            for label, target in self.targets.fig3b_slices.items()
        }

    def summary_lines(self) -> str:
        """Human-readable calibration summary."""
        lines = ["Calibration report (measured vs paper):"]
        lines.append("  Table I predictable ratio:")
        for level, target in self.targets.predictable_ratio.items():
            measured = self.predictable_ratio.get(level, float("nan"))
            lines.append(f"    {level:<6} measured={measured:6.2%} "
                         f"paper={target:6.2%}")
        lines.append("  Figure 3(b) slices:")
        for label, target in self.targets.fig3b_slices.items():
            measured = self.fig3b_slices.get(label, 0.0)
            lines.append(f"    {label:<28} measured={measured:6.1%} "
                         f"paper={target:6.1%}")
        lines.append(f"  Figure 4 locality peak: measured="
                     f"{self.locality_peak} paper="
                     f"{self.targets.locality_peak_threshold}")
        return "\n".join(lines)


def measure_calibration(dataset: FleetDataset,
                        targets: CalibrationTargets = None
                        ) -> CalibrationReport:
    """Run the empirical-study battery on ``dataset``."""
    targets = targets or CalibrationTargets()
    report = CalibrationReport(targets=targets, scale=dataset.config.scale)

    sudden = compute_sudden_uer_table(dataset.store)
    report.predictable_ratio = {
        stats.level.label: stats.predictable_ratio
        for stats in sudden.values()
    }

    summary = compute_dataset_summary(dataset.store)
    report.table2_counts = {
        row.level.label: (row.with_ce, row.with_ueo, row.with_uer, row.total)
        for row in summary.values()
    }

    report.fig3b_slices = compute_pattern_distribution(dataset)
    report.locality = compute_locality_chisquare(
        dataset.store,
        thresholds=targets.locality_thresholds,
        total_rows=dataset.config.fleet.hbm.rows,
    )
    return report
