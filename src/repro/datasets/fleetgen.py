"""Fleet-scale dataset generation.

``generate_fleet_dataset`` plants faults, realises their error processes
(optionally across worker processes — see :mod:`repro.datasets.parallel`),
merges everything into one time-ordered MCE stream, and returns the stream
(indexed in an :class:`~repro.telemetry.store.ErrorStore`) together with
per-bank ground truth for training and for the ICR replay evaluation.

Determinism contract: the dataset is a pure function of ``(config, seed)``
— the ``jobs`` argument only changes how fast it is produced, never a
single byte of it.  ``tests/test_parallel_equivalence.py`` and the golden
digest test pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.config import FleetGenConfig
from repro.datasets.parallel import realize_fleet
from repro.faults.injector import PlantedFault
from repro.faults.types import FailurePattern, FaultType
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import Detector, ErrorRecord, ErrorType
from repro.telemetry.store import ErrorStore


@dataclass(frozen=True)
class BankGroundTruth:
    """What actually happened in one fault bank (generator's knowledge).

    Attributes:
        bank_key: the bank.
        fault_type: planted mechanism.
        pattern: Cordial class (``None`` for CE-only banks).
        anchor_rows: cluster centres of aggregation faults.
        cluster_width: kernel half-width.
        uer_row_sequence: ``(first_time, row)`` per distinct UER row, in
            occurrence order.
    """

    bank_key: tuple
    fault_type: FaultType
    pattern: Optional[FailurePattern]
    anchor_rows: Tuple[int, ...]
    cluster_width: int
    uer_row_sequence: Tuple[Tuple[float, int], ...]

    def future_uer_rows(self, after: float) -> List[Tuple[float, int]]:
        """UER rows whose first UER occurs strictly after ``after``."""
        return [(t, r) for t, r in self.uer_row_sequence if t > after]


@dataclass
class FleetDataset:
    """A generated fleet: the event stream plus ground truth."""

    config: FleetGenConfig
    seed: int
    store: ErrorStore
    bank_truth: Dict[tuple, BankGroundTruth]

    @property
    def uer_banks(self) -> List[tuple]:
        """Banks with at least one realised UER, sorted."""
        return sorted(k for k, t in self.bank_truth.items()
                      if t.uer_row_sequence)

    def pattern_of(self, bank_key: tuple) -> Optional[FailurePattern]:
        """Ground-truth pattern of a bank (``None`` when unknown/CE-only)."""
        truth = self.bank_truth.get(bank_key)
        return truth.pattern if truth else None


def _bank_key_to_address(bank_key: tuple, row: int, column: int
                         ) -> DeviceAddress:
    node, npu, hbm, sid, ch, psch, bg, bank = bank_key
    return DeviceAddress(node=node, npu=npu, hbm=hbm, sid=sid, channel=ch,
                         pseudo_channel=psch, bank_group=bg, bank=bank,
                         row=row, column=column)


def _records_of_fault(fault_index: int, fault: PlantedFault) -> List[tuple]:
    """Raw event tuples keyed for the deterministic merge.

    The merge sort key ``(time, fault_index, event_index)`` is *total*:
    events within a fault are already time-ordered, and cross-fault time
    ties break on the fault's planning-order index.  Every shard
    arrangement therefore merges into the identical stream.
    """
    records = []
    for event_index, event in enumerate(fault.realization.events):
        detector = (Detector.PATROL_SCRUB if event.kind is ErrorType.UEO
                    else Detector.DEMAND_ACCESS)
        records.append((event.time, fault_index, event_index, fault.bank_key,
                        event.row, event.column, event.kind, detector))
    return records


def generate_fleet_dataset(config: Optional[FleetGenConfig] = None,
                           seed: int = 0, jobs: int = 1) -> FleetDataset:
    """Generate one synthetic fleet dataset.

    Deterministic for a given ``(config, seed)`` pair: every fault draws
    from its own ``numpy.random.SeedSequence`` child (see
    :mod:`repro.datasets.parallel`), so the result is bit-identical for
    any ``jobs`` value.

    Args:
        config: fleet configuration (defaults to the calibrated paper
            magnitude).
        seed: root seed of the dataset.
        jobs: worker processes for fault realisation; ``1`` (the default)
            stays entirely in-process.
    """
    config = config or FleetGenConfig()
    uce_faults, cell_faults = realize_fleet(config, seed, jobs=jobs)

    raw: List[tuple] = []
    for fault_index, fault in enumerate(uce_faults + cell_faults):
        raw.extend(_records_of_fault(fault_index, fault))
    raw.sort(key=lambda item: item[:3])

    store = ErrorStore()
    for sequence, (time, _fault_index, _event_index, bank_key, row, column,
                   kind, detector) in enumerate(raw):
        address = _bank_key_to_address(bank_key, row, column)
        store.append(ErrorRecord(
            timestamp=time, sequence=sequence, address=address,
            error_type=kind, bit_count=1 if kind is ErrorType.CE else 4,
            detector=detector))

    bank_truth: Dict[tuple, BankGroundTruth] = {}
    for fault in uce_faults + cell_faults:
        realization = fault.realization
        bank_truth[fault.bank_key] = BankGroundTruth(
            bank_key=fault.bank_key,
            fault_type=fault.fault_type,
            pattern=realization.pattern,
            anchor_rows=realization.anchor_rows,
            cluster_width=realization.cluster_width,
            uer_row_sequence=tuple(realization.uer_row_sequence),
        )

    return FleetDataset(config=config, seed=seed, store=store,
                        bank_truth=bank_truth)
