"""Calibrated synthetic fleet datasets.

The paper's evaluation uses proprietary MCE logs from Huawei's LLM-training
platform.  This package substitutes a synthetic fleet whose error streams
are calibrated against every statistic the paper publishes (Tables I-II,
Figures 3-4); see DESIGN.md section 2 for the substitution argument.
"""

from repro.datasets.config import FleetGenConfig, CalibrationTargets
from repro.datasets.fleetgen import FleetDataset, BankGroundTruth, generate_fleet_dataset
from repro.datasets.calibration import CalibrationReport, measure_calibration
from repro.datasets.digest import canonical_lines, fleet_digest
from repro.datasets.parallel import realize_fleet, shard_by_hbm

__all__ = [
    "FleetGenConfig",
    "CalibrationTargets",
    "FleetDataset",
    "BankGroundTruth",
    "generate_fleet_dataset",
    "CalibrationReport",
    "measure_calibration",
    "canonical_lines",
    "fleet_digest",
    "realize_fleet",
    "shard_by_hbm",
]
