"""Canonical serialisation and digest of a generated fleet dataset.

``fleet_digest`` hashes everything the determinism contract covers — the
full record stream (timestamps, sequence numbers, addresses, error types,
detectors) and the per-bank ground truth — into one SHA-256 hex string.
The golden regression test (``tests/test_determinism_golden.py``) pins a
small-scale digest so any change to the RNG flow is an explicit,
reviewed event rather than a silent drift.

Regenerate a golden value with::

    PYTHONPATH=src python -m repro.datasets.digest --scale 0.02 --seed 123
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from repro.datasets.fleetgen import FleetDataset


def canonical_lines(dataset: FleetDataset) -> Iterator[str]:
    """Yield one canonical text line per record and per ground-truth bank.

    Floats are rendered with ``repr`` (shortest round-trip), so identical
    bit patterns — and only those — produce identical lines.
    """
    for record in dataset.store:
        a = record.address
        yield "|".join((
            repr(float(record.timestamp)),
            str(record.sequence),
            ",".join(str(v) for v in (a.node, a.npu, a.hbm, a.sid, a.channel,
                                      a.pseudo_channel, a.bank_group, a.bank,
                                      a.row, a.column)),
            record.error_type.value,
            str(record.bit_count),
            record.detector.value,
        ))
    for bank_key in sorted(dataset.bank_truth):
        truth = dataset.bank_truth[bank_key]
        yield "|".join((
            ",".join(str(v) for v in truth.bank_key),
            truth.fault_type.value if truth.fault_type else "-",
            truth.pattern.value if truth.pattern else "-",
            ",".join(str(r) for r in truth.anchor_rows),
            str(truth.cluster_width),
            ";".join(f"{repr(float(t))}@{row}"
                     for t, row in truth.uer_row_sequence),
        ))


def config_digest(config) -> str:
    """SHA-256 hex digest of any JSON-serialisable configuration object.

    Canonicalised through ``json.dumps(sort_keys=True)``, so two configs
    digest equal iff they are value-equal — the run-journal provenance
    header (:mod:`repro.obs.journal`) uses this to make "same
    configuration?" a string comparison.
    """
    import json

    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fleet_digest(dataset: FleetDataset) -> str:
    """SHA-256 hex digest over the canonical serialisation of a dataset."""
    digest = hashlib.sha256()
    for line in canonical_lines(dataset):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def main(argv=None) -> int:
    """Print the digest of a freshly generated fleet (golden regeneration)."""
    import argparse

    from repro.datasets.config import FleetGenConfig
    from repro.datasets.fleetgen import generate_fleet_dataset

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    dataset = generate_fleet_dataset(FleetGenConfig(scale=args.scale),
                                     seed=args.seed, jobs=args.jobs)
    print(fleet_digest(dataset))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
