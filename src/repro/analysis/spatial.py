"""Per-pattern spatial statistics of failing banks.

Deeper quantitative companions to Figure 3: how wide are the clusters,
how concentrated are errors on columns, how far do UERs sit from their
bank's error centroid per pattern.  These statistics validated the
generator's fault physics during calibration and are exposed for studies
on real logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.patterns import cluster_rows
from repro.telemetry.events import ErrorType
from repro.telemetry.store import ErrorStore


@dataclass(frozen=True)
class BankSpatialStats:
    """Spatial summary of one bank's UER rows."""

    bank_key: tuple
    n_uer_rows: int
    span: int
    n_clusters: int
    widest_cluster: int
    median_consecutive_gap: float
    column_concentration: float


def column_concentration(columns: Sequence[int]) -> float:
    """How concentrated events are on few columns, in [0, 1].

    Defined as ``1 - H(c) / log(n_distinct_possible)`` is unstable for
    small samples; we use the simpler max-share statistic: the fraction of
    events on the single most frequent column.  1.0 = whole-column
    signature; ~1/128 = uniform.
    """
    if not columns:
        raise ValueError("need at least one column")
    values, counts = np.unique(np.asarray(columns), return_counts=True)
    return float(counts.max() / counts.sum())


def bank_spatial_stats(store: ErrorStore, bank_key: tuple,
                       gap_threshold: int = 512
                       ) -> Optional[BankSpatialStats]:
    """Spatial summary of one bank (``None`` when it has no UER rows)."""
    uers = store.uer_rows_of_bank(bank_key)
    if not uers:
        return None
    rows = [r.row for r in uers]
    columns = [r.column for r in uers]
    ordered = sorted(rows)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    clusters = cluster_rows(rows, gap_threshold)
    return BankSpatialStats(
        bank_key=bank_key,
        n_uer_rows=len(rows),
        span=ordered[-1] - ordered[0],
        n_clusters=len(clusters),
        widest_cluster=max(high - low for low, high, _ in clusters),
        median_consecutive_gap=float(np.median(gaps)) if gaps else 0.0,
        column_concentration=column_concentration(columns),
    )


def fleet_spatial_profile(store: ErrorStore,
                          pattern_of: Optional[Dict[tuple, str]] = None,
                          min_uer_rows: int = 2
                          ) -> Dict[str, Dict[str, float]]:
    """Median spatial statistics per pattern (or pooled).

    Args:
        pattern_of: optional ``bank_key -> pattern label``; banks missing
            from it are pooled under ``"unlabelled"``.

    Returns ``{pattern: {statistic: median}}``.
    """
    grouped: Dict[str, List[BankSpatialStats]] = {}
    for bank_key in store.banks_with_min_uer_rows(min_uer_rows):
        stats = bank_spatial_stats(store, bank_key)
        if stats is None:
            continue
        label = (pattern_of or {}).get(bank_key, "unlabelled")
        grouped.setdefault(label, []).append(stats)
    profile: Dict[str, Dict[str, float]] = {}
    for label, entries in grouped.items():
        profile[label] = {
            "banks": float(len(entries)),
            "median_span": float(np.median([e.span for e in entries])),
            "median_clusters": float(np.median([e.n_clusters
                                                for e in entries])),
            "median_widest_cluster": float(np.median(
                [e.widest_cluster for e in entries])),
            "median_gap": float(np.median([e.median_consecutive_gap
                                           for e in entries])),
            "median_column_concentration": float(np.median(
                [e.column_concentration for e in entries])),
        }
    return profile


def format_spatial_profile(profile: Dict[str, Dict[str, float]]) -> str:
    """Plain-text table of :func:`fleet_spatial_profile`."""
    lines = [f"{'Pattern':<26}{'banks':>6}{'span':>8}{'clusters':>9}"
             f"{'widest':>8}{'gap':>7}{'col-conc':>9}"]
    for label, stats in sorted(profile.items()):
        lines.append(
            f"{label:<26}{stats['banks']:>6.0f}{stats['median_span']:>8.0f}"
            f"{stats['median_clusters']:>9.1f}"
            f"{stats['median_widest_cluster']:>8.0f}"
            f"{stats['median_gap']:>7.0f}"
            f"{stats['median_column_concentration']:>9.2f}")
    return "\n".join(lines)
