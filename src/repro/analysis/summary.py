"""Dataset summary per micro-level (Table II).

For every micro-level, count the units that saw at least one CE, at least
one UEO, at least one UER, and at least one event of any type ("Total
Count" in the paper's Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorType
from repro.telemetry.store import ErrorStore


@dataclass(frozen=True)
class LevelSummary:
    """One Table II row: unit counts of a micro-level."""

    level: MicroLevel
    with_ce: int
    with_ueo: int
    with_uer: int
    total: int


def compute_dataset_summary(store: ErrorStore,
                            levels: Sequence[MicroLevel] = ()
                            ) -> Dict[MicroLevel, LevelSummary]:
    """Unit counts per micro-level (defaults to Table II's seven levels)."""
    levels = tuple(levels) or MicroLevel.paper_levels()
    summary: Dict[MicroLevel, LevelSummary] = {}
    for level in levels:
        summary[level] = LevelSummary(
            level=level,
            with_ce=len(store.units_with(level, ErrorType.CE)),
            with_ueo=len(store.units_with(level, ErrorType.UEO)),
            with_uer=len(store.units_with(level, ErrorType.UER)),
            total=len(store.units(level)),
        )
    return summary


def format_summary_table(summary: Dict[MicroLevel, LevelSummary]) -> str:
    """Plain-text rendering in the paper's Table II layout."""
    lines = [f"{'Micro-level':<12}{'With CE':>10}{'With UEO':>10}"
             f"{'With UER':>10}{'Total Count':>13}"]
    for level, row in summary.items():
        lines.append(f"{level.label:<12}{row.with_ce:>10}{row.with_ueo:>10}"
                     f"{row.with_uer:>10}{row.total:>13}")
    return "\n".join(lines)
