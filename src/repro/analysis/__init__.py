"""The paper's empirical study (Section III), as library code.

Three analyses motivate Cordial's design, plus the dataset summary:

* :mod:`repro.analysis.sudden` — sudden vs non-sudden UER ratios per
  micro-level (Table I): why in-row prediction fails;
* :mod:`repro.analysis.summary` — entity counts per micro-level (Table II);
* :mod:`repro.analysis.patterns_dist` — bank failure-pattern distribution
  and example error maps (Figure 3): why aggregation makes cross-row
  prediction feasible;
* :mod:`repro.analysis.locality` — chi-square significance of cross-row
  locality vs distance threshold (Figure 4): why the 128-row window.
"""

from repro.analysis.sudden import LevelSuddenStats, compute_sudden_uer_table
from repro.analysis.summary import LevelSummary, compute_dataset_summary
from repro.analysis.patterns_dist import (
    compute_pattern_distribution,
    example_bank_maps,
)
from repro.analysis.locality import LocalityCurve, compute_locality_chisquare
from repro.analysis.temporal import (InterArrivalStats, bootstrap_ratio_ci,
                                     uer_acceleration)
from repro.analysis.spatial import (bank_spatial_stats,
                                    fleet_spatial_profile)

__all__ = [
    "LevelSuddenStats",
    "compute_sudden_uer_table",
    "LevelSummary",
    "compute_dataset_summary",
    "compute_pattern_distribution",
    "example_bank_maps",
    "LocalityCurve",
    "compute_locality_chisquare",
    "InterArrivalStats",
    "bootstrap_ratio_ci",
    "uer_acceleration",
    "bank_spatial_stats",
    "fleet_spatial_profile",
]
