"""Bank failure-pattern distribution and example maps (Figure 3).

Figure 3(b) is the distribution of observable failure patterns over UER
banks; Figure 3(a) shows one example error map per pattern (error addresses
as (column, row) scatter points).  Both are reproduced from the generated
fleet's ground truth; an observational cross-check against the heuristic
labeller of :mod:`repro.core.patterns` is provided by the tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.faults.types import FIG3B_SLICE_LABELS, FaultType
from repro.telemetry.events import ErrorType

if TYPE_CHECKING:  # avoid a runtime cycle with repro.datasets
    from repro.datasets.fleetgen import FleetDataset


def compute_pattern_distribution(dataset: "FleetDataset",
                                 min_uer_rows: int = 1) -> Dict[str, float]:
    """Fraction of UER banks per Figure 3(b) slice.

    Args:
        min_uer_rows: restrict to banks with at least this many distinct
            UER rows (1 = every UER bank, as in the paper's figure).
    """
    counts: Dict[str, int] = {label: 0 for label in
                              FIG3B_SLICE_LABELS.values()}
    total = 0
    for truth in dataset.bank_truth.values():
        if truth.fault_type is FaultType.CELL_FAULT:
            continue
        if len(truth.uer_row_sequence) < min_uer_rows:
            continue
        counts[FIG3B_SLICE_LABELS[truth.fault_type]] += 1
        total += 1
    if total == 0:
        return {label: 0.0 for label in counts}
    return {label: count / total for label, count in counts.items()}


def bank_error_map(dataset: "FleetDataset", bank_key: tuple
                   ) -> List[Tuple[int, int, str]]:
    """(column, row, error_type) scatter points of one bank — the raw data
    behind a Figure 3(a) panel."""
    points = []
    for record in dataset.store.bank_events(bank_key):
        points.append((record.column, record.row, record.error_type.value))
    return points


def example_bank_maps(dataset: "FleetDataset",
                      min_uer_rows: int = 3
                      ) -> Dict[str, List[Tuple[int, int, str]]]:
    """One representative error map per Figure 3(b) slice.

    Picks, for each fault mechanism, the UER bank with the most events
    (the paper's figure likewise shows richly populated examples).
    """
    best: Dict[FaultType, Tuple[int, tuple]] = {}
    for key, truth in dataset.bank_truth.items():
        if truth.fault_type is FaultType.CELL_FAULT:
            continue
        if len(truth.uer_row_sequence) < min_uer_rows:
            continue
        n_events = len(dataset.store.bank_events(key))
        current = best.get(truth.fault_type)
        if current is None or n_events > current[0]:
            best[truth.fault_type] = (n_events, key)
    return {FIG3B_SLICE_LABELS[fault_type]: bank_error_map(dataset, key)
            for fault_type, (_, key) in best.items()}


def format_distribution(distribution: Dict[str, float],
                        reference: Optional[Dict[str, float]] = None) -> str:
    """Plain-text rendering of Figure 3(b), optionally vs the paper."""
    lines = [f"{'Pattern':<28}{'Measured':>10}"
             + (f"{'Paper':>10}" if reference else "")]
    for label, fraction in distribution.items():
        line = f"{label:<28}{fraction:>9.1%}"
        if reference:
            line += f"{reference.get(label, 0.0):>9.1%}"
        lines.append(line)
    return "\n".join(lines)


def ascii_bank_map(points: List[Tuple[int, int, str]], rows: int = 32768,
                   columns: int = 128, height: int = 24,
                   width: int = 64) -> str:
    """Coarse ASCII rendering of a bank error map (for CLI examples).

    UERs render as ``#``, UEOs as ``o``, CEs as ``.``; cells aggregate by
    severity (UER wins).
    """
    rank = {ErrorType.CE.value: 1, ErrorType.UEO.value: 2,
            ErrorType.UER.value: 3}
    glyph = {1: ".", 2: "o", 3: "#"}
    grid = [[0] * width for _ in range(height)]
    for column, row, kind in points:
        r = min(height - 1, row * height // rows)
        c = min(width - 1, column * width // columns)
        grid[r][c] = max(grid[r][c], rank[kind])
    lines = ["".join(glyph.get(cell, " ") for cell in line_cells)
             for line_cells in grid]
    return "\n".join(lines)
