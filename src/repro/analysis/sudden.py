"""Sudden vs non-sudden UER analysis (Table I).

Following the paper (Section III-A, after [29]): a unit's UERs are
*non-sudden* when the unit saw correctable-type signals (CEs or UEOs)
before its first UER — those are the cases an in-row/in-unit
history-based predictor could in principle catch.  The *predictable ratio*
is ``non_sudden / (sudden + non_sudden)`` over all units with at least one
UER at that micro-level.

Modelling note (see DESIGN.md): a precursor only makes a UER predictable
if it falls inside the *observation window* an online in-row predictor
actually watches; we default to a 6-hour lookback
(``DEFAULT_LOOKBACK_DAYS``).  Pass ``lookback_days=None`` for the
unbounded full-history definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorType
from repro.telemetry.store import ErrorStore

PRECURSOR_TYPES: Sequence[ErrorType] = (ErrorType.CE, ErrorType.UEO)

#: Observation window of the hypothetical in-row predictor (6 hours).
DEFAULT_LOOKBACK_DAYS: float = 0.25

_DAY_S = 86400.0


@dataclass(frozen=True)
class LevelSuddenStats:
    """Sudden/non-sudden counts of one micro-level (one Table I row)."""

    level: MicroLevel
    sudden: int
    non_sudden: int

    @property
    def total(self) -> int:
        """Units with at least one UER at this level."""
        return self.sudden + self.non_sudden

    @property
    def predictable_ratio(self) -> float:
        """Fraction of UER units an in-unit history predictor could see
        coming."""
        return self.non_sudden / self.total if self.total else 0.0


def classify_unit_sudden(store: ErrorStore, level: MicroLevel, key: tuple,
                         lookback_days: Optional[float] = DEFAULT_LOOKBACK_DAYS
                         ) -> bool:
    """True when the unit's first UER was *sudden* (no CE/UEO inside the
    lookback window before it).

    Raises ``ValueError`` when the unit has no UER at all.
    """
    first_uer = store.first_event_of(level, key, ErrorType.UER)
    if first_uer is None:
        raise ValueError(f"unit {key} at {level.name} has no UER")
    since = None
    if lookback_days is not None:
        since = first_uer.timestamp - lookback_days * _DAY_S
    return not store.has_event_before(level, key, PRECURSOR_TYPES,
                                      before=first_uer.timestamp, since=since)


def compute_sudden_uer_table(store: ErrorStore,
                             levels: Sequence[MicroLevel] = (),
                             lookback_days: Optional[float] =
                             DEFAULT_LOOKBACK_DAYS
                             ) -> Dict[MicroLevel, LevelSuddenStats]:
    """Sudden/non-sudden statistics for every requested micro-level.

    Defaults to the seven levels of the paper's Table I.
    """
    levels = tuple(levels) or MicroLevel.paper_levels()
    table: Dict[MicroLevel, LevelSuddenStats] = {}
    for level in levels:
        sudden = 0
        non_sudden = 0
        for key in store.units_with(level, ErrorType.UER):
            if classify_unit_sudden(store, level, key, lookback_days):
                sudden += 1
            else:
                non_sudden += 1
        table[level] = LevelSuddenStats(level=level, sudden=sudden,
                                        non_sudden=non_sudden)
    return table


def format_sudden_table(table: Dict[MicroLevel, LevelSuddenStats]) -> str:
    """Plain-text rendering in the paper's Table I layout."""
    lines = [f"{'Micro-level':<12}{'Sudden UER':>12}{'Non-sudden UER':>16}"
             f"{'Predictable Ratio':>20}"]
    for level, stats in table.items():
        lines.append(
            f"{level.label:<12}{stats.sudden:>12}{stats.non_sudden:>16}"
            f"{stats.predictable_ratio:>19.2%}")
    return "\n".join(lines)
