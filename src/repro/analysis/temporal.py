"""Temporal structure of the error stream: inter-arrival and burstiness.

Complements the spatial empirical study: the paper's temporal features
(Section IV-B/IV-D) presume that aggregation failures *accelerate* —
errors arrive in bursts once a fault activates.  These statistics verify
that property on any store and quantify it, plus a bootstrap
confidence-interval helper for ICR-style ratio metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.events import ErrorType
from repro.telemetry.store import ErrorStore


@dataclass(frozen=True)
class InterArrivalStats:
    """Summary of inter-arrival gaps (seconds) of one event population."""

    count: int
    mean_s: float
    median_s: float
    p90_s: float
    burstiness: float

    @staticmethod
    def from_gaps(gaps: np.ndarray) -> "InterArrivalStats":
        """Build from raw gap samples.

        Burstiness uses the Goh-Barabasi coefficient
        ``B = (sigma - mu) / (sigma + mu)``: 0 for a Poisson process,
        towards +1 for bursty streams, towards -1 for periodic ones.
        """
        if gaps.size == 0:
            return InterArrivalStats(0, float("nan"), float("nan"),
                                     float("nan"), float("nan"))
        mu = float(gaps.mean())
        sigma = float(gaps.std())
        burstiness = ((sigma - mu) / (sigma + mu)
                      if sigma + mu > 0 else 0.0)
        return InterArrivalStats(
            count=int(gaps.size), mean_s=mu,
            median_s=float(np.median(gaps)),
            p90_s=float(np.quantile(gaps, 0.9)),
            burstiness=burstiness)


def bank_interarrival_gaps(store: ErrorStore,
                           error_type: Optional[ErrorType] = None
                           ) -> np.ndarray:
    """Within-bank inter-arrival gaps pooled over all banks.

    Pooling across banks without the per-bank grouping would measure the
    fleet's aggregate arrival process instead of per-fault dynamics.
    """
    from repro.hbm.address import MicroLevel

    gaps: List[float] = []
    for bank in store.units(MicroLevel.BANK):
        events = store.events_for(MicroLevel.BANK, bank, error_type)
        times = [e.timestamp for e in events]
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    return np.asarray(gaps, dtype=np.float64)


def uer_acceleration(store: ErrorStore) -> Tuple[float, float]:
    """(median first gap, median later gap) between a bank's UERs.

    Aggregation faults accelerate: the gap between UER k and k+1 shrinks
    as k grows.  Returns medians of the first gap (rows 1->2) and of all
    later gaps, pooled over banks with >= 3 distinct UER rows.
    """
    first_gaps: List[float] = []
    later_gaps: List[float] = []
    for bank in store.banks_with_min_uer_rows(3):
        times = [r.timestamp for r in store.uer_rows_of_bank(bank)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        first_gaps.append(gaps[0])
        later_gaps.extend(gaps[1:])
    if not first_gaps or not later_gaps:
        return float("nan"), float("nan")
    return float(np.median(first_gaps)), float(np.median(later_gaps))


def bootstrap_ratio_ci(numerators: Sequence[int], denominators: Sequence[int],
                       n_resamples: int = 2000, alpha: float = 0.05,
                       seed: int = 0) -> Tuple[float, float, float]:
    """Bootstrap CI for a pooled ratio like the ICR.

    Args:
        numerators/denominators: per-bank covered and total UER rows;
            resampling is at bank granularity (banks are the independent
            units, rows within a bank are not).

    Returns ``(point_estimate, ci_low, ci_high)``.
    """
    num = np.asarray(numerators, dtype=np.float64)
    den = np.asarray(denominators, dtype=np.float64)
    if num.shape != den.shape or num.ndim != 1:
        raise ValueError("numerators and denominators must be 1-d aligned")
    if num.size == 0 or den.sum() == 0:
        raise ValueError("need non-empty data with a non-zero denominator")
    point = float(num.sum() / den.sum())
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    n = num.size
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        total = den[idx].sum()
        estimates[i] = num[idx].sum() / total if total > 0 else 0.0
    low, high = np.quantile(estimates, [alpha / 2, 1 - alpha / 2])
    return point, float(low), float(high)


def format_temporal_report(store: ErrorStore) -> str:
    """Human-readable temporal summary of a store."""
    lines = ["Temporal structure (within-bank inter-arrival gaps):"]
    for error_type in (None, ErrorType.CE, ErrorType.UEO, ErrorType.UER):
        label = error_type.value if error_type else "all"
        stats = InterArrivalStats.from_gaps(
            bank_interarrival_gaps(store, error_type))
        if stats.count == 0:
            lines.append(f"  {label:<4} (no gaps)")
            continue
        lines.append(
            f"  {label:<4} n={stats.count:>7} median={stats.median_s / 3600:8.1f}h "
            f"p90={stats.p90_s / 86400:6.1f}d burstiness={stats.burstiness:+.2f}")
    first, later = uer_acceleration(store)
    if not np.isnan(first):
        lines.append(f"  UER acceleration: median gap rows 1->2 = "
                     f"{first / 86400:.2f}d, later gaps = {later / 86400:.2f}d")
    return "\n".join(lines)
