"""Cross-row UER locality analysis (Figure 4).

Section III-C quantifies how close a subsequent UER lands to the current
UER row: for each distance threshold ``d`` (4 ... 2048 rows), compare the
observed number of consecutive-UER pairs within ``d`` rows against the
expectation under a no-locality null (the next UER row uniform over the
bank), and report the chi-square statistic.  The paper finds the strongest
significance at ``d = 128``, which fixes Cordial's prediction window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.store import ErrorStore


@dataclass(frozen=True)
class LocalityCurve:
    """Chi-square statistic per row-distance threshold (Figure 4's series)."""

    thresholds: Tuple[int, ...]
    chi_squared: Tuple[float, ...]
    n_pairs: int

    @property
    def peak_threshold(self) -> int:
        """Threshold with the strongest statistical significance."""
        return self.thresholds[int(np.argmax(self.chi_squared))]

    def as_dict(self) -> Dict[int, float]:
        """``{threshold: chi_square}`` mapping."""
        return dict(zip(self.thresholds, self.chi_squared))


def consecutive_uer_distances(store: ErrorStore,
                              bank_keys: Optional[Sequence[tuple]] = None
                              ) -> np.ndarray:
    """|row difference| between consecutive distinct UER rows, per bank,
    pooled over ``bank_keys`` (default: every bank with >= 2 UER rows)."""
    if bank_keys is None:
        bank_keys = store.banks_with_min_uer_rows(2)
    distances: List[int] = []
    for key in bank_keys:
        rows = [record.row for record in store.uer_rows_of_bank(key)]
        for previous, current in zip(rows, rows[1:]):
            distances.append(abs(current - previous))
    return np.asarray(distances, dtype=np.int64)


def chi_square_within_threshold(distances: np.ndarray, threshold: int,
                                total_rows: int) -> float:
    """Chi-square of observed-vs-expected pairs within ``threshold`` rows.

    Null hypothesis: the next UER row is uniform over the bank's rows, so a
    pair lands within ``threshold`` with probability
    ``p = min(1, 2 * threshold / total_rows)``.  One degree of freedom:

        chi2 = (O - E)^2 / E + ((N - O) - (N - E))^2 / (N - E)
    """
    n = distances.size
    if n == 0:
        return 0.0
    p = min(1.0, 2.0 * threshold / total_rows)
    expected = n * p
    observed = float(np.count_nonzero(distances <= threshold))
    if expected <= 0 or expected >= n:
        return 0.0
    return ((observed - expected) ** 2 / expected
            + (observed - expected) ** 2 / (n - expected))


def compute_locality_chisquare(store: ErrorStore,
                               thresholds: Sequence[int] = (
                                   4, 8, 16, 32, 64, 128, 256, 512, 1024,
                                   2048),
                               total_rows: int = 32768) -> LocalityCurve:
    """The Figure 4 curve: chi-square per distance threshold."""
    distances = consecutive_uer_distances(store)
    chi = tuple(chi_square_within_threshold(distances, t, total_rows)
                for t in thresholds)
    return LocalityCurve(thresholds=tuple(thresholds), chi_squared=chi,
                         n_pairs=int(distances.size))


def format_locality_curve(curve: LocalityCurve) -> str:
    """Plain-text rendering of the Figure 4 series."""
    lines = [f"{'Row Distance Threshold':<24}{'Chi-Squared Value':>18}"]
    for threshold, value in zip(curve.thresholds, curve.chi_squared):
        marker = "  <-- peak" if threshold == curve.peak_threshold else ""
        lines.append(f"{threshold:<24}{value:>18.1f}{marker}")
    return "\n".join(lines)
