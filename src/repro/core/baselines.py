"""Baselines Cordial is compared against (Section V-B).

* :class:`NeighborRowsBaseline` — the industrial baseline of Table IV:
  whenever a UER row is identified, isolate the eight rows adjacent to it
  (four above, four below), hoping to contain the propagation.
* :class:`InRowPredictor` — the classic in-row paradigm the paper argues
  against: predict a UER in a row iff that same row showed CEs/UEOs
  earlier.  Its ceiling is the row-level predictable ratio (4.39 % in the
  paper's data), which is the point of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.features import CrossRowWindow
from repro.core.isolation import IsolationReplay
from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass
class NeighborRowsBaseline:
    """Reactive +/-4-row isolation around every observed UER row.

    Args:
        neighbor_rows: total adjacent rows isolated per UER (8 in the
            paper: the four rows on each side).
        total_rows: bank height for clipping.
    """

    neighbor_rows: int = 8
    total_rows: int = 32768

    def rows_around(self, row: int) -> List[int]:
        """The adjacent rows isolated for one observed UER row."""
        half = self.neighbor_rows // 2
        rows = [r for r in range(row - half, row + half + 1)
                if r != row and 0 <= r < self.total_rows]
        return rows

    def replay(self, events_by_bank: Dict[tuple, Sequence[ErrorRecord]],
               replay_env: Optional[IsolationReplay] = None
               ) -> IsolationReplay:
        """Apply the policy over per-bank event streams.

        Every UER event triggers isolation of its neighbourhood (and of the
        failing row itself, which never counts toward ICR because its
        isolation time equals its failure time).
        """
        env = replay_env or IsolationReplay()
        for bank_key, events in events_by_bank.items():
            for record in events:
                if record.error_type is ErrorType.UER:
                    rows = self.rows_around(record.row) + [record.row]
                    env.isolate_rows(bank_key, rows, record.timestamp)
        return env

    def block_prediction(self, last_uer_row: int,
                         window: CrossRowWindow) -> np.ndarray:
        """The baseline expressed in Cordial's block frame.

        For the Table IV precision/recall comparison the baseline's
        isolation footprint at trigger time (the +/-4 rows around the last
        UER row) is mapped onto the 16-block window: a block is "predicted
        positive" when the footprint overlaps it.
        """
        flagged = np.zeros(window.n_blocks, dtype=bool)
        for row in self.rows_around(last_uer_row):
            block = window.block_of_row(last_uer_row, row)
            if block >= 0:
                flagged[block] = True
        return flagged


@dataclass
class InRowPredictor:
    """In-row failure prediction: a row fails iff it already misbehaved.

    Args:
        min_precursors: CE/UEO events a row must accumulate before the
            predictor fires on it.
    """

    min_precursors: int = 1

    def predicted_rows(self, events: Sequence[ErrorRecord]) -> Set[int]:
        """Rows flagged by in-row history at any point of the stream."""
        counts: Dict[int, int] = {}
        flagged: Set[int] = set()
        for record in events:
            if record.error_type in (ErrorType.CE, ErrorType.UEO):
                counts[record.row] = counts.get(record.row, 0) + 1
                if counts[record.row] >= self.min_precursors:
                    flagged.add(record.row)
        return flagged

    def coverage(self, events: Sequence[ErrorRecord]) -> Tuple[int, int]:
        """(covered, total) distinct UER rows an in-row predictor catches.

        A UER row counts as covered when it accumulated
        ``min_precursors`` CE/UEO events strictly before its first UER.
        """
        counts: Dict[int, int] = {}
        first_uer_seen: Set[int] = set()
        covered = 0
        for record in events:
            if record.error_type is ErrorType.UER:
                if record.row not in first_uer_seen:
                    first_uer_seen.add(record.row)
                    if counts.get(record.row, 0) >= self.min_precursors:
                        covered += 1
            else:
                counts[record.row] = counts.get(record.row, 0) + 1
        return covered, len(first_uer_seen)
