"""Cordial as an online service: one object, one event at a time.

The batch pipeline (:mod:`repro.core.pipeline`) trains and evaluates on
full traces; a deployment instead feeds events as they arrive and wants a
decision back the moment a bank becomes actionable.  ``CordialService``
wraps a fitted :class:`~repro.core.pipeline.Cordial` behind exactly that
interface, and keeps the isolation ledger so operators can query coverage
and cost at any point in time.

The serving path is hardened for field telemetry:

* **out-of-order tolerance** — events are staged through the collector's
  reorder buffer (``max_skew``); any stream displaced by less than the
  skew window yields decisions identical to the sorted stream, and
  hopelessly late or malformed inputs land in a dead-letter list instead
  of crashing the service (see :mod:`repro.telemetry.collector`);
* **checkpoint/restore** — :meth:`state_dict` captures every piece of
  mutable state (collector buffers, reorder buffer, sparing ledgers,
  per-bank prediction state, stats, metrics); a service restored from a
  checkpoint resumes mid-stream and emits byte-identical decisions
  versus an uninterrupted run (``repro.core.persistence`` wraps this in
  a versioned file format);
* **observability** — a shared :class:`MetricsRegistry` counts ingest
  latency, trigger/re-prediction rates, reorder-buffer depth,
  dead-letter reasons and sparing-budget pressure.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.incremental import IncrementalFeatureState
from repro.core.isolation import IsolationReplay
from repro.core.pipeline import Cordial
from repro.faults.types import FailurePattern
from repro.obs import Observability
from repro.telemetry.collector import BMCCollector
from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class Decision:
    """One actionable decision emitted by the service.

    Attributes:
        timestamp: when the decision fired.
        bank_key: the bank acted on.
        pattern: classified failure pattern (set on trigger decisions).
        action: ``"row-spare"`` or ``"bank-spare"``.
        rows: rows newly isolated (empty for bank sparing).
        is_reprediction: True when this came from a post-trigger re-run.
        sequence: sequence number of the *causing* released record.  A
            released record causes at most one decision and sequences are
            unique, so ``(timestamp, sequence)`` totally orders decisions
            — the key the sharded fleet engine merges per-shard streams
            on.  Deliberately excluded from :meth:`to_obj` (the canonical
            JSON is unchanged, so decision digests stay stable) and from
            equality; ``-1`` marks a decision built without one.
    """

    timestamp: float
    bank_key: tuple
    pattern: Optional[FailurePattern]
    action: str
    rows: tuple
    is_reprediction: bool = False
    sequence: int = field(default=-1, compare=False)

    def to_obj(self) -> dict:
        """JSON-ready rendering (canonical: used for equivalence checks)."""
        return {
            "timestamp": self.timestamp,
            "bank_key": list(self.bank_key),
            "pattern": None if self.pattern is None else self.pattern.value,
            "action": self.action,
            "rows": [int(r) for r in self.rows],
            "is_reprediction": self.is_reprediction,
        }


@dataclass
class ServiceStats:
    """Running counters of an online session."""

    events_ingested: int = 0
    triggers_fired: int = 0
    repredictions: int = 0
    decisions_by_action: Dict[str, int] = field(default_factory=dict)

    def record_decision(self, decision: Decision) -> None:
        """Count one decision."""
        self.decisions_by_action[decision.action] = (
            self.decisions_by_action.get(decision.action, 0) + 1)

    def to_dict(self) -> dict:
        """JSON-ready state."""
        return {
            "events_ingested": self.events_ingested,
            "triggers_fired": self.triggers_fired,
            "repredictions": self.repredictions,
            "decisions_by_action": {
                k: self.decisions_by_action[k]
                for k in sorted(self.decisions_by_action)},
        }

    @classmethod
    def from_dict(cls, state: dict) -> "ServiceStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(events_ingested=int(state["events_ingested"]),
                   triggers_fired=int(state["triggers_fired"]),
                   repredictions=int(state["repredictions"]),
                   decisions_by_action=dict(state["decisions_by_action"]))


class CordialService:
    """Streaming front-end over a fitted Cordial model.

    Feed MCE events through :meth:`ingest` as they arrive; it returns the
    decisions (possibly none) that the event caused, then call
    :meth:`flush` at end of stream (or before a final coverage query) to
    release anything the reorder buffer still holds.  Semantics match
    the batch replay in ``Cordial.evaluate``: classify at the k-th
    distinct UER row, bank-spare scattered banks, row-spare predicted
    blocks for aggregation banks, optionally re-predict on every further
    UER.

    Args:
        cordial: a *fitted* Cordial pipeline.
        spares_per_bank: row-sparing budget for the internal ledger.
        max_skew: tolerated timestamp disorder (stream-time seconds);
            0 keeps the historical release-immediately behaviour.
        metrics: optional shared metrics registry (one is created when
            omitted; collector and ledger record into the same registry).
        incremental_features: when True (default), re-predictions build
            their cross-row features from a per-bank
            :class:`IncrementalFeatureState` folded O(1) per released
            event instead of re-walking the bank's full history; the
            decisions are bit-identical either way
            (``tests/test_feature_equivalence.py``), so False exists only
            as the recompute reference for equivalence tests and
            benchmarks.
        obs: optional :class:`~repro.obs.Observability` bundle.  Strictly
            passive — with it attached the decisions and ICR are
            byte-identical to an unobserved run
            (``tests/test_obs_equivalence.py``); the journal and audit
            trail record what the service did, never influence it.
    """

    def __init__(self, cordial: Cordial, spares_per_bank: int = 64,
                 max_skew: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None,
                 incremental_features: bool = True,
                 obs: Optional[Observability] = None) -> None:
        if not getattr(cordial, "_fitted", False):
            raise ValueError("CordialService requires a fitted Cordial")
        self.cordial = cordial
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs = obs
        if obs is not None and not obs.audit.feature_names:
            obs.audit.feature_names = list(
                cordial.predictor.featurizer.feature_names())
        self.collector = BMCCollector(
            trigger_uer_rows=cordial.trigger_uer_rows,
            max_skew=max_skew, metrics=self.metrics, obs=obs)
        self.replay = IsolationReplay(spares_per_bank=spares_per_bank,
                                      metrics=self.metrics)
        self.stats = ServiceStats()
        self.incremental_features = incremental_features
        self._pattern_of: Dict[tuple, FailurePattern] = {}
        self._uer_rows: Dict[tuple, List[int]] = {}
        self._feature_state: Dict[tuple, IncrementalFeatureState] = {}
        self._explainer = None  # lazily built when obs.audit.attributions

    # -- event path ----------------------------------------------------------
    def ingest(self, record: ErrorRecord) -> List[Decision]:
        """Feed one event; returns any decisions it caused.

        With a positive ``max_skew`` the decisions may belong to earlier
        events that this arrival released from the reorder buffer.
        """
        span = (self.obs.tracer.span("service.ingest")
                if self.obs is not None else nullcontext())
        with span, self.metrics.timer("service.ingest_seconds"):
            self.stats.events_ingested += 1
            decisions: List[Decision] = []
            for released, trigger in self.collector.ingest(record):
                decisions.extend(self._process(released, trigger))
            for decision in decisions:
                self.stats.record_decision(decision)
                self.metrics.counter(
                    "service.decisions",
                    labels={"action": decision.action}).inc()
        return decisions

    def flush(self) -> List[Decision]:
        """Release the reorder buffer (end of stream); returns decisions."""
        span = (self.obs.tracer.span("service.flush")
                if self.obs is not None else nullcontext())
        decisions: List[Decision] = []
        with span:
            self._flush_into(decisions)
        return decisions

    def _flush_into(self, decisions: List[Decision]) -> None:
        for released, trigger in self.collector.flush():
            decisions.extend(self._process(released, trigger))
        for decision in decisions:
            self.stats.record_decision(decision)
            self.metrics.counter(
                "service.decisions",
                labels={"action": decision.action}).inc()

    def _process(self, record: ErrorRecord, trigger) -> List[Decision]:
        """Handle one *released* (in-order) event."""
        if trigger is not None:
            return self._on_trigger(trigger)
        state = self._feature_state.get(record.bank_key)
        if state is not None:
            # Fold first: the state must mirror "history through this
            # record" before any re-prediction reads it, exactly like the
            # truncated recompute in ``_history_through``.
            state.update(record)
        if (record.error_type is ErrorType.UER
                and record.bank_key in self._pattern_of):
            decision = self._on_subsequent_uer(record)
            if decision is not None:
                return [decision]
        return []

    def _on_trigger(self, trigger) -> List[Decision]:
        self.stats.triggers_fired += 1
        pattern = self.cordial.classifier.predict(trigger.history)
        if self.obs is not None:
            self.obs.journal.trigger(trigger.bank_key, trigger.timestamp,
                                     pattern.value, tuple(trigger.uer_rows))
        if not pattern.is_aggregation:
            # Bank sparing retires the whole bank: keep no per-bank
            # prediction state (it would never be read again and grows
            # without bound over a long stream).
            self.replay.isolate_bank(trigger.bank_key, trigger.timestamp)
            if self.obs is not None:
                self.obs.journal.isolation(
                    trigger.bank_key, trigger.timestamp, "bank-spare",
                    (), 0, None)
                self.obs.audit.record_decision(
                    kind="trigger", timestamp=trigger.timestamp,
                    bank_key=trigger.bank_key, action="bank-spare",
                    pattern=pattern.value)
            return [Decision(timestamp=trigger.timestamp,
                             bank_key=trigger.bank_key, pattern=pattern,
                             action="bank-spare", rows=(),
                             sequence=trigger.history[-1].sequence)]
        self._pattern_of[trigger.bank_key] = pattern
        self._uer_rows[trigger.bank_key] = list(trigger.uer_rows)
        if self.incremental_features:
            self._feature_state[trigger.bank_key] = (
                IncrementalFeatureState.from_history(trigger.history))
        # extract + predict_from_features is exactly what predict() does
        # internally; splitting it here hands the audit trail the very
        # feature matrix the model scored.
        predictor = self.cordial.predictor
        X = predictor.featurizer.extract_blocks(trigger.history,
                                                trigger.uer_rows[-1])
        prediction = predictor.predict_from_features(X, trigger.uer_rows[-1])
        rows = tuple(int(r) for r in prediction.rows_to_isolate())
        budget_before = (self.replay.row_ctrl.remaining(trigger.bank_key)
                         if self.obs is not None else None)
        newly = self.replay.isolate_rows(trigger.bank_key, rows,
                                         trigger.timestamp)
        if self.obs is not None:
            self._observe_row_decision(
                kind="trigger", timestamp=trigger.timestamp,
                bank_key=trigger.bank_key, pattern=pattern,
                prediction=prediction, X=X, rows=rows, newly=newly,
                budget_before=budget_before)
        return [Decision(timestamp=trigger.timestamp,
                         bank_key=trigger.bank_key, pattern=pattern,
                         action="row-spare", rows=rows,
                         sequence=trigger.history[-1].sequence)]

    def _on_subsequent_uer(self, record: ErrorRecord) -> Optional[Decision]:
        if not self.cordial.repredict_each_uer:
            return None
        rows_seen = self._uer_rows[record.bank_key]
        if record.row in rows_seen:
            return None
        rows_seen.append(record.row)
        self.stats.repredictions += 1
        self.metrics.counter("service.repredictions").inc()
        if self.obs is not None:
            self.obs.journal.reprediction(record.bank_key, record.timestamp,
                                          record.row)
        predictor = self.cordial.predictor
        if self.incremental_features:
            # O(1)-per-event fold already happened in _process; build the
            # block features from the running aggregates instead of
            # re-walking the bank history.
            agg = self._feature_state[record.bank_key].aggregates()
            X = predictor.featurizer.extract_from_aggregates(agg, record.row)
        else:
            history = self._history_through(record)
            X = predictor.featurizer.extract_blocks(history, record.row)
        prediction = predictor.predict_from_features(X, record.row)
        rows = tuple(int(r) for r in prediction.rows_to_isolate())
        budget_before = (self.replay.row_ctrl.remaining(record.bank_key)
                         if self.obs is not None else None)
        newly = self.replay.isolate_rows(record.bank_key, rows,
                                         record.timestamp)
        pattern = self._pattern_of[record.bank_key]
        if self.obs is not None:
            self._observe_row_decision(
                kind="reprediction", timestamp=record.timestamp,
                bank_key=record.bank_key, pattern=pattern,
                prediction=prediction, X=X, rows=rows, newly=newly,
                budget_before=budget_before)
        return Decision(timestamp=record.timestamp,
                        bank_key=record.bank_key,
                        pattern=pattern,
                        action="row-spare", rows=rows,
                        is_reprediction=True,
                        sequence=record.sequence)

    def _observe_row_decision(self, *, kind: str, timestamp: float,
                              bank_key: tuple, pattern: FailurePattern,
                              prediction, X: np.ndarray, rows: tuple,
                              newly: int, budget_before: int) -> None:
        """Journal + audit one row-sparing decision (obs is attached)."""
        budget_after = self.replay.row_ctrl.remaining(bank_key)
        self.obs.journal.isolation(bank_key, timestamp, "row-spare", rows,
                                   newly, budget_after)
        attributions = None
        if self.obs.audit.attributions:
            attributions = self.obs.audit.attribute_flagged(
                self._block_explainer(), X, prediction.flagged)
        self.obs.audit.record_decision(
            kind=kind, timestamp=timestamp, bank_key=bank_key,
            action="row-spare", pattern=pattern.value,
            threshold=self.cordial.predictor.effective_threshold,
            probabilities=prediction.probabilities,
            flagged=prediction.flagged,
            block_ranges=prediction.block_ranges, features=X,
            rows_requested=rows, newly_spared=newly,
            budget_before=budget_before, budget_after=budget_after,
            attributions=attributions)

    def _block_explainer(self):
        """Lazily built explainer for audit attributions.

        The baseline is a zero vector — the natural neutral point for
        count/recency features — so building it needs no training data.
        """
        if self._explainer is None:
            from repro.core.explain import BlockExplainer

            n = self.cordial.predictor.featurizer.n_features
            self._explainer = BlockExplainer(
                self.cordial.predictor, baseline=np.zeros(n))
        return self._explainer

    def _history_through(self, record: ErrorRecord) -> tuple:
        """The bank's history up to and including ``record``.

        One collector ingest can release a *batch* of reordered events,
        all already applied to the bank buffers by the time the service
        processes the first of them.  Re-predicting from the full buffer
        would leak later same-batch events into the features; truncating
        at the record keeps decisions identical to the sorted stream.
        """
        history = self.collector.bank_history(record.bank_key)
        for index in range(len(history) - 1, -1, -1):
            if history[index] is record:
                return history[:index + 1]
        return history

    # -- queries ------------------------------------------------------------------
    def is_row_isolated(self, bank_key: tuple, row: int,
                        at_time: Optional[float] = None) -> bool:
        """Whether a row is covered by row- or bank-sparing.

        Args:
            at_time: when given, answers time-aware — was the row
                isolated *strictly before* ``at_time``? — through the
                same path :meth:`IsolationReplay.is_row_covered` uses for
                scoring, so live queries and ICR scoring always agree.
        """
        if at_time is not None:
            covered, _ = self.replay.is_row_covered(bank_key, row, at_time)
            return covered
        return (self.replay.bank_ctrl.is_isolated(bank_key)
                or self.replay.row_ctrl.is_isolated(bank_key, row))

    def coverage(self, uer_rows_by_bank) -> float:
        """ICR of this session against the given ground truth."""
        return self.replay.result(uer_rows_by_bank).icr

    @property
    def spared_rows(self) -> int:
        """Total rows spared so far."""
        return self.replay.row_ctrl.total_spared_rows()

    @property
    def spared_banks(self) -> int:
        """Total banks retired so far."""
        return self.replay.bank_ctrl.spared_bank_count()

    def has_bank_state(self, bank_key: tuple) -> bool:
        """Whether per-bank prediction state is retained for ``bank_key``."""
        return (bank_key in self._pattern_of or bank_key in self._uer_rows
                or bank_key in self._feature_state)

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Every piece of mutable service state, JSON-ready.

        The model itself is *not* included — persistence
        (:func:`repro.core.persistence.save_service_checkpoint`) stores
        the fitted pipeline next to this state in the same document.
        When an observability bundle is attached, its checkpointable
        slice (the audit trail — see ``Observability.state_dict``) rides
        along under ``"obs"``; unobserved services omit the key, so
        their checkpoints are byte-identical to pre-observability ones.
        """
        state = self._base_state_dict()
        if self.obs is not None:
            state["obs"] = self.obs.state_dict()
        return state

    def _base_state_dict(self) -> dict:
        return {
            "spares_per_bank": self.replay.spares_per_bank,
            "max_skew": self.collector.max_skew,
            "collector": self.collector.state_dict(),
            "replay": self.replay.state_dict(),
            "stats": self.stats.to_dict(),
            "pattern_of": [[[int(b) for b in bank], pattern.value]
                           for bank, pattern in
                           sorted(self._pattern_of.items())],
            "uer_rows": [[[int(b) for b in bank], [int(r) for r in rows]]
                         for bank, rows in sorted(self._uer_rows.items())],
            "feature_state": [[[int(b) for b in bank], state.to_dict()]
                              for bank, state in
                              sorted(self._feature_state.items())],
            "metrics": self.metrics.as_dict(),
        }

    def load_state_dict(self, state: dict) -> "CordialService":
        """Restore state captured by :meth:`state_dict`.

        The restore is **transactional**: every piece of the document is
        parsed into fresh objects before anything is committed, so a
        truncated or tampered state dict raises (see
        :class:`~repro.core.persistence.CheckpointCorruptionError` for
        the file-level wrapper) and leaves this service exactly as it
        was — a failed recovery must never corrupt the survivor.
        """
        # Parse phase: build everything aside; self stays untouched.
        collector = BMCCollector(metrics=self.metrics)
        collector.load_state_dict(state["collector"])
        replay = IsolationReplay(metrics=self.metrics)
        replay.load_state_dict(state["replay"])
        stats = ServiceStats.from_dict(state["stats"])
        pattern_of = {tuple(bank): FailurePattern(value)
                      for bank, value in state["pattern_of"]}
        uer_rows = {tuple(bank): list(rows)
                    for bank, rows in state["uer_rows"]}
        feature_state: Dict[tuple, IncrementalFeatureState] = {}
        if self.incremental_features:
            # Version-2 checkpoints carry the folded state; for version-1
            # documents (or a snapshot taken with the recompute path) the
            # state is rebuilt from the collector's released histories,
            # which are identical to a fold over the same events.
            saved = {tuple(bank): folded
                     for bank, folded in state.get("feature_state", [])}
            for bank in pattern_of:
                folded = saved.get(bank)
                feature_state[bank] = (
                    IncrementalFeatureState.from_dict(folded)
                    if folded is not None
                    else IncrementalFeatureState.from_history(
                        collector.bank_history(bank)))
        # Dry-run the metrics document against a scratch registry before
        # touching the shared one.
        MetricsRegistry().restore(state["metrics"])
        # The obs slice (audit trail) parses into a scratch bundle too —
        # only version-3 checkpoints taken with obs attached carry it.
        obs_state = state.get("obs")
        if obs_state is not None:
            Observability().load_state_dict(obs_state)

        # Commit phase: nothing below can raise.
        self.collector = collector
        self.replay = replay
        self.stats = stats
        self._pattern_of = pattern_of
        self._uer_rows = uer_rows
        self._feature_state = feature_state
        self.metrics.restore(state["metrics"])
        if obs_state is not None:
            if self.obs is None:
                self.obs = Observability()
            self.obs.load_state_dict(obs_state)
        if self.obs is not None:
            self.collector.obs = self.obs
        return self
