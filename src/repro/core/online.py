"""Cordial as an online service: one object, one event at a time.

The batch pipeline (:mod:`repro.core.pipeline`) trains and evaluates on
full traces; a deployment instead feeds events as they arrive and wants a
decision back the moment a bank becomes actionable.  ``CordialService``
wraps a fitted :class:`~repro.core.pipeline.Cordial` behind exactly that
interface, and keeps the isolation ledger so operators can query coverage
and cost at any point in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.isolation import IsolationReplay
from repro.core.pipeline import Cordial
from repro.faults.types import FailurePattern
from repro.telemetry.collector import BMCCollector
from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass(frozen=True)
class Decision:
    """One actionable decision emitted by the service.

    Attributes:
        timestamp: when the decision fired.
        bank_key: the bank acted on.
        pattern: classified failure pattern (set on trigger decisions).
        action: ``"row-spare"`` or ``"bank-spare"``.
        rows: rows newly isolated (empty for bank sparing).
        is_reprediction: True when this came from a post-trigger re-run.
    """

    timestamp: float
    bank_key: tuple
    pattern: Optional[FailurePattern]
    action: str
    rows: tuple
    is_reprediction: bool = False


@dataclass
class ServiceStats:
    """Running counters of an online session."""

    events_ingested: int = 0
    triggers_fired: int = 0
    repredictions: int = 0
    decisions_by_action: Dict[str, int] = field(default_factory=dict)

    def record_decision(self, decision: Decision) -> None:
        """Count one decision."""
        self.decisions_by_action[decision.action] = (
            self.decisions_by_action.get(decision.action, 0) + 1)


class CordialService:
    """Streaming front-end over a fitted Cordial model.

    Feed MCE events in time order through :meth:`ingest`; it returns the
    decisions (possibly none) that the event triggered.  Semantics match
    the batch replay in ``Cordial.evaluate``: classify at the k-th
    distinct UER row, bank-spare scattered banks, row-spare predicted
    blocks for aggregation banks, optionally re-predict on every further
    UER.

    Args:
        cordial: a *fitted* Cordial pipeline.
        spares_per_bank: row-sparing budget for the internal ledger.
    """

    def __init__(self, cordial: Cordial, spares_per_bank: int = 64) -> None:
        if not getattr(cordial, "_fitted", False):
            raise ValueError("CordialService requires a fitted Cordial")
        self.cordial = cordial
        self.collector = BMCCollector(
            trigger_uer_rows=cordial.trigger_uer_rows)
        self.replay = IsolationReplay(spares_per_bank=spares_per_bank)
        self.stats = ServiceStats()
        self._pattern_of: Dict[tuple, FailurePattern] = {}
        self._uer_rows: Dict[tuple, List[int]] = {}

    # -- event path ----------------------------------------------------------
    def ingest(self, record: ErrorRecord) -> List[Decision]:
        """Feed one event; returns any decisions it caused."""
        self.stats.events_ingested += 1
        decisions: List[Decision] = []
        trigger = self.collector.ingest(record)
        if trigger is not None:
            decisions.extend(self._on_trigger(trigger))
        elif (record.error_type is ErrorType.UER
              and record.bank_key in self._pattern_of):
            decision = self._on_subsequent_uer(record)
            if decision is not None:
                decisions.append(decision)
        for decision in decisions:
            self.stats.record_decision(decision)
        return decisions

    def _on_trigger(self, trigger) -> List[Decision]:
        self.stats.triggers_fired += 1
        pattern = self.cordial.classifier.predict(trigger.history)
        self._uer_rows[trigger.bank_key] = list(trigger.uer_rows)
        if not pattern.is_aggregation:
            self.replay.isolate_bank(trigger.bank_key, trigger.timestamp)
            return [Decision(timestamp=trigger.timestamp,
                             bank_key=trigger.bank_key, pattern=pattern,
                             action="bank-spare", rows=())]
        self._pattern_of[trigger.bank_key] = pattern
        prediction = self.cordial.predictor.predict(trigger.history,
                                                    trigger.uer_rows[-1])
        rows = tuple(prediction.rows_to_isolate())
        self.replay.isolate_rows(trigger.bank_key, rows, trigger.timestamp)
        return [Decision(timestamp=trigger.timestamp,
                         bank_key=trigger.bank_key, pattern=pattern,
                         action="row-spare", rows=rows)]

    def _on_subsequent_uer(self, record: ErrorRecord) -> Optional[Decision]:
        if not self.cordial.repredict_each_uer:
            return None
        rows_seen = self._uer_rows[record.bank_key]
        if record.row in rows_seen:
            return None
        rows_seen.append(record.row)
        self.stats.repredictions += 1
        history = self.collector.bank_history(record.bank_key)
        prediction = self.cordial.predictor.predict(history, record.row)
        rows = tuple(prediction.rows_to_isolate())
        self.replay.isolate_rows(record.bank_key, rows, record.timestamp)
        return Decision(timestamp=record.timestamp,
                        bank_key=record.bank_key,
                        pattern=self._pattern_of[record.bank_key],
                        action="row-spare", rows=rows,
                        is_reprediction=True)

    # -- queries ------------------------------------------------------------------
    def is_row_isolated(self, bank_key: tuple, row: int) -> bool:
        """Whether a row is currently covered by row- or bank-sparing."""
        return (self.replay.bank_ctrl.is_isolated(bank_key)
                or self.replay.row_ctrl.is_isolated(bank_key, row))

    def coverage(self, uer_rows_by_bank) -> float:
        """ICR of this session against the given ground truth."""
        return self.replay.result(uer_rows_by_bank).icr

    @property
    def spared_rows(self) -> int:
        """Total rows spared so far."""
        return self.replay.row_ctrl.total_spared_rows()

    @property
    def spared_banks(self) -> int:
        """Total banks retired so far."""
        return self.replay.bank_ctrl.spared_bank_count()
