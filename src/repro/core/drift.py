"""Feature-drift monitoring for deployed Cordial models.

A model trained on one fleet regime silently degrades when the fault mix
shifts (see ``examples/capacity_planning.py``: the sudden-heavy scenario
halves coverage).  The standard guard is distribution monitoring: compare
the feature distribution of *live* trigger snapshots against the training
reference with the Population Stability Index (PSI) and alert when it
crosses the conventional thresholds (0.1 = drifting, 0.25 = retrain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Conventional PSI bands.
PSI_STABLE = 0.1
PSI_RETRAIN = 0.25


def population_stability_index(reference: np.ndarray, live: np.ndarray,
                               n_bins: int = 10) -> float:
    """PSI between two 1-d samples.

    Bins are reference deciles; both distributions are smoothed with a
    half-count per bin so empty bins stay finite.
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    live = np.asarray(live, dtype=np.float64).ravel()
    if reference.size < n_bins or live.size == 0:
        raise ValueError("need at least n_bins reference points and one "
                         "live point")
    quantiles = np.quantile(reference, np.linspace(0, 1, n_bins + 1)[1:-1])
    edges = np.unique(quantiles)
    ref_counts = np.histogram(reference,
                              bins=np.concatenate(([-np.inf], edges,
                                                   [np.inf])))[0]
    live_counts = np.histogram(live,
                               bins=np.concatenate(([-np.inf], edges,
                                                    [np.inf])))[0]
    ref_share = (ref_counts + 0.5) / (reference.size + 0.5 * len(ref_counts))
    live_share = (live_counts + 0.5) / (live.size + 0.5 * len(live_counts))
    return float(np.sum((live_share - ref_share)
                        * np.log(live_share / ref_share)))


@dataclass(frozen=True)
class DriftReport:
    """Per-feature PSI against the training reference."""

    psi_by_feature: Dict[str, float]
    n_reference: int
    n_live: int

    @property
    def worst_feature(self) -> str:
        """Feature with the highest PSI."""
        return max(self.psi_by_feature, key=self.psi_by_feature.get)

    @property
    def worst_psi(self) -> float:
        """Highest per-feature PSI."""
        return self.psi_by_feature[self.worst_feature]

    @property
    def status(self) -> str:
        """``"stable"``, ``"drifting"`` or ``"retrain"``."""
        if self.worst_psi < PSI_STABLE:
            return "stable"
        if self.worst_psi < PSI_RETRAIN:
            return "drifting"
        return "retrain"

    def drifting_features(self,
                          threshold: float = PSI_STABLE) -> List[str]:
        """Features whose PSI exceeds ``threshold``, worst first."""
        return sorted((name for name, psi in self.psi_by_feature.items()
                       if psi >= threshold),
                      key=lambda name: -self.psi_by_feature[name])

    def format(self, top: int = 8) -> str:
        """Plain-text summary of the worst-drifting features."""
        lines = [f"Drift status: {self.status.upper()} "
                 f"(worst PSI {self.worst_psi:.3f} on "
                 f"{self.worst_feature}; reference n={self.n_reference}, "
                 f"live n={self.n_live})"]
        ranked = sorted(self.psi_by_feature.items(),
                        key=lambda item: -item[1])[:top]
        for name, psi in ranked:
            band = ("retrain" if psi >= PSI_RETRAIN
                    else "drifting" if psi >= PSI_STABLE else "stable")
            lines.append(f"  {name:<32} PSI={psi:6.3f}  [{band}]")
        return "\n".join(lines)


class FeatureDriftMonitor:
    """Holds the training reference; scores batches of live snapshots.

    Args:
        reference: training feature matrix (rows = trigger snapshots).
        feature_names: column labels.
        n_bins: PSI binning resolution.
    """

    def __init__(self, reference: np.ndarray,
                 feature_names: Sequence[str],
                 n_bins: int = 10) -> None:
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2:
            raise ValueError("reference must be 2-dimensional")
        if reference.shape[1] != len(feature_names):
            raise ValueError("feature_names must match reference width")
        if reference.shape[0] < n_bins:
            raise ValueError("reference needs at least n_bins rows")
        self.reference = reference
        self.feature_names = list(feature_names)
        self.n_bins = n_bins

    def score(self, live: np.ndarray) -> DriftReport:
        """PSI of a live feature matrix against the reference."""
        live = np.asarray(live, dtype=np.float64)
        if live.ndim != 2 or live.shape[1] != self.reference.shape[1]:
            raise ValueError("live matrix must match the reference width")
        if live.shape[0] == 0:
            raise ValueError("live matrix is empty")
        psi = {
            name: population_stability_index(self.reference[:, j],
                                             live[:, j], self.n_bins)
            for j, name in enumerate(self.feature_names)
        }
        return DriftReport(psi_by_feature=psi,
                           n_reference=self.reference.shape[0],
                           n_live=live.shape[0])

    @classmethod
    def from_triggers(cls, featurizer, histories: Sequence,
                      n_bins: int = 10) -> "FeatureDriftMonitor":
        """Build a monitor from trigger histories and a featurizer."""
        matrix = featurizer.extract_many(histories)
        return cls(matrix, featurizer.feature_names(), n_bins=n_bins)
