"""The end-to-end Cordial pipeline (Figure 5) and its evaluation protocol.

Training (on the 70 % bank split):

1. replay the training banks' event streams through the BMC collector;
   every bank that reaches its third distinct UER row yields a *trigger
   snapshot* — the only information the method is allowed to see;
2. fit the failure-pattern classifier on (snapshot, ground-truth pattern);
3. fit the cross-row predictor on the (bank, block) samples of the
   aggregation-pattern triggers, labelled by which blocks contain future
   UER rows.

Evaluation (on the 30 % split) reproduces both Table III (pattern
classification P/R/F1) and Table IV (cross-row block P/R/F1 + ICR): the
test streams are replayed; at each trigger the bank is classified;
scattered banks are bank-spared, aggregation banks get cross-row
predictions whose flagged blocks are row-spared; the ICR is scored
time-aware against the ground-truth UER rows of *all* test banks —
including never-triggered banks and each bank's first three UERs, which no
method can preempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.baselines import NeighborRowsBaseline
from repro.core.classifier import FailurePatternClassifier
from repro.core.crossrow import CrossRowPredictor
from repro.core.features import CrossRowWindow
from repro.core.isolation import ICRResult, IsolationReplay
from repro.datasets.fleetgen import FleetDataset
from repro.faults.types import FailurePattern
from repro.ml.metrics import (ClassScores, WeightedScores, binary_scores,
                              precision_recall_f1, weighted_average)
from repro.telemetry.collector import BankTrigger, BMCCollector
from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass
class CordialEvaluation:
    """Everything the evaluation section reports, for one model.

    Attributes:
        model_name: which tree family produced these numbers.
        pattern_scores: per-pattern P/R/F1 (one Table III block).
        pattern_weighted: support-weighted averages (Table III last row).
        block_scores: positive-class P/R/F1 over all prediction blocks
            (Table IV columns 2-4).
        icr: isolation-coverage replay result (Table IV last column).
        n_test_triggers: triggered banks in the test split.
        n_crossrow_banks: banks that received cross-row predictions.
    """

    model_name: str
    pattern_scores: Dict[FailurePattern, ClassScores]
    pattern_weighted: WeightedScores
    block_scores: ClassScores
    icr: ICRResult
    n_test_triggers: int
    n_crossrow_banks: int


def collect_triggers(dataset: FleetDataset, banks: Sequence[tuple],
                     trigger_uer_rows: int = 3) -> List[BankTrigger]:
    """Replay the chosen banks' streams and collect their trigger snapshots.

    Replays each bank's own event sequence (bank streams are independent,
    so per-bank replay equals global replay restricted to these banks).
    """
    triggers: List[BankTrigger] = []
    for bank_key in banks:
        collector = BMCCollector(trigger_uer_rows=trigger_uer_rows)
        triggers.extend(collector.replay(dataset.store.bank_events(bank_key)))
    triggers.sort(key=lambda t: t.timestamp)
    return triggers


def collect_snapshots(dataset: FleetDataset, bank_key: tuple,
                      min_uer_rows: int = 3) -> List[BankTrigger]:
    """Every per-UER snapshot of one bank, from the trigger onwards.

    The k-th snapshot (k >= ``min_uer_rows``) carries the bank's history
    up to and including the first UER of its k-th distinct UER row —
    Cordial re-predicts at each of these as the failure unfolds.
    """
    snapshots: List[BankTrigger] = []
    events = dataset.store.bank_events(bank_key)
    seen_rows: List[int] = []
    seen_set: set = set()
    for index, record in enumerate(events):
        if (record.error_type is ErrorType.UER
                and record.row not in seen_set):
            seen_set.add(record.row)
            seen_rows.append(record.row)
            if len(seen_rows) >= min_uer_rows:
                snapshots.append(BankTrigger(
                    bank_key=bank_key,
                    timestamp=record.timestamp,
                    history=tuple(events[:index + 1]),
                    uer_rows=tuple(seen_rows),
                ))
    return snapshots


class Cordial:
    """The full method: classify the bank, then predict across rows.

    Args:
        model_name: tree family for both stages (Table IV trains one
            Cordial variant per family).
        window: cross-row window geometry (paper: +/-64 rows, 8-row blocks).
        trigger_uer_rows: UER rows that arm the trigger (paper: 3).
        threshold: block-flagging probability threshold (``None`` = pick
            the F1-maximising threshold on held-out training banks).
        spares_per_bank: row-sparing budget used in the ICR replay.
        repredict_each_uer: when True (deployment behaviour), the
            cross-row predictor re-runs at every subsequent UER of an
            aggregation bank with the window re-anchored on the newest UER
            row; the Table IV block metrics are still computed only at the
            trigger snapshot.
        random_state: seed for both models.
        n_jobs: training worker processes forwarded to both stages'
            models (``None``/``1`` = serial, ``-1`` = all cores); never
            changes the fitted pipeline.
    """

    def __init__(self, model_name: str = "Random Forest",
                 window: Optional[CrossRowWindow] = None,
                 trigger_uer_rows: int = 3,
                 threshold: Optional[float] = None,
                 spares_per_bank: int = 64,
                 repredict_each_uer: bool = True,
                 random_state: Optional[int] = 0,
                 n_jobs: Optional[int] = None) -> None:
        self.model_name = model_name
        self.trigger_uer_rows = trigger_uer_rows
        self.spares_per_bank = spares_per_bank
        self.repredict_each_uer = repredict_each_uer
        self.classifier = FailurePatternClassifier(
            model_name, random_state=random_state, n_jobs=n_jobs)
        self.predictor = CrossRowPredictor(
            model_name, window=window, threshold=threshold,
            random_state=random_state, n_jobs=n_jobs)
        self._fitted = False

    # ------------------------------------------------------------------ train
    def fit(self, dataset: FleetDataset,
            train_banks: Sequence[tuple]) -> "Cordial":
        """Train both stages on the given bank split."""
        triggers = collect_triggers(dataset, train_banks,
                                    self.trigger_uer_rows)
        if not triggers:
            raise ValueError("no bank in the training split ever triggers")
        histories = [t.history for t in triggers]
        patterns = [dataset.bank_truth[t.bank_key].pattern for t in triggers]
        self.classifier.fit(histories, patterns)

        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        for trigger, pattern in zip(triggers, patterns):
            if not pattern.is_aggregation:
                continue
            truth = dataset.bank_truth[trigger.bank_key]
            snapshots = [trigger]
            if self.repredict_each_uer:
                snapshots = collect_snapshots(dataset, trigger.bank_key,
                                              self.trigger_uer_rows)
            for snapshot in snapshots:
                X, y = self.predictor.build_samples(
                    snapshot.history, snapshot.uer_rows[-1],
                    snapshot.timestamp,
                    truth.future_uer_rows(snapshot.timestamp))
                xs.append(X)
                ys.append(y)
        if not xs:
            raise ValueError("no aggregation-pattern triggers to train on")
        self.predictor.fit_samples(np.vstack(xs), np.concatenate(ys))
        self._fitted = True
        return self

    # --------------------------------------------------------------- evaluate
    def evaluate(self, dataset: FleetDataset,
                 test_banks: Sequence[tuple]) -> CordialEvaluation:
        """Score pattern classification, block prediction and ICR."""
        if not self._fitted:
            raise RuntimeError("Cordial is not fitted")
        triggers = collect_triggers(dataset, test_banks,
                                    self.trigger_uer_rows)
        replay = IsolationReplay(spares_per_bank=self.spares_per_bank)

        true_patterns: List[str] = []
        predicted_patterns: List[str] = []
        y_true_blocks: List[np.ndarray] = []
        y_pred_blocks: List[np.ndarray] = []
        n_crossrow = 0

        if triggers:
            predicted = self.classifier.predict_many(
                [t.history for t in triggers])
        else:
            predicted = []
        for trigger, prediction in zip(triggers, predicted):
            truth = dataset.bank_truth[trigger.bank_key]
            true_patterns.append(truth.pattern.value)
            predicted_patterns.append(prediction.value)
            if prediction.is_aggregation:
                n_crossrow += 1
                block_pred = self.predictor.predict(
                    trigger.history, trigger.uer_rows[-1])
                labels = self.predictor.featurizer.block_labels(
                    trigger.uer_rows[-1], trigger.timestamp,
                    truth.future_uer_rows(trigger.timestamp))
                y_true_blocks.append(labels)
                y_pred_blocks.append(block_pred.flagged)
                replay.isolate_rows(trigger.bank_key,
                                    block_pred.rows_to_isolate(),
                                    trigger.timestamp)
                if self.repredict_each_uer:
                    for snapshot in collect_snapshots(
                            dataset, trigger.bank_key,
                            self.trigger_uer_rows)[1:]:
                        repred = self.predictor.predict(
                            snapshot.history, snapshot.uer_rows[-1])
                        replay.isolate_rows(snapshot.bank_key,
                                            repred.rows_to_isolate(),
                                            snapshot.timestamp)
            else:
                replay.isolate_bank(trigger.bank_key, trigger.timestamp)

        pattern_scores = precision_recall_f1(
            true_patterns, predicted_patterns,
            labels=[p.value for p in FailurePattern])
        pattern_scores = {FailurePattern(k): v
                          for k, v in pattern_scores.items()}
        weighted = weighted_average(
            {k.value: v for k, v in pattern_scores.items()})

        if y_true_blocks:
            blocks = binary_scores(np.concatenate(y_true_blocks),
                                   np.concatenate(y_pred_blocks))
        else:
            blocks = ClassScores(0.0, 0.0, 0.0, 0)

        icr = replay.result(self._uer_rows_by_bank(dataset, test_banks))
        return CordialEvaluation(
            model_name=self.model_name,
            pattern_scores=pattern_scores,
            pattern_weighted=weighted,
            block_scores=blocks,
            icr=icr,
            n_test_triggers=len(triggers),
            n_crossrow_banks=n_crossrow,
        )

    @staticmethod
    def _uer_rows_by_bank(dataset: FleetDataset,
                          banks: Sequence[tuple]
                          ) -> Dict[tuple, Sequence[Tuple[float, int]]]:
        rows: Dict[tuple, Sequence[Tuple[float, int]]] = {}
        for bank_key in banks:
            truth = dataset.bank_truth.get(bank_key)
            if truth is not None and truth.uer_row_sequence:
                rows[bank_key] = truth.uer_row_sequence
        return rows


def evaluate_neighbor_baseline(dataset: FleetDataset,
                               test_banks: Sequence[tuple],
                               window: Optional[CrossRowWindow] = None,
                               trigger_uer_rows: int = 3,
                               spares_per_bank: int = 64
                               ) -> CordialEvaluation:
    """Score the Neighbor-Rows baseline in the same frames as Cordial.

    Block P/R/F1 uses the baseline's footprint mapped onto the 16-block
    window at every trigger; ICR replays the reactive +/-4-row policy over
    the full test streams.
    """
    window = window or CrossRowWindow()
    baseline = NeighborRowsBaseline(
        total_rows=dataset.config.fleet.hbm.rows)
    triggers = collect_triggers(dataset, test_banks, trigger_uer_rows)

    from repro.core.features import CrossRowFeaturizer
    featurizer = CrossRowFeaturizer(window=window,
                                    total_rows=dataset.config.fleet.hbm.rows)
    y_true_blocks: List[np.ndarray] = []
    y_pred_blocks: List[np.ndarray] = []
    for trigger in triggers:
        truth = dataset.bank_truth[trigger.bank_key]
        labels = featurizer.block_labels(
            trigger.uer_rows[-1], trigger.timestamp,
            truth.future_uer_rows(trigger.timestamp))
        flagged = baseline.block_prediction(trigger.uer_rows[-1], window)
        y_true_blocks.append(labels)
        y_pred_blocks.append(flagged)

    if y_true_blocks:
        blocks = binary_scores(np.concatenate(y_true_blocks),
                               np.concatenate(y_pred_blocks))
    else:
        blocks = ClassScores(0.0, 0.0, 0.0, 0)

    replay = IsolationReplay(spares_per_bank=spares_per_bank)
    events_by_bank = {bank: dataset.store.bank_events(bank)
                      for bank in test_banks}
    baseline.replay(events_by_bank, replay_env=replay)
    icr = replay.result(Cordial._uer_rows_by_bank(dataset, test_banks))

    empty_scores = {p: ClassScores(0.0, 0.0, 0.0, 0) for p in FailurePattern}
    return CordialEvaluation(
        model_name="Neighbor Rows",
        pattern_scores=empty_scores,
        pattern_weighted=WeightedScores(0.0, 0.0, 0.0, 0),
        block_scores=blocks,
        icr=icr,
        n_test_triggers=len(triggers),
        n_crossrow_banks=len(triggers),
    )
