"""Cross-row failure prediction (Section IV-D).

Stage 3 of Cordial: given a bank classified as an aggregation pattern,
predict which of the 16 blocks (8 rows each) around the last UER row will
contain a future UER, and row-spare those blocks.  One binary tree model
scores all (bank, block) samples; a block is flagged when its probability
crosses ``threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import make_model
from repro.core.features import CrossRowFeaturizer, CrossRowWindow
from repro.telemetry.events import ErrorRecord


@dataclass(frozen=True)
class BlockPrediction:
    """Per-block outcome of one cross-row prediction.

    Attributes:
        last_uer_row: anchor of the window.
        probabilities: per-block UER probability (length ``n_blocks``).
        flagged: blocks whose probability crossed the threshold.
        block_ranges: row interval ``[start, end)`` per block.
    """

    last_uer_row: int
    probabilities: np.ndarray
    flagged: np.ndarray
    block_ranges: Tuple[Tuple[int, int], ...]

    def rows_to_isolate(self) -> List[int]:
        """All rows of the flagged blocks (the row-sparing request)."""
        rows: List[int] = []
        for block, keep in enumerate(self.flagged):
            if keep:
                start, end = self.block_ranges[block]
                rows.extend(range(start, end))
        return rows


class CrossRowPredictor:
    """Trainable per-block UER predictor.

    Args:
        model_name: one of the Table III/IV model names.
        window: prediction-window geometry (paper: +/-64 rows, 8-row
            blocks).
        threshold: probability cut-off for flagging a block.
        random_state: model seed.
        n_jobs: training worker processes forwarded to the model (and to
            the threshold-selection probe); never changes the fit.
    """

    def __init__(self, model_name: str = "Random Forest",
                 window: Optional[CrossRowWindow] = None,
                 threshold: Optional[float] = None,
                 total_rows: int = 32768,
                 random_state: Optional[int] = 0,
                 n_jobs: Optional[int] = None) -> None:
        if threshold is not None and not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1) or None")
        self.model_name = model_name
        self.featurizer = CrossRowFeaturizer(window=window,
                                             total_rows=total_rows)
        # None = pick the F1-maximising threshold on the training blocks.
        self.threshold = threshold
        self._auto_threshold = 0.5
        self.n_jobs = n_jobs
        self.model = make_model(model_name, random_state, task="blocks",
                                n_jobs=n_jobs)
        self._fitted = False

    @property
    def effective_threshold(self) -> float:
        """The probability cut-off actually applied at prediction time."""
        return (self.threshold if self.threshold is not None
                else self._auto_threshold)

    @property
    def window(self) -> CrossRowWindow:
        """The prediction-window geometry."""
        return self.featurizer.window

    def build_samples(self, history: Sequence[ErrorRecord],
                      last_uer_row: int, trigger_time: float,
                      future_uer_rows: Sequence[Tuple[float, int]]
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """(features, labels) for one trigger — one row per block."""
        X = self.featurizer.extract_blocks(history, last_uer_row)
        y = self.featurizer.block_labels(last_uer_row, trigger_time,
                                         future_uer_rows)
        return X, y

    def fit_samples(self, X: np.ndarray, y: np.ndarray
                    ) -> "CrossRowPredictor":
        """Train on stacked (bank, block) samples."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(int)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y must align")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if len(np.unique(y)) < 2:
            raise ValueError("training blocks must contain both classes")
        # The block task is heavily imbalanced (~1 positive per 16 blocks);
        # the boosting models get balanced sample weights, while the
        # Random Forest already balances through its class_weight.
        from repro.ml.forest import RandomForestClassifier
        if isinstance(self.model, RandomForestClassifier):
            sample_weight = None
        else:
            n_pos = max(1, int(y.sum()))
            n_neg = max(1, len(y) - n_pos)
            weights = np.where(y == 1, len(y) / (2.0 * n_pos),
                               len(y) / (2.0 * n_neg))
            sample_weight = weights
        if self.threshold is None:
            self._auto_threshold = self._select_threshold(X, y,
                                                          sample_weight)
        self.model.fit(X, y, sample_weight=sample_weight)
        self._fitted = True
        return self

    def _select_threshold(self, X: np.ndarray, y: np.ndarray,
                          sample_weight: Optional[np.ndarray]) -> float:
        """F1-maximising cut-off, estimated out-of-sample.

        A quarter of the training banks (contiguous 16-block groups) is
        held out; a fresh model trained on the rest scores them, and the
        best threshold on those *unseen* probabilities is kept.  Selecting
        on in-sample probabilities would just return whatever the
        near-interpolating model assigns its own training points.
        """
        n_groups = X.shape[0] // self.window.n_blocks
        if n_groups < 8:
            return 0.5
        rng = np.random.default_rng(13)
        held_out = set(rng.choice(n_groups, size=max(1, n_groups // 4),
                                  replace=False).tolist())
        groups = np.arange(X.shape[0]) // self.window.n_blocks
        val_mask = np.asarray([g in held_out for g in groups])
        if y[~val_mask].sum() == 0 or y[val_mask].sum() == 0:
            return 0.5
        probe = make_model(self.model_name, random_state=29, task="blocks",
                           n_jobs=self.n_jobs)
        probe.fit(X[~val_mask], y[~val_mask],
                  sample_weight=(None if sample_weight is None
                                 else sample_weight[~val_mask]))
        proba = probe.predict_proba(X[val_mask])
        positive_col = int(np.nonzero(probe.classes_ == 1)[0][0])
        probs = proba[:, positive_col]
        y = y[val_mask]
        best_threshold, best_f1 = 0.5, -1.0
        for threshold in np.arange(0.10, 0.91, 0.05):
            predicted = probs >= threshold
            tp = float(np.sum(predicted & (y == 1)))
            fp = float(np.sum(predicted & (y == 0)))
            fn = float(np.sum(~predicted & (y == 1)))
            if tp == 0:
                continue
            precision = tp / (tp + fp)
            recall = tp / (tp + fn)
            f1 = 2 * precision * recall / (precision + recall)
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(threshold)
        return best_threshold

    def predict(self, history: Sequence[ErrorRecord],
                last_uer_row: int) -> BlockPrediction:
        """Score the 16 blocks around ``last_uer_row`` for one bank."""
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        X = self.featurizer.extract_blocks(history, last_uer_row)
        return self.predict_from_features(X, last_uer_row)

    def predict_from_features(self, X: np.ndarray,
                              last_uer_row: int) -> BlockPrediction:
        """Score pre-extracted block features for one bank.

        Used by the incremental online path, which builds ``X`` from an
        :class:`~repro.core.incremental.IncrementalFeatureState` instead
        of re-walking the bank history; :meth:`predict` delegates here, so
        both paths share the probability/threshold/flagging logic.
        """
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        proba = self.model.predict_proba(X)
        positive_col = int(np.nonzero(self.model.classes_ == 1)[0][0])
        p = proba[:, positive_col]
        flagged = p >= self.effective_threshold
        ranges = tuple(
            self.window.block_range(last_uer_row, b,
                                    self.featurizer.total_rows)
            for b in range(self.window.n_blocks))
        return BlockPrediction(last_uer_row=last_uer_row, probabilities=p,
                               flagged=flagged, block_ranges=ranges)

    def predict_proba_matrix(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for pre-built block samples."""
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        proba = self.model.predict_proba(np.asarray(X, dtype=np.float64))
        positive_col = int(np.nonzero(self.model.classes_ == 1)[0][0])
        return proba[:, positive_col]
