"""Incremental per-bank feature state for the online serving path.

The batch pipeline featurizes each trigger snapshot once, but the online
service re-predicts at *every* subsequent UER of an aggregation bank —
and recomputing :meth:`CrossRowFeaturizer.extract_blocks` from scratch
walks the bank's full history per event, turning a long-lived bank into
an O(n²) serving cost.  :class:`IncrementalFeatureState` folds each
released record into running aggregates in (amortized) O(1):

* per error type, a ``row -> event count`` multiset plus the distinct
  rows kept sorted (``bisect.insort``) — block/side/window counts and
  nearest-row distances come straight out of it;
* the distinct UER rows in first-occurrence order (step features) and
  every UER timestamp (inter-arrival features);
* the last two event timestamps (``time_since_last_event``) and per-type
  totals.

``aggregates()`` renders the state as the same
:class:`~repro.core.features.CrossRowAggregates` record the batch path
reduces a history to, so both paths run the identical column kernels and
produce bit-identical matrices by construction —
``tests/test_feature_equivalence.py`` locks this down against the scalar
reference extractor.

The state is JSON-checkpointable (:meth:`to_dict` / :meth:`from_dict`)
and rides inside the ``cordial-service-checkpoint`` document (format
version 2; see :mod:`repro.core.persistence`).
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import (CE_CODE, MISSING, UEO_CODE, UER_CODE,
                                 _TYPE_CODE, CrossRowAggregates)
from repro.telemetry.events import ErrorRecord

_ALL_CODES = (CE_CODE, UEO_CODE, UER_CODE)


class IncrementalFeatureState:
    """Running history aggregates for one bank, folded event by event."""

    __slots__ = ("row_counts", "sorted_rows", "uer_row_order", "uer_times",
                 "type_totals", "n_events", "last_ts", "prev_ts")

    def __init__(self) -> None:
        #: Per type code: event multiplicity per row.
        self.row_counts: List[Dict[int, int]] = [{} for _ in _ALL_CODES]
        #: Per type code: distinct rows, kept sorted ascending.
        self.sorted_rows: List[List[int]] = [[] for _ in _ALL_CODES]
        #: Distinct UER rows in first-occurrence order.
        self.uer_row_order: List[int] = []
        #: Every UER timestamp, in release (time) order.
        self.uer_times: List[float] = []
        self.type_totals: List[int] = [0, 0, 0]
        self.n_events: int = 0
        self.last_ts: Optional[float] = None
        self.prev_ts: Optional[float] = None

    # -- folding -------------------------------------------------------------
    def update(self, record: ErrorRecord) -> None:
        """Fold one released record (must arrive in release order)."""
        code = _TYPE_CODE[record.error_type]
        row = int(record.address.row)
        counts = self.row_counts[code]
        if row in counts:
            counts[row] += 1
        else:
            counts[row] = 1
            insort(self.sorted_rows[code], row)
            if code == UER_CODE:
                self.uer_row_order.append(row)
        if code == UER_CODE:
            self.uer_times.append(record.timestamp)
        self.type_totals[code] += 1
        self.n_events += 1
        self.prev_ts = self.last_ts
        self.last_ts = record.timestamp

    @classmethod
    def from_history(cls, history: Sequence[ErrorRecord]
                     ) -> "IncrementalFeatureState":
        """Fold a whole history (e.g. a trigger snapshot) at once."""
        state = cls()
        for record in history:
            state.update(record)
        return state

    # -- rendering -----------------------------------------------------------
    def aggregates(self) -> CrossRowAggregates:
        """The state as batch-path :class:`CrossRowAggregates`.

        The arrays hold exactly the values
        :meth:`CrossRowFeaturizer.aggregate_history` would compute from
        the same event sequence, so the shared column kernels yield
        bit-identical block matrices.
        """
        rows_by_type = []
        for code in _ALL_CODES:
            distinct = np.asarray(self.sorted_rows[code], dtype=np.float64)
            counts = np.asarray([self.row_counts[code][row]
                                 for row in self.sorted_rows[code]],
                                dtype=np.int64)
            rows_by_type.append((distinct, counts))
        since_last = (self.last_ts - self.prev_ts
                      if self.prev_ts is not None else MISSING)
        return CrossRowAggregates(
            rows_by_type=tuple(rows_by_type),
            uer_occurrence=np.asarray(self.uer_row_order, dtype=np.float64),
            uer_times=np.asarray(self.uer_times, dtype=np.float64),
            since_last=since_last,
            totals=(float(self.type_totals[CE_CODE]),
                    float(self.type_totals[UEO_CODE]),
                    float(self.type_totals[UER_CODE]),
                    float(self.n_events)),
        )

    # -- checkpointing -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready state (deterministic layout: rows sorted)."""
        return {
            "row_counts": [
                [[row, self.row_counts[code][row]]
                 for row in self.sorted_rows[code]]
                for code in _ALL_CODES
            ],
            "uer_row_order": list(self.uer_row_order),
            "uer_times": list(self.uer_times),
            "type_totals": list(self.type_totals),
            "n_events": self.n_events,
            "last_ts": self.last_ts,
            "prev_ts": self.prev_ts,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "IncrementalFeatureState":
        """Rebuild from :meth:`to_dict` output."""
        instance = cls()
        for code, pairs in zip(_ALL_CODES, state["row_counts"]):
            instance.row_counts[code] = {int(row): int(count)
                                         for row, count in pairs}
            instance.sorted_rows[code] = sorted(instance.row_counts[code])
        instance.uer_row_order = [int(row)
                                  for row in state["uer_row_order"]]
        instance.uer_times = [float(t) for t in state["uer_times"]]
        instance.type_totals = [int(t) for t in state["type_totals"]]
        instance.n_events = int(state["n_events"])
        instance.last_ts = (None if state["last_ts"] is None
                            else float(state["last_ts"]))
        instance.prev_ts = (None if state["prev_ts"] is None
                            else float(state["prev_ts"]))
        return instance
