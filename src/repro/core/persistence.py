"""Save/load a fitted Cordial pipeline as one JSON document.

Combines :mod:`repro.ml.persist` (the two tree models) with the pipeline's
configuration (trigger size, window geometry, threshold), so a model
trained on historical logs can be shipped to the fleet controller and
reloaded without retraining — and without pickle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.features import CrossRowWindow
from repro.core.pipeline import Cordial
from repro.ml.persist import (FORMAT_VERSION, ModelPersistenceError,
                              _DESERIALIZERS, _SERIALIZERS)

PIPELINE_FORMAT = "cordial-pipeline"
PIPELINE_VERSION = 1


def _model_to_obj(model) -> dict:
    serializer = _SERIALIZERS.get(type(model))
    if serializer is None:
        raise ModelPersistenceError(
            f"unsupported inner model: {type(model).__name__}")
    return serializer(model)


def _model_from_obj(obj: dict):
    loader = _DESERIALIZERS.get(obj.get("kind"))
    if loader is None:
        raise ModelPersistenceError(f"unknown model kind: {obj.get('kind')!r}")
    model = loader(obj)
    if hasattr(model, "_fitted"):
        model._fitted = True
    return model


def save_cordial(cordial: Cordial, destination: Union[str, Path]) -> None:
    """Serialise a fitted Cordial pipeline to a JSON file."""
    if not getattr(cordial, "_fitted", False):
        raise ModelPersistenceError("cannot persist an unfitted Cordial")
    window = cordial.predictor.window
    document = {
        "format": PIPELINE_FORMAT,
        "version": PIPELINE_VERSION,
        "ml_version": FORMAT_VERSION,
        "config": {
            "model_name": cordial.model_name,
            "trigger_uer_rows": cordial.trigger_uer_rows,
            "spares_per_bank": cordial.spares_per_bank,
            "repredict_each_uer": cordial.repredict_each_uer,
            "half_window": window.half_window,
            "block_rows": window.block_rows,
            "total_rows": cordial.predictor.featurizer.total_rows,
            "threshold": cordial.predictor.threshold,
            "auto_threshold": cordial.predictor._auto_threshold,
        },
        "classifier": _model_to_obj(cordial.classifier.model),
        "predictor": _model_to_obj(cordial.predictor.model),
    }
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_cordial(source: Union[str, Path]) -> Cordial:
    """Reload a pipeline saved by :func:`save_cordial`.

    The returned object predicts identically to the saved one; it can be
    evaluated or served but not re-``fit`` incrementally.
    """
    try:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ModelPersistenceError(f"invalid pipeline file: {exc}") from exc
    if document.get("format") != PIPELINE_FORMAT:
        raise ModelPersistenceError(
            f"unexpected format: {document.get('format')!r}")
    if document.get("version") != PIPELINE_VERSION:
        raise ModelPersistenceError(
            f"unsupported version: {document.get('version')!r}")
    config = document["config"]
    cordial = Cordial(
        model_name=config["model_name"],
        window=CrossRowWindow(half_window=config["half_window"],
                              block_rows=config["block_rows"]),
        trigger_uer_rows=config["trigger_uer_rows"],
        threshold=config["threshold"],
        spares_per_bank=config["spares_per_bank"],
        repredict_each_uer=config["repredict_each_uer"],
    )
    cordial.classifier.model = _model_from_obj(document["classifier"])
    cordial.classifier._fitted = True
    cordial.predictor.model = _model_from_obj(document["predictor"])
    cordial.predictor.featurizer.total_rows = config["total_rows"]
    cordial.predictor._auto_threshold = config["auto_threshold"]
    cordial.predictor._fitted = True
    cordial._fitted = True
    return cordial
