"""Save/load fitted pipelines and live service state as JSON documents.

Two formats live here, both pickle-free:

* ``cordial-pipeline`` — a fitted :class:`~repro.core.pipeline.Cordial`
  (the two tree models plus configuration), so a model trained on
  historical logs can be shipped to the fleet controller and reloaded
  without retraining.
* ``cordial-service-checkpoint`` — a *running*
  :class:`~repro.core.online.CordialService`: the embedded pipeline
  document plus every piece of mutable serving state (collector bank
  buffers, the reorder buffer, dead letters, sparing ledgers, per-bank
  prediction state, stats, metrics).  A service restored from a
  checkpoint resumes mid-stream and emits byte-identical decisions
  versus an uninterrupted run — the property
  ``tests/test_serving_equivalence.py`` locks down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.features import CrossRowWindow
from repro.core.online import CordialService
from repro.core.pipeline import Cordial
from repro.ml.persist import (FORMAT_VERSION, ModelPersistenceError,
                              _DESERIALIZERS, _SERIALIZERS)

PIPELINE_FORMAT = "cordial-pipeline"
PIPELINE_VERSION = 1

CHECKPOINT_FORMAT = "cordial-service-checkpoint"
#: Version 2 adds the per-bank incremental feature state
#: (``state["feature_state"]``); version-1 documents are still loadable —
#: the state is rebuilt from the collector's released bank histories.
#: Version 3 adds the *optional* observability slice (``state["obs"]``,
#: the decision audit trail) — optional because unobserved services omit
#: it, so a version-3 checkpoint without the key is legitimate, not
#: truncated.
CHECKPOINT_VERSION = 3
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2, 3)


class CheckpointCorruptionError(ModelPersistenceError):
    """A service checkpoint is truncated, tampered with, or internally
    inconsistent.

    Raised instead of the raw ``json.JSONDecodeError`` / ``KeyError`` /
    ``ValueError`` the damage would otherwise surface as, so recovery
    code can catch one typed error and fall back to an older checkpoint.
    A failed restore is transactional: when
    :meth:`~repro.core.online.CordialService.load_state_dict` raises,
    the in-memory service is left exactly as it was.
    """


def _model_to_obj(model) -> dict:
    serializer = _SERIALIZERS.get(type(model))
    if serializer is None:
        raise ModelPersistenceError(
            f"unsupported inner model: {type(model).__name__}")
    return serializer(model)


def _model_from_obj(obj: dict):
    loader = _DESERIALIZERS.get(obj.get("kind"))
    if loader is None:
        raise ModelPersistenceError(f"unknown model kind: {obj.get('kind')!r}")
    model = loader(obj)
    if hasattr(model, "_fitted"):
        model._fitted = True
    return model


# -- pipeline documents -----------------------------------------------------------

def pipeline_to_document(cordial: Cordial) -> dict:
    """Render a fitted Cordial pipeline as a JSON-ready document."""
    if not getattr(cordial, "_fitted", False):
        raise ModelPersistenceError("cannot persist an unfitted Cordial")
    window = cordial.predictor.window
    return {
        "format": PIPELINE_FORMAT,
        "version": PIPELINE_VERSION,
        "ml_version": FORMAT_VERSION,
        "config": {
            "model_name": cordial.model_name,
            "trigger_uer_rows": cordial.trigger_uer_rows,
            "spares_per_bank": cordial.spares_per_bank,
            "repredict_each_uer": cordial.repredict_each_uer,
            "half_window": window.half_window,
            "block_rows": window.block_rows,
            "total_rows": cordial.predictor.featurizer.total_rows,
            "threshold": cordial.predictor.threshold,
            "auto_threshold": cordial.predictor._auto_threshold,
        },
        "classifier": _model_to_obj(cordial.classifier.model),
        "predictor": _model_to_obj(cordial.predictor.model),
    }


def pipeline_from_document(document: dict) -> Cordial:
    """Rebuild a Cordial pipeline from :func:`pipeline_to_document` output."""
    if document.get("format") != PIPELINE_FORMAT:
        raise ModelPersistenceError(
            f"unexpected format: {document.get('format')!r}")
    if document.get("version") != PIPELINE_VERSION:
        raise ModelPersistenceError(
            f"unsupported version: {document.get('version')!r}")
    config = document["config"]
    cordial = Cordial(
        model_name=config["model_name"],
        window=CrossRowWindow(half_window=config["half_window"],
                              block_rows=config["block_rows"]),
        trigger_uer_rows=config["trigger_uer_rows"],
        threshold=config["threshold"],
        spares_per_bank=config["spares_per_bank"],
        repredict_each_uer=config["repredict_each_uer"],
    )
    cordial.classifier.model = _model_from_obj(document["classifier"])
    cordial.classifier._fitted = True
    cordial.predictor.model = _model_from_obj(document["predictor"])
    cordial.predictor.featurizer.total_rows = config["total_rows"]
    cordial.predictor._auto_threshold = config["auto_threshold"]
    cordial.predictor._fitted = True
    cordial._fitted = True
    return cordial


def save_cordial(cordial: Cordial, destination: Union[str, Path]) -> None:
    """Serialise a fitted Cordial pipeline to a JSON file."""
    document = pipeline_to_document(cordial)
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_cordial(source: Union[str, Path]) -> Cordial:
    """Reload a pipeline saved by :func:`save_cordial`.

    The returned object predicts identically to the saved one; it can be
    evaluated or served but not re-``fit`` incrementally.
    """
    try:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ModelPersistenceError(f"invalid pipeline file: {exc}") from exc
    return pipeline_from_document(document)


# -- service checkpoints ----------------------------------------------------------

def service_to_document(service: CordialService) -> dict:
    """Render a running service (pipeline + mutable state) as a document."""
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "pipeline": pipeline_to_document(service.cordial),
        "state": service.state_dict(),
    }


def service_from_document(document: dict,
                          obs=None) -> CordialService:
    """Rebuild a service from :func:`service_to_document` output.

    Raises :class:`CheckpointCorruptionError` when the document carries
    the right format/version header but a damaged payload (missing keys,
    wrong value shapes) — the signature of truncation or tampering.

    Args:
        obs: live :class:`~repro.obs.Observability` bundle to attach to
            the restored service.  A mid-stream restore passes the run's
            own bundle so the journal keeps appending to the same file
            and the audit trail continues from the checkpointed records.
    """
    if not isinstance(document, dict):
        raise CheckpointCorruptionError(
            f"checkpoint document is {type(document).__name__}, not an "
            "object")
    fmt = document.get("format")
    if fmt != CHECKPOINT_FORMAT:
        if fmt == PIPELINE_FORMAT:
            # A recognizable sibling document: wrong *kind* of file, not
            # a damaged one.
            raise ModelPersistenceError(
                f"unexpected checkpoint format: {fmt!r} "
                "(this is a pipeline file — use load_cordial)")
        # Anything else means the header itself is garbled — the classic
        # bit-rot signature — so recovery code should treat it as a
        # corrupt checkpoint and fall back.
        raise CheckpointCorruptionError(
            f"unrecognized checkpoint format: {fmt!r} (damaged header?)")
    version = document.get("version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        if isinstance(version, int):
            raise ModelPersistenceError(
                f"unsupported checkpoint version: {version!r}")
        raise CheckpointCorruptionError(
            f"invalid checkpoint version: {version!r}")
    try:
        cordial = pipeline_from_document(document["pipeline"])
        state = document["state"]
        if version >= 2 and "feature_state" not in state:
            # Version-1 documents legitimately lack the folded feature
            # state (it is rebuilt from the collector histories); a
            # version-2 document without it has lost a key.
            raise CheckpointCorruptionError(
                "version-2 checkpoint is missing its feature_state "
                "(truncated or key-dropped document)")
        service = CordialService(cordial,
                                 spares_per_bank=int(state["spares_per_bank"]),
                                 max_skew=float(state["max_skew"]),
                                 obs=obs)
        return service.load_state_dict(state)
    except CheckpointCorruptionError:
        raise
    except (KeyError, IndexError, ValueError, TypeError,
            AttributeError) as exc:
        raise CheckpointCorruptionError(
            f"corrupt checkpoint payload: {type(exc).__name__}: "
            f"{exc}") from exc


def save_service_checkpoint(service: CordialService,
                            destination: Union[str, Path]) -> None:
    """Snapshot a running :class:`CordialService` to a JSON file.

    The checkpoint is self-contained: it embeds the fitted pipeline, so
    :func:`load_service_checkpoint` needs no separate model file.
    """
    document = service_to_document(service)
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_service_checkpoint(source: Union[str, Path],
                            obs=None) -> CordialService:
    """Restore a service snapshot written by :func:`save_service_checkpoint`.

    The restored service resumes exactly where the snapshot was taken:
    feeding it the remainder of the stream produces decisions and a
    final ICR byte-identical to a service that never restarted.

    A truncated or tampered file raises
    :class:`CheckpointCorruptionError` (a :class:`ModelPersistenceError`
    subclass, so existing handlers keep working).

    Args:
        obs: live observability bundle to re-attach (see
            :func:`service_from_document`).
    """
    try:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptionError(
            f"unreadable checkpoint file: {exc}") from exc
    return service_from_document(document, obs=obs)
