"""Heuristic pattern labelling from a *complete* bank history.

The generator knows each bank's true pattern (it planted the fault), but a
deployment on real logs needs an observational labeller to build training
labels.  ``label_bank_pattern`` implements the paper's taxonomy over the
full set of a bank's UER rows: cluster the rows with a gap threshold and
classify by cluster count and span.  Tests cross-check it against the
generator's ground truth (it agrees on the overwhelming majority of banks,
disagreeing only where the realisation genuinely looks like another
pattern — e.g. a double-row fault whose UERs all landed in one cluster).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.types import FailurePattern

#: Rows further apart than this start a new cluster.
DEFAULT_GAP_THRESHOLD = 512
#: A cluster wider than this cannot be a "narrow contiguous area".
DEFAULT_MAX_CLUSTER_SPAN = 1024


def cluster_rows(rows: Sequence[int],
                 gap_threshold: int = DEFAULT_GAP_THRESHOLD
                 ) -> List[Tuple[int, int, int]]:
    """Group sorted rows into clusters separated by > ``gap_threshold``.

    Returns ``(min_row, max_row, count)`` per cluster, in row order.
    """
    if gap_threshold < 1:
        raise ValueError("gap_threshold must be >= 1")
    ordered = sorted(rows)
    if not ordered:
        return []
    clusters: List[Tuple[int, int, int]] = []
    start = previous = ordered[0]
    count = 1
    for row in ordered[1:]:
        if row - previous > gap_threshold:
            clusters.append((start, previous, count))
            start = row
            count = 0
        previous = row
        count += 1
    clusters.append((start, previous, count))
    return clusters


def label_bank_pattern(uer_rows: Sequence[int],
                       uer_columns: Optional[Sequence[int]] = None,
                       gap_threshold: int = DEFAULT_GAP_THRESHOLD,
                       max_cluster_span: int = DEFAULT_MAX_CLUSTER_SPAN
                       ) -> FailurePattern:
    """Label a bank from its complete set of UER coordinates.

    Decision rule (Section III-B's taxonomy):

    * one narrow cluster -> ``SINGLE_ROW``;
    * two narrow clusters -> ``DOUBLE_ROW`` (covers the half-total-row
      variant: two clusters a fixed large interval apart);
    * anything wider or more fragmented -> ``SCATTERED`` — including the
      whole-column special case, which is detected separately when
      ``uer_columns`` shows one dominant column across dispersed rows.

    Small clusters of one stray row (outliers) are tolerated: clusters
    holding < 10 % of the rows are ignored for the cluster count when at
    least two rows remain elsewhere.
    """
    rows = list(uer_rows)
    if not rows:
        raise ValueError("cannot label a bank with no UER rows")

    if uer_columns is not None and len(rows) >= 5:
        columns = list(uer_columns)
        if len(columns) != len(rows):
            raise ValueError("uer_columns must align with uer_rows")
        dominant = max(set(columns), key=columns.count)
        span = max(rows) - min(rows)
        if (columns.count(dominant) >= 0.8 * len(columns)
                and span > 4 * max_cluster_span):
            return FailurePattern.SCATTERED

    clusters = cluster_rows(rows, gap_threshold)
    significant = [c for c in clusters if c[2] >= max(1, 0.1 * len(rows))]
    if len(significant) >= 2 or not significant:
        major = significant or clusters
    else:
        major = significant

    if len(major) == 1:
        low, high, _ = major[0]
        if high - low <= max_cluster_span:
            return FailurePattern.SINGLE_ROW
        return FailurePattern.SCATTERED
    if len(major) == 2:
        if all(high - low <= max_cluster_span for low, high, _ in major):
            return FailurePattern.DOUBLE_ROW
        return FailurePattern.SCATTERED
    return FailurePattern.SCATTERED
