"""Cordial: cross-row failure prediction based on bank-level error locality.

The paper's method (Section IV) in three stages, plus its evaluation
machinery:

1. :mod:`repro.core.features` — spatial / temporal / count features from a
   bank's error log (all CEs/UEOs + the first three UERs);
2. :mod:`repro.core.classifier` — bank failure-pattern classification with
   tree-based models;
3. :mod:`repro.core.crossrow` — per-block UER prediction in the 128-row
   window around the last UER row (16 blocks x 8 rows);

plus :mod:`repro.core.isolation` (Isolation Coverage Rate replay),
:mod:`repro.core.baselines` (the industrial Neighbor-Rows baseline and the
classic in-row predictor) and :mod:`repro.core.pipeline` (the end-to-end
``Cordial`` object).
"""

from repro.faults.types import FailurePattern
from repro.core.patterns import label_bank_pattern
from repro.core.features import (
    BankPatternFeaturizer,
    CrossRowFeaturizer,
    CrossRowWindow,
)
from repro.core.classifier import FailurePatternClassifier, MODEL_NAMES
from repro.core.crossrow import CrossRowPredictor, BlockPrediction
from repro.core.isolation import IsolationReplay, ICRResult
from repro.core.baselines import NeighborRowsBaseline, InRowPredictor
from repro.core.pipeline import Cordial, CordialEvaluation
from repro.core.online import CordialService, Decision
from repro.core.costmodel import (CostParams, PolicyCost, price_result,
                                  recommend_mechanism)
from repro.core.inrow_ml import HierarchicalInRowPredictor, InRowEvaluation
from repro.core.persistence import load_cordial, save_cordial
from repro.core.report import render_markdown_report, write_markdown_report
from repro.core.drift import (DriftReport, FeatureDriftMonitor,
                              population_stability_index)

__all__ = [
    "FailurePattern",
    "label_bank_pattern",
    "BankPatternFeaturizer",
    "CrossRowFeaturizer",
    "CrossRowWindow",
    "FailurePatternClassifier",
    "MODEL_NAMES",
    "CrossRowPredictor",
    "BlockPrediction",
    "IsolationReplay",
    "ICRResult",
    "NeighborRowsBaseline",
    "InRowPredictor",
    "Cordial",
    "CordialEvaluation",
    "CordialService",
    "Decision",
    "CostParams",
    "PolicyCost",
    "price_result",
    "recommend_mechanism",
    "HierarchicalInRowPredictor",
    "InRowEvaluation",
    "save_cordial",
    "load_cordial",
    "render_markdown_report",
    "write_markdown_report",
    "DriftReport",
    "FeatureDriftMonitor",
    "population_stability_index",
]
