"""A Calchas-style ML in-row failure predictor (the paradigm Cordial replaces).

Existing frameworks (the paper cites Calchas [5] and the error-bit studies
[27][29]) predict a row's failure from *that row's own* error history plus
hierarchical context from its enclosing devices.  This module implements a
faithful miniature: one sample per (bank, row) that showed a correctable
signal, featurised from the row's history and its bank/device context,
labelled by whether the row later suffers a UER.

Its purpose in this reproduction is quantitative: however well it ranks
its candidate rows, its *coverage of all UER rows* is capped by the
row-level predictable ratio (4.39 % in the paper's data — Table I),
which is precisely the gap Cordial's cross-row paradigm closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import make_model
from repro.datasets.fleetgen import FleetDataset
from repro.ml.metrics import ClassScores, binary_scores
from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass(frozen=True)
class InRowSample:
    """One candidate row at its snapshot time."""

    bank_key: tuple
    row: int
    snapshot_time: float
    features: np.ndarray
    label: bool


FEATURE_NAMES = [
    "row_ce_count", "row_ueo_count", "row_event_count",
    "row_time_since_first", "row_time_between_events",
    "bank_ce_count", "bank_ueo_count", "bank_uer_count",
    "bank_distinct_error_rows", "bank_time_since_first_event",
    "row_distance_to_nearest_bank_uer",
    "row_position_fraction",
]


def _row_samples_of_bank(events: Sequence[ErrorRecord],
                         future_uer_rows_by_time: Dict[int, float],
                         total_rows: int,
                         min_precursors: int) -> List[InRowSample]:
    """Emit one sample per row at its ``min_precursors``-th CE/UEO event."""
    samples: List[InRowSample] = []
    row_counts: Dict[int, Dict[ErrorType, int]] = {}
    row_first_time: Dict[int, float] = {}
    bank_counts = {kind: 0 for kind in ErrorType}
    bank_rows: set = set()
    bank_uer_rows: List[int] = []
    bank_first_time: Optional[float] = None
    emitted: set = set()

    for record in events:
        if bank_first_time is None:
            bank_first_time = record.timestamp
        if record.error_type in (ErrorType.CE, ErrorType.UEO):
            counts = row_counts.setdefault(
                record.row, {ErrorType.CE: 0, ErrorType.UEO: 0})
            counts[record.error_type] += 1
            row_first_time.setdefault(record.row, record.timestamp)
            n_events = counts[ErrorType.CE] + counts[ErrorType.UEO]
            if n_events >= min_precursors and record.row not in emitted:
                emitted.add(record.row)
                if bank_uer_rows:
                    nearest = min(abs(record.row - r)
                                  for r in bank_uer_rows)
                else:
                    nearest = -1.0
                elapsed = record.timestamp - row_first_time[record.row]
                features = np.asarray([
                    counts[ErrorType.CE], counts[ErrorType.UEO], n_events,
                    elapsed, elapsed / max(n_events - 1, 1),
                    bank_counts[ErrorType.CE], bank_counts[ErrorType.UEO],
                    bank_counts[ErrorType.UER], len(bank_rows),
                    record.timestamp - bank_first_time,
                    nearest, record.row / total_rows,
                ], dtype=np.float64)
                uer_time = future_uer_rows_by_time.get(record.row)
                label = (uer_time is not None
                         and uer_time > record.timestamp)
                samples.append(InRowSample(
                    bank_key=record.bank_key, row=record.row,
                    snapshot_time=record.timestamp, features=features,
                    label=label))
        bank_counts[record.error_type] += 1
        bank_rows.add(record.row)
        if record.error_type is ErrorType.UER:
            bank_uer_rows.append(record.row)
    return samples


@dataclass
class InRowEvaluation:
    """Scores of the in-row predictor.

    Attributes:
        candidate_scores: P/R/F1 over *candidate* rows (rows that showed a
            precursor) — how well the model ranks what it can see.
        uer_row_coverage: flagged-and-correct rows / **all** UER rows —
            the number comparable to Cordial's ICR reach.
        coverage_ceiling: candidate UER rows / all UER rows — the hard cap
            imposed by sudden errors (Table I's row-level ratio).
        n_candidates: candidate rows in the test split.
    """

    candidate_scores: ClassScores
    uer_row_coverage: float
    coverage_ceiling: float
    n_candidates: int


class HierarchicalInRowPredictor:
    """Trainable in-row predictor with hierarchical context features.

    Args:
        model_name: tree family (defaults to the paper's best, RF).
        min_precursors: CE/UEO events a row must show before it becomes a
            candidate (snapshot point).
        threshold: probability cut-off for flagging a candidate row.
    """

    def __init__(self, model_name: str = "Random Forest",
                 min_precursors: int = 1, threshold: float = 0.5,
                 random_state: Optional[int] = 0) -> None:
        if min_precursors < 1:
            raise ValueError("min_precursors must be >= 1")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.min_precursors = min_precursors
        self.threshold = threshold
        self.model = make_model(model_name, random_state, task="blocks")
        self._fitted = False

    # -- sample construction ---------------------------------------------------
    def build_samples(self, dataset: FleetDataset,
                      banks: Sequence[tuple]) -> List[InRowSample]:
        """All candidate-row samples of the given banks."""
        total_rows = dataset.config.fleet.hbm.rows
        samples: List[InRowSample] = []
        for bank_key in banks:
            events = dataset.store.bank_events(bank_key)
            truth = dataset.bank_truth.get(bank_key)
            uer_times = (dict((row, t) for t, row in truth.uer_row_sequence)
                         if truth else {})
            samples.extend(_row_samples_of_bank(
                events, uer_times, total_rows, self.min_precursors))
        return samples

    # -- train / evaluate ----------------------------------------------------------
    def fit(self, dataset: FleetDataset,
            banks: Sequence[tuple]) -> "HierarchicalInRowPredictor":
        """Train on the candidate rows of the given banks."""
        samples = self.build_samples(dataset, banks)
        if not samples:
            raise ValueError("no candidate rows in the training banks")
        X = np.vstack([s.features for s in samples])
        y = np.asarray([s.label for s in samples], dtype=int)
        if len(np.unique(y)) < 2:
            raise ValueError("training candidates are single-class")
        self.model.fit(X, y)
        self._fitted = True
        return self

    def predict_samples(self, samples: Sequence[InRowSample]) -> np.ndarray:
        """Flag decisions for pre-built samples."""
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        X = np.vstack([s.features for s in samples])
        proba = self.model.predict_proba(X)
        positive = int(np.nonzero(self.model.classes_ == 1)[0][0])
        return proba[:, positive] >= self.threshold

    def evaluate(self, dataset: FleetDataset,
                 banks: Sequence[tuple]) -> InRowEvaluation:
        """Candidate-level scores plus fleet-level UER-row coverage."""
        samples = self.build_samples(dataset, banks)
        total_uer_rows = sum(
            len(dataset.bank_truth[b].uer_row_sequence)
            for b in banks if dataset.bank_truth.get(b))
        if not samples:
            return InRowEvaluation(ClassScores(0, 0, 0, 0), 0.0, 0.0, 0)
        flagged = self.predict_samples(samples)
        labels = np.asarray([s.label for s in samples])
        scores = binary_scores(labels, flagged)
        hits = int(np.sum(flagged & labels))
        ceiling = (labels.sum() / total_uer_rows if total_uer_rows else 0.0)
        coverage = hits / total_uer_rows if total_uer_rows else 0.0
        return InRowEvaluation(
            candidate_scores=scores,
            uer_row_coverage=coverage,
            coverage_ceiling=float(ceiling),
            n_candidates=len(samples),
        )
