"""Isolation replay and the Isolation Coverage Rate (ICR).

The paper's deployment metric (Section V-A): the proportion of UER rows
that were preemptively isolated — by row sparing of predicted blocks or by
bank sparing of scattered banks — strictly *before* their first UER
occurred.  Rows that fail before any prediction could fire (including the
three trigger UERs of every bank) stay in the denominator, which is why
even a good predictor lands near 20 %.

``IsolationReplay`` owns the sparing controllers and the time-aware
bookkeeping; prediction policies (Cordial, baselines) call
``isolate_rows`` / ``isolate_bank`` as their decisions fire during the
stream replay, then ``result`` scores the episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hbm.sparing import (BankSparingController, RowSparingController,
                               SparingExhaustedError)


@dataclass(frozen=True)
class ICRResult:
    """Outcome of one isolation replay.

    Attributes:
        covered_rows: UER rows isolated strictly before their first UER.
        total_rows: all distinct UER rows in the evaluated banks.
        covered_by_bank_sparing: subset of ``covered_rows`` owed to
            whole-bank isolation.
        spared_rows: total rows spared (isolation cost).
        spared_banks: banks retired (isolation cost).
    """

    covered_rows: int
    total_rows: int
    covered_by_bank_sparing: int
    spared_rows: int
    spared_banks: int

    @property
    def icr(self) -> float:
        """The Isolation Coverage Rate."""
        return self.covered_rows / self.total_rows if self.total_rows else 0.0

    @property
    def icr_row_sparing_only(self) -> float:
        """ICR counting only row-sparing coverage (the strict reading of
        the paper's "based on our cross-row failure predictions")."""
        if not self.total_rows:
            return 0.0
        return (self.covered_rows - self.covered_by_bank_sparing) / self.total_rows


class IsolationReplay:
    """Time-aware isolation bookkeeping for one evaluation episode."""

    def __init__(self, spares_per_bank: int = 64) -> None:
        self.row_ctrl = RowSparingController(spares_per_bank=spares_per_bank)
        self.bank_ctrl = BankSparingController()
        self._exhausted_requests = 0

    def isolate_rows(self, bank_key: tuple, rows: Iterable[int],
                     timestamp: float) -> int:
        """Row-spare ``rows`` at ``timestamp``; returns rows newly spared.

        Budget exhaustion is tolerated (the request is truncated) but
        counted, so evaluations can report sparing pressure.
        """
        rows = list(rows)
        spared = self.row_ctrl.spare_rows(bank_key, rows, timestamp)
        if spared < len(rows):
            remaining = self.row_ctrl.remaining(bank_key)
            if remaining == 0:
                self._exhausted_requests += 1
        return spared

    def isolate_bank(self, bank_key: tuple, timestamp: float) -> bool:
        """Retire a whole bank at ``timestamp``."""
        return self.bank_ctrl.spare_bank(bank_key, timestamp)

    def is_row_covered(self, bank_key: tuple, row: int,
                       first_uer_time: float) -> Tuple[bool, bool]:
        """(covered, covered_by_bank) for one UER row."""
        if self.bank_ctrl.is_isolated(bank_key, at_time=first_uer_time):
            return True, True
        if self.row_ctrl.is_isolated(bank_key, row, at_time=first_uer_time):
            return True, False
        return False, False

    def result(self, uer_rows_by_bank: Dict[tuple,
                                            Sequence[Tuple[float, int]]]
               ) -> ICRResult:
        """Score the episode against the ground-truth UER rows.

        Args:
            uer_rows_by_bank: per bank, the ``(first_uer_time, row)`` pairs
                of every distinct UER row (the ICR denominator).
        """
        covered = 0
        total = 0
        covered_by_bank = 0
        for bank_key, rows in uer_rows_by_bank.items():
            for when, row in rows:
                total += 1
                is_covered, by_bank = self.is_row_covered(bank_key, row, when)
                if is_covered:
                    covered += 1
                    if by_bank:
                        covered_by_bank += 1
        return ICRResult(
            covered_rows=covered,
            total_rows=total,
            covered_by_bank_sparing=covered_by_bank,
            spared_rows=self.row_ctrl.total_spared_rows(),
            spared_banks=self.bank_ctrl.spared_bank_count(),
        )

    @property
    def exhausted_requests(self) -> int:
        """Row-sparing requests truncated by budget exhaustion."""
        return self._exhausted_requests
