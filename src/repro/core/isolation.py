"""Isolation replay and the Isolation Coverage Rate (ICR).

The paper's deployment metric (Section V-A): the proportion of UER rows
that were preemptively isolated — by row sparing of predicted blocks or by
bank sparing of scattered banks — strictly *before* their first UER
occurred.  Rows that fail before any prediction could fire (including the
three trigger UERs of every bank) stay in the denominator, which is why
even a good predictor lands near 20 %.

``IsolationReplay`` owns the sparing controllers and the time-aware
bookkeeping; prediction policies (Cordial, baselines) call
``isolate_rows`` / ``isolate_bank`` as their decisions fire during the
stream replay, then ``result`` scores the episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hbm.sparing import (BankSparingController, RowSparingController,
                               SparingExhaustedError)
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class ICRResult:
    """Outcome of one isolation replay.

    Attributes:
        covered_rows: UER rows isolated strictly before their first UER.
        total_rows: all distinct UER rows in the evaluated banks.
        covered_by_bank_sparing: subset of ``covered_rows`` owed to
            whole-bank isolation.
        spared_rows: total rows spared (isolation cost).
        spared_banks: banks retired (isolation cost).
    """

    covered_rows: int
    total_rows: int
    covered_by_bank_sparing: int
    spared_rows: int
    spared_banks: int

    @property
    def icr(self) -> float:
        """The Isolation Coverage Rate."""
        return self.covered_rows / self.total_rows if self.total_rows else 0.0

    @property
    def icr_row_sparing_only(self) -> float:
        """ICR counting only row-sparing coverage (the strict reading of
        the paper's "based on our cross-row failure predictions")."""
        if not self.total_rows:
            return 0.0
        return (self.covered_rows - self.covered_by_bank_sparing) / self.total_rows


class IsolationReplay:
    """Time-aware isolation bookkeeping for one evaluation episode."""

    def __init__(self, spares_per_bank: int = 64,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.row_ctrl = RowSparingController(spares_per_bank=spares_per_bank)
        self.bank_ctrl = BankSparingController()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._truncated_requests = 0
        self._truncated_rows = 0
        self._duplicate_requests = 0
        self._duplicate_rows = 0

    def isolate_rows(self, bank_key: tuple, rows: Iterable[int],
                     timestamp: float) -> int:
        """Row-spare ``rows`` at ``timestamp``; returns rows newly spared.

        Budget exhaustion is tolerated (the request is truncated) but
        counted *exactly*: a request is truncated iff it asked for rows
        not yet spared and the budget could not take all of them.
        Re-requests of already-spared rows are a separate, normal
        occurrence (re-predictions overlap earlier windows) and are
        counted as duplicates, never as budget pressure.
        """
        rows = list(rows)
        # In-request repeats and already-spared rows are both duplicates.
        unique = list(dict.fromkeys(rows))
        fresh = [r for r in unique
                 if self.row_ctrl.isolation_time(bank_key, r) is None]
        duplicates = len(rows) - len(fresh)
        spared = self.row_ctrl.spare_rows(bank_key, rows, timestamp)
        truncated = len(fresh) - spared
        if duplicates:
            self._duplicate_requests += 1
            self._duplicate_rows += duplicates
            self.metrics.counter("isolation.duplicate_rows").inc(duplicates)
        if truncated:
            self._truncated_requests += 1
            self._truncated_rows += truncated
            self.metrics.counter("isolation.requests_truncated").inc()
            self.metrics.counter("isolation.rows_truncated").inc(truncated)
        self.metrics.counter("isolation.rows_spared").inc(spared)
        self.metrics.gauge("isolation.budget_pressure").set(
            self.spares_per_bank - self.row_ctrl.remaining(bank_key))
        return spared

    @property
    def spares_per_bank(self) -> int:
        """Row-sparing budget per bank (delegated to the controller)."""
        return self.row_ctrl.spares_per_bank

    def spared_rows_by_bank(self) -> Dict[tuple, Dict[int, float]]:
        """Copy of the row-sparing ledger: ``{bank_key: {row: iso_time}}``.

        A copy, not a view: auditors (the chaos oracle's spare-budget
        and monotonicity checks) must be able to snapshot the ledger
        without aliasing live controller state.
        """
        return {bank: dict(rows)
                for bank, rows in self.row_ctrl._spared.items()}

    def spared_banks_by_key(self) -> Dict[tuple, float]:
        """Copy of the bank-sparing ledger: ``{bank_key: iso_time}``."""
        return dict(self.bank_ctrl._spared)

    def isolate_bank(self, bank_key: tuple, timestamp: float) -> bool:
        """Retire a whole bank at ``timestamp``."""
        newly = self.bank_ctrl.spare_bank(bank_key, timestamp)
        if newly:
            self.metrics.counter("isolation.banks_spared").inc()
        return newly

    def is_row_covered(self, bank_key: tuple, row: int,
                       first_uer_time: float) -> Tuple[bool, bool]:
        """(covered, covered_by_bank) for one UER row."""
        if self.bank_ctrl.is_isolated(bank_key, at_time=first_uer_time):
            return True, True
        if self.row_ctrl.is_isolated(bank_key, row, at_time=first_uer_time):
            return True, False
        return False, False

    def result(self, uer_rows_by_bank: Dict[tuple,
                                            Sequence[Tuple[float, int]]]
               ) -> ICRResult:
        """Score the episode against the ground-truth UER rows.

        Args:
            uer_rows_by_bank: per bank, the ``(first_uer_time, row)`` pairs
                of every distinct UER row (the ICR denominator).
        """
        covered = 0
        total = 0
        covered_by_bank = 0
        for bank_key, rows in uer_rows_by_bank.items():
            for when, row in rows:
                total += 1
                is_covered, by_bank = self.is_row_covered(bank_key, row, when)
                if is_covered:
                    covered += 1
                    if by_bank:
                        covered_by_bank += 1
        return ICRResult(
            covered_rows=covered,
            total_rows=total,
            covered_by_bank_sparing=covered_by_bank,
            spared_rows=self.row_ctrl.total_spared_rows(),
            spared_banks=self.bank_ctrl.spared_bank_count(),
        )

    @property
    def truncated_requests(self) -> int:
        """Row-sparing requests truncated by budget exhaustion."""
        return self._truncated_requests

    @property
    def truncated_rows(self) -> int:
        """Fresh rows dropped because a bank's budget ran out."""
        return self._truncated_rows

    @property
    def duplicate_requests(self) -> int:
        """Requests that re-asked for at least one already-spared row."""
        return self._duplicate_requests

    @property
    def duplicate_rows(self) -> int:
        """Row re-requests absorbed idempotently (not budget pressure)."""
        return self._duplicate_rows

    @property
    def exhausted_requests(self) -> int:
        """Deprecated alias of :attr:`truncated_requests`."""
        return self._truncated_requests

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete, JSON-ready ledger state (deterministic layout)."""
        return {
            "spares_per_bank": self.row_ctrl.spares_per_bank,
            # Explicit int()/float() casts: producers may hand the ledger
            # numpy scalars, which the json module refuses to serialise.
            "spared_rows": [
                [[int(b) for b in bank],
                 sorted([int(row), float(when)]
                        for row, when in rows.items())]
                for bank, rows in sorted(self.row_ctrl._spared.items())
            ],
            "spared_banks": [[[int(b) for b in bank], float(when)]
                             for bank, when in
                             sorted(self.bank_ctrl._spared.items())],
            "counters": {
                "truncated_requests": self._truncated_requests,
                "truncated_rows": self._truncated_rows,
                "duplicate_requests": self._duplicate_requests,
                "duplicate_rows": self._duplicate_rows,
            },
        }

    def load_state_dict(self, state: dict) -> "IsolationReplay":
        """Restore state captured by :meth:`state_dict`."""
        self.row_ctrl.spares_per_bank = int(state["spares_per_bank"])
        self.row_ctrl._spared = {
            tuple(bank): {int(row): float(when) for row, when in rows}
            for bank, rows in state["spared_rows"]
        }
        self.bank_ctrl._spared = {tuple(bank): float(when)
                                  for bank, when in state["spared_banks"]}
        counters = state["counters"]
        self._truncated_requests = int(counters["truncated_requests"])
        self._truncated_rows = int(counters["truncated_rows"])
        self._duplicate_requests = int(counters["duplicate_requests"])
        self._duplicate_rows = int(counters["duplicate_rows"])
        return self
