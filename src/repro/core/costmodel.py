"""Cost/benefit model for isolation policies.

The paper's introduction motivates *choosing* between mitigation
mechanisms: row sparing is cheap but finite, bank sparing "requires
significantly higher hardware redundancy", and an un-preempted UER crashes
or slows a training job ([15]-[17]: large revenue loss).  This module
prices a policy's replay so the ICR can be read in currency instead of
percent, and recommends row- vs bank-sparing per bank from predicted fault
rates — the strategy-selection point the paper raises via [21].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.isolation import ICRResult


@dataclass(frozen=True)
class CostParams:
    """Unit costs/prices of mitigation and failure.

    Defaults are deliberately round placeholder magnitudes (documented in
    currency-free "cost units"): what matters downstream are the ratios.

    Attributes:
        cost_per_spared_row: amortised cost of consuming one spare row.
        cost_per_spared_bank: cost of retiring a bank (capacity loss +
            redundancy), typically orders of magnitude above a row.
        cost_per_uer_hit: business impact of one *unpreempted* UER row
            (job crash/restart, diagnosis, node drain).
        spare_rows_per_bank: hardware budget, for feasibility checks.
    """

    cost_per_spared_row: float = 1.0
    cost_per_spared_bank: float = 400.0
    cost_per_uer_hit: float = 250.0
    spare_rows_per_bank: int = 64

    def __post_init__(self) -> None:
        if min(self.cost_per_spared_row, self.cost_per_spared_bank,
               self.cost_per_uer_hit) < 0:
            raise ValueError("costs must be non-negative")
        if self.spare_rows_per_bank < 1:
            raise ValueError("spare_rows_per_bank must be >= 1")


@dataclass(frozen=True)
class PolicyCost:
    """Priced outcome of one isolation replay."""

    isolation_cost: float
    failure_cost: float
    avoided_failure_cost: float

    @property
    def total_cost(self) -> float:
        """Isolation spending plus residual failure impact."""
        return self.isolation_cost + self.failure_cost

    @property
    def net_benefit(self) -> float:
        """Avoided failure impact minus isolation spending."""
        return self.avoided_failure_cost - self.isolation_cost


def price_result(result: ICRResult, params: CostParams = CostParams()
                 ) -> PolicyCost:
    """Price an :class:`~repro.core.isolation.ICRResult`.

    Covered rows avoid their UER-hit cost; uncovered rows pay it; every
    spared row/bank pays its isolation cost.
    """
    isolation = (result.spared_rows * params.cost_per_spared_row
                 + result.spared_banks * params.cost_per_spared_bank)
    missed = result.total_rows - result.covered_rows
    return PolicyCost(
        isolation_cost=isolation,
        failure_cost=missed * params.cost_per_uer_hit,
        avoided_failure_cost=result.covered_rows * params.cost_per_uer_hit,
    )


def recommend_mechanism(expected_future_uer_rows: float,
                        block_hit_rate: float,
                        params: CostParams = CostParams()) -> str:
    """Row sparing or bank sparing for one failing bank?

    Args:
        expected_future_uer_rows: forecast distinct UER rows still to come
            in the bank.
        block_hit_rate: probability that a predicted (8-row) block
            actually catches a future UER row — the predictor's precision
            for this pattern.

    Returns ``"row-sparing"`` when targeted isolation is expected to be
    cheaper than retiring the bank, ``"bank-sparing"`` otherwise.  The
    comparison follows the paper's logic: aggregation patterns (high
    ``block_hit_rate``) are row-spared; scattered patterns (low hit rate
    or too many expected rows for the spare budget) are bank-spared.
    """
    if expected_future_uer_rows < 0:
        raise ValueError("expected_future_uer_rows must be >= 0")
    if not 0.0 <= block_hit_rate <= 1.0:
        raise ValueError("block_hit_rate must be in [0, 1]")

    if block_hit_rate <= 0.0:
        return "bank-sparing"
    # rows spared per covered row ~ 8-row block per hit / hit rate
    rows_needed = 8.0 * expected_future_uer_rows / block_hit_rate
    if rows_needed > params.spare_rows_per_bank:
        return "bank-sparing"
    covered_value = expected_future_uer_rows * params.cost_per_uer_hit
    row_cost = rows_needed * params.cost_per_spared_row
    bank_cost = params.cost_per_spared_bank
    # Bank sparing covers everything; row sparing covers what it predicts.
    row_net = covered_value * block_hit_rate_effect(block_hit_rate) - row_cost
    bank_net = covered_value - bank_cost
    return "row-sparing" if row_net >= bank_net else "bank-sparing"


def block_hit_rate_effect(block_hit_rate: float) -> float:
    """Fraction of future rows row-sparing is expected to preempt.

    A predicted block either contains the row or not; with hit rate ``h``
    and re-prediction after every UER, coverage saturates as
    ``h / (1 - (1 - h) / 2)`` — each miss gets roughly half a retry's
    worth of another chance.  Kept as a simple closed form; the replay
    measures the real value.
    """
    if not 0.0 <= block_hit_rate <= 1.0:
        raise ValueError("block_hit_rate must be in [0, 1]")
    return block_hit_rate / (1.0 - (1.0 - block_hit_rate) / 2.0)
