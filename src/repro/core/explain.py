"""Per-decision explanations for cross-row block predictions.

When an operator asks "why is Cordial sparing these 8 rows?", split-gain
importances are too global.  This module answers locally: for one
(trigger, block), perturb each feature to its training-median and report
how much the block's probability moves — a simple, model-agnostic
sensitivity explanation (a one-feature-at-a-time ablation around the
sample, in the spirit of LIME but deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crossrow import CrossRowPredictor
from repro.telemetry.events import ErrorRecord


@dataclass(frozen=True)
class FeatureContribution:
    """Sensitivity of one feature on one block's probability.

    ``delta`` = probability(sample) - probability(sample with the feature
    neutralised to ``baseline_value``): positive means the feature's
    actual value pushes the block *towards* being flagged.
    """

    name: str
    value: float
    baseline_value: float
    delta: float


@dataclass(frozen=True)
class BlockExplanation:
    """Explanation of one block's score."""

    block: int
    probability: float
    contributions: Tuple[FeatureContribution, ...]

    def top(self, k: int = 5) -> List[FeatureContribution]:
        """The k most influential features by |delta|."""
        return sorted(self.contributions,
                      key=lambda c: -abs(c.delta))[:k]

    def format(self, k: int = 5) -> str:
        """Plain-text rendering for operator logs."""
        lines = [f"block {self.block}: p={self.probability:.3f}"]
        for c in self.top(k):
            direction = "+" if c.delta >= 0 else "-"
            lines.append(
                f"  {direction} {c.name:<28} value={c.value:10.1f} "
                f"(baseline {c.baseline_value:10.1f})  "
                f"dP={c.delta:+.3f}")
        return "\n".join(lines)


class BlockExplainer:
    """Explains flagged blocks of a fitted cross-row predictor.

    Args:
        predictor: fitted :class:`~repro.core.crossrow.CrossRowPredictor`.
        baseline: per-feature neutral values (training medians); computed
            from ``reference`` block samples when not given.
    """

    def __init__(self, predictor: CrossRowPredictor,
                 reference: Optional[np.ndarray] = None,
                 baseline: Optional[np.ndarray] = None) -> None:
        if not getattr(predictor, "_fitted", False):
            raise ValueError("BlockExplainer needs a fitted predictor")
        self.predictor = predictor
        n_features = predictor.featurizer.n_features
        if baseline is not None:
            baseline = np.asarray(baseline, dtype=np.float64)
            if baseline.shape != (n_features,):
                raise ValueError("baseline shape mismatch")
            self.baseline = baseline
        elif reference is not None:
            reference = np.asarray(reference, dtype=np.float64)
            if reference.ndim != 2 or reference.shape[1] != n_features:
                raise ValueError("reference shape mismatch")
            self.baseline = np.median(reference, axis=0)
        else:
            raise ValueError("provide reference samples or a baseline")

    def explain(self, history: Sequence[ErrorRecord], last_uer_row: int,
                block: int) -> BlockExplanation:
        """Explain one block of one trigger."""
        featurizer = self.predictor.featurizer
        if not 0 <= block < featurizer.window.n_blocks:
            raise ValueError(f"block {block} out of range")
        X = featurizer.extract_blocks(history, last_uer_row)
        return self.explain_sample(X[block], block)

    def explain_sample(self, sample: np.ndarray,
                       block: int) -> BlockExplanation:
        """Explain one pre-extracted block feature row.

        The serving-path audit trail (:mod:`repro.obs.audit`) already
        holds the exact feature matrix a decision scored — this entry
        point explains it without re-walking any bank history, so the
        explanation is guaranteed to describe the decision as made, not
        a recomputation of it.
        """
        featurizer = self.predictor.featurizer
        sample = np.asarray(sample, dtype=np.float64)
        if sample.shape != (featurizer.n_features,):
            raise ValueError("sample shape mismatch")
        names = featurizer.feature_names()

        # one batched prediction: the sample + one row per neutralisation
        perturbed = np.tile(sample, (len(names) + 1, 1))
        for j in range(len(names)):
            perturbed[j + 1, j] = self.baseline[j]
        probs = self.predictor.predict_proba_matrix(perturbed)
        base_p = float(probs[0])
        contributions = tuple(
            FeatureContribution(name=names[j], value=float(sample[j]),
                                baseline_value=float(self.baseline[j]),
                                delta=base_p - float(probs[j + 1]))
            for j in range(len(names)))
        return BlockExplanation(block=block, probability=base_p,
                                contributions=contributions)

    def explain_flagged(self, history: Sequence[ErrorRecord],
                        last_uer_row: int) -> List[BlockExplanation]:
        """Explanations for every block the predictor flags."""
        prediction = self.predictor.predict(history, last_uer_row)
        return [self.explain(history, last_uer_row, block)
                for block, flagged in enumerate(prediction.flagged)
                if flagged]
