"""Feature extraction for both Cordial predictors (Sections IV-B and IV-D).

Both featurizers consume a bank's event history *up to the trigger* (the
third distinct UER row) — exactly the information available when the
decision is made; the :class:`~repro.telemetry.collector.BMCCollector`
hands over precisely this snapshot, making look-ahead structurally
impossible.

Undefined values (e.g. "min CE row" in a bank that has no CEs) are encoded
as ``MISSING = -1`` — tree models split on the sentinel naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.telemetry.events import ErrorRecord, ErrorType

MISSING = -1.0


def _stats_min_max_avg(values: Sequence[float]) -> Tuple[float, float, float]:
    if not values:
        return MISSING, MISSING, MISSING
    arr = np.asarray(values, dtype=np.float64)
    return float(arr.min()), float(arr.max()), float(arr.mean())


def _consecutive_diffs(values: Sequence[float]) -> List[float]:
    return [abs(b - a) for a, b in zip(values, values[1:])]


class BankPatternFeaturizer:
    """Failure-pattern features (Section IV-B).

    Spatial features — min/max rows of CEs, UEOs and UERs and the
    min/max/average row difference between consecutive errors (overall and
    per type), plus the pairwise gaps of the first three UER rows;
    temporal features — min/max occurrence-time differences per type;
    count features — CE/UEO totals before the first UER and at trigger
    time.
    """

    def feature_names(self) -> List[str]:
        """Names aligned with the vectors returned by :meth:`extract`."""
        names: List[str] = []
        for kind in ("ce", "ueo", "uer"):
            names += [f"{kind}_row_min", f"{kind}_row_max",
                      f"{kind}_row_range", f"{kind}_row_mean"]
        for kind in ("all", "ce", "ueo", "uer"):
            names += [f"{kind}_rowdiff_min", f"{kind}_rowdiff_max",
                      f"{kind}_rowdiff_avg"]
        names += ["uer_gap_small", "uer_gap_large", "uer_gap_ratio",
                  "uer_span"]
        for kind in ("ce", "ueo", "uer"):
            names += [f"{kind}_timediff_min", f"{kind}_timediff_max"]
        names += ["uer_time_span", "trigger_to_last_error"]
        names += ["ce_before_first_uer", "ueo_before_first_uer",
                  "ce_total", "ueo_total", "uer_events_total",
                  "events_total"]
        names += ["ce_near_uer_min", "ce_near_uer_mean"]
        return names

    @property
    def n_features(self) -> int:
        """Length of the feature vector."""
        return len(self.feature_names())

    def extract(self, history: Sequence[ErrorRecord]) -> np.ndarray:
        """Feature vector from a bank history snapshot (trigger included)."""
        if not history:
            raise ValueError("cannot featurize an empty history")
        rows = {kind: [] for kind in ErrorType}
        times = {kind: [] for kind in ErrorType}
        all_rows: List[float] = []
        for record in history:
            rows[record.error_type].append(float(record.row))
            times[record.error_type].append(record.timestamp)
            all_rows.append(float(record.row))

        features: List[float] = []
        # Spatial: row min/max/range/mean per type.
        for kind in (ErrorType.CE, ErrorType.UEO, ErrorType.UER):
            r = rows[kind]
            if r:
                lo, hi, mean = _stats_min_max_avg(r)
                features += [lo, hi, hi - lo, mean]
            else:
                features += [MISSING] * 4
        # Spatial: consecutive row differences (time order).
        for seq in (all_rows, rows[ErrorType.CE], rows[ErrorType.UEO],
                    rows[ErrorType.UER]):
            features += list(_stats_min_max_avg(_consecutive_diffs(seq)))
        # Spatial: the three-UER-row geometry the paper leans on.
        uer_rows_sorted = sorted(set(rows[ErrorType.UER]))
        if len(uer_rows_sorted) >= 3:
            gaps = sorted(b - a for a, b in zip(uer_rows_sorted,
                                                uer_rows_sorted[1:]))
            small, large = gaps[0], gaps[-1]
            ratio = large / (small + 1.0)
            span = uer_rows_sorted[-1] - uer_rows_sorted[0]
            features += [small, large, ratio, span]
        elif len(uer_rows_sorted) == 2:
            gap = uer_rows_sorted[1] - uer_rows_sorted[0]
            features += [gap, gap, 1.0, gap]
        else:
            features += [MISSING, MISSING, MISSING, 0.0]
        # Temporal: min/max time differences per type.
        for kind in (ErrorType.CE, ErrorType.UEO, ErrorType.UER):
            diffs = _consecutive_diffs(times[kind])
            lo, hi, _ = _stats_min_max_avg(diffs)
            features += [lo, hi]
        uer_times = times[ErrorType.UER]
        features.append(uer_times[-1] - uer_times[0] if len(uer_times) >= 2
                        else MISSING)
        trigger_time = history[-1].timestamp
        prior = [r.timestamp for r in history[:-1]]
        features.append(trigger_time - prior[-1] if prior else MISSING)
        # Counts.
        first_uer_time = uer_times[0] if uer_times else float("inf")
        ce_before = sum(1 for r in history
                        if r.error_type is ErrorType.CE
                        and r.timestamp < first_uer_time)
        ueo_before = sum(1 for r in history
                         if r.error_type is ErrorType.UEO
                         and r.timestamp < first_uer_time)
        features += [float(ce_before), float(ueo_before),
                     float(len(rows[ErrorType.CE])),
                     float(len(rows[ErrorType.UEO])),
                     float(len(rows[ErrorType.UER])),
                     float(len(history))]
        # CE proximity to UER rows (aggregation CEs hug the cluster).
        if rows[ErrorType.CE] and uer_rows_sorted:
            uer_arr = np.asarray(uer_rows_sorted)
            dists = [float(np.abs(uer_arr - ce_row).min())
                     for ce_row in rows[ErrorType.CE]]
            features += [min(dists), float(np.mean(dists))]
        else:
            features += [MISSING, MISSING]
        return np.asarray(features, dtype=np.float64)

    def extract_many(self, histories: Sequence[Sequence[ErrorRecord]]
                     ) -> np.ndarray:
        """Stack feature vectors for many bank histories."""
        return np.vstack([self.extract(history) for history in histories])

    @staticmethod
    def family_of(name: str) -> str:
        """Feature family of one feature name (Section IV-B's taxonomy):
        ``"spatial"``, ``"temporal"`` or ``"count"``."""
        if ("timediff" in name or "time_span" in name
                or name == "trigger_to_last_error"):
            return "temporal"
        if name.endswith("_total") or name.endswith("before_first_uer"):
            return "count"
        return "spatial"


class FamilyMaskedFeaturizer:
    """A :class:`BankPatternFeaturizer` restricted to chosen families.

    Used by the feature-ablation study (which of the paper's three feature
    families carries the signal).
    """

    def __init__(self, families: Sequence[str],
                 base: "BankPatternFeaturizer" = None) -> None:
        valid = {"spatial", "temporal", "count"}
        self.families = set(families)
        if not self.families or not self.families <= valid:
            raise ValueError(f"families must be a non-empty subset of "
                             f"{sorted(valid)}")
        self.base = base or BankPatternFeaturizer()
        names = self.base.feature_names()
        self._keep = [i for i, name in enumerate(names)
                      if BankPatternFeaturizer.family_of(name)
                      in self.families]

    def feature_names(self) -> List[str]:
        """Names of the retained features."""
        names = self.base.feature_names()
        return [names[i] for i in self._keep]

    @property
    def n_features(self) -> int:
        """Number of retained features."""
        return len(self._keep)

    def extract(self, history: Sequence[ErrorRecord]) -> np.ndarray:
        """Masked feature vector."""
        return self.base.extract(history)[self._keep]

    def extract_many(self, histories: Sequence[Sequence[ErrorRecord]]
                     ) -> np.ndarray:
        """Masked feature matrix."""
        return self.base.extract_many(histories)[:, self._keep]


@dataclass(frozen=True)
class CrossRowWindow:
    """Geometry of the cross-row prediction window (Section IV-D).

    The paper predicts within 128 rows — 64 above and 64 below the last
    UER row — split into 16 blocks of 8 rows.  Ablations vary both knobs.
    """

    half_window: int = 64
    block_rows: int = 8

    def __post_init__(self) -> None:
        if self.half_window < 1 or self.block_rows < 1:
            raise ValueError("window parameters must be positive")
        if (2 * self.half_window) % self.block_rows != 0:
            raise ValueError("window must divide evenly into blocks")

    @property
    def n_blocks(self) -> int:
        """Number of prediction blocks."""
        return (2 * self.half_window) // self.block_rows

    def block_range(self, last_uer_row: int, block: int,
                    total_rows: int = 32768) -> Tuple[int, int]:
        """Row interval ``[start, end)`` of ``block`` (clipped to the bank)."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range")
        start = last_uer_row - self.half_window + block * self.block_rows
        end = start + self.block_rows
        return max(0, start), min(total_rows, max(0, end))

    def block_of_row(self, last_uer_row: int, row: int) -> int:
        """Block index containing ``row``, or -1 when outside the window."""
        offset = row - (last_uer_row - self.half_window)
        if offset < 0 or offset >= 2 * self.half_window:
            return -1
        return offset // self.block_rows


class CrossRowFeaturizer:
    """Per-block features for cross-row UER prediction (Section IV-D).

    Every (bank, block) sample combines block geometry (index, distance
    from the last UER row), block-local error history (CE/UEO/UER counts
    inside the block and its side of the window), and bank-level context
    (the spatial/temporal/count features of Section IV-D: error row
    numbers and differences, inter-arrival times, time since last event,
    per-type totals).
    """

    def __init__(self, window: CrossRowWindow | None = None,
                 total_rows: int = 32768) -> None:
        self.window = window or CrossRowWindow()
        self.total_rows = total_rows

    def feature_names(self) -> List[str]:
        """Names aligned with the columns of :meth:`extract_blocks`."""
        names = [
            "block_index", "block_center_offset", "block_center_distance",
            "block_ce_count", "block_ueo_count", "block_uer_count",
            "side_ce_count", "side_ueo_count", "side_uer_count",
            "window_ce_count", "window_ueo_count", "window_uer_count",
            "dist_block_to_nearest_uer", "dist_block_to_nearest_ce",
            "dist_block_to_uer_centroid",
            "uer_row_std", "uer_row_span", "uer_gap_small", "uer_gap_large",
            "last_step_signed", "last_step_abs",
            "dist_to_forward_step", "dist_to_backward_step",
            "lattice_residual_last", "lattice_residual_prev",
            "step_regularity", "steps_same_direction",
            "uer_timediff_min", "uer_timediff_max", "uer_timediff_mean",
            "time_since_last_event", "ce_total", "ueo_total", "uer_total",
            "events_total",
        ]
        return names

    @property
    def n_features(self) -> int:
        """Length of one block's feature vector."""
        return len(self.feature_names())

    def extract_blocks(self, history: Sequence[ErrorRecord],
                       last_uer_row: int) -> np.ndarray:
        """Feature matrix of shape ``(n_blocks, n_features)``."""
        if not history:
            raise ValueError("cannot featurize an empty history")
        window = self.window
        rows = {kind: [] for kind in ErrorType}
        for record in history:
            rows[record.error_type].append(record.row)
        uer_rows: List[int] = []
        seen = set()
        for record in history:
            if record.error_type is ErrorType.UER and record.row not in seen:
                seen.add(record.row)
                uer_rows.append(record.row)
        uer_arr = np.asarray(sorted(set(rows[ErrorType.UER])), dtype=float)
        ce_arr = np.asarray(sorted(rows[ErrorType.CE]), dtype=float)
        centroid = float(uer_arr.mean()) if uer_arr.size else MISSING
        uer_std = float(uer_arr.std()) if uer_arr.size else MISSING
        uer_span = (float(uer_arr.max() - uer_arr.min()) if uer_arr.size
                    else MISSING)
        if uer_arr.size >= 2:
            gaps = np.sort(np.diff(np.sort(uer_arr)))
            gap_small, gap_large = float(gaps[0]), float(gaps[-1])
        else:
            gap_small = gap_large = MISSING
        if len(uer_rows) >= 2:
            last_step = float(uer_rows[-1] - uer_rows[-2])
        else:
            last_step = 0.0
        prev_step = (float(uer_rows[-2] - uer_rows[-3])
                     if len(uer_rows) >= 3 else last_step)
        step_regularity = (abs(abs(last_step) - abs(prev_step))
                           if len(uer_rows) >= 3 else MISSING)
        steps_same_direction = (float(np.sign(last_step)
                                      == np.sign(prev_step))
                                if len(uer_rows) >= 3 else MISSING)

        def lattice_residual(distance: float, step: float) -> float:
            """How far ``distance`` is from the nearest multiple of
            ``step`` — small when a block sits on the error lattice."""
            step = abs(step)
            if step < 1:
                return MISSING
            best = min(abs(distance - k * step) for k in range(1, 7))
            return float(best)
        uer_times = [r.timestamp for r in history
                     if r.error_type is ErrorType.UER]
        tdiffs = _consecutive_diffs(uer_times)
        t_lo, t_hi, t_mean = _stats_min_max_avg(tdiffs)
        trigger_time = history[-1].timestamp
        prior_times = [r.timestamp for r in history[:-1]]
        since_last = (trigger_time - prior_times[-1]) if prior_times else MISSING
        totals = [float(len(rows[ErrorType.CE])),
                  float(len(rows[ErrorType.UEO])),
                  float(len(rows[ErrorType.UER])), float(len(history))]

        matrix = np.empty((window.n_blocks, self.n_features),
                          dtype=np.float64)
        window_lo = last_uer_row - window.half_window
        window_hi = last_uer_row + window.half_window

        def count_in(kind: ErrorType, lo: float, hi: float) -> float:
            return float(sum(1 for r in rows[kind] if lo <= r < hi))

        window_counts = [count_in(k, window_lo, window_hi)
                         for k in (ErrorType.CE, ErrorType.UEO,
                                   ErrorType.UER)]
        for block in range(window.n_blocks):
            start, end = window.block_range(last_uer_row, block,
                                            self.total_rows)
            center = (start + end) / 2.0
            offset = center - last_uer_row
            below = center < last_uer_row
            side_lo, side_hi = ((window_lo, last_uer_row) if below
                                else (last_uer_row, window_hi))
            block_counts = [count_in(k, start, end)
                            for k in (ErrorType.CE, ErrorType.UEO,
                                      ErrorType.UER)]
            side_counts = [count_in(k, side_lo, side_hi)
                           for k in (ErrorType.CE, ErrorType.UEO,
                                     ErrorType.UER)]
            d_uer = (float(np.abs(uer_arr - center).min()) if uer_arr.size
                     else MISSING)
            d_ce = (float(np.abs(ce_arr - center).min()) if ce_arr.size
                    else MISSING)
            d_centroid = (abs(center - centroid) if centroid != MISSING
                          else MISSING)
            d_forward = abs(center - (last_uer_row + last_step))
            d_backward = abs(center - (last_uer_row - last_step))
            matrix[block] = (
                [float(block), offset, abs(offset)]
                + block_counts + side_counts + window_counts
                + [d_uer, d_ce, d_centroid,
                   uer_std, uer_span, gap_small, gap_large,
                   last_step, abs(last_step),
                   d_forward, d_backward,
                   lattice_residual(abs(offset), last_step),
                   lattice_residual(abs(offset), prev_step),
                   step_regularity, steps_same_direction,
                   t_lo, t_hi, t_mean, since_last]
                + totals)
        return matrix

    def block_labels(self, last_uer_row: int, trigger_time: float,
                     future_uer_rows: Sequence[Tuple[float, int]]
                     ) -> np.ndarray:
        """Ground-truth block labels: does a future UER land in each block?

        Args:
            future_uer_rows: ``(first_uer_time, row)`` pairs with
                ``first_uer_time > trigger_time``.
        """
        labels = np.zeros(self.window.n_blocks, dtype=bool)
        for when, row in future_uer_rows:
            if when <= trigger_time:
                continue
            block = self.window.block_of_row(last_uer_row, row)
            if block >= 0:
                labels[block] = True
        return labels
