"""Feature extraction for both Cordial predictors (Sections IV-B and IV-D).

Both featurizers consume a bank's event history *up to the trigger* (the
third distinct UER row) — exactly the information available when the
decision is made; the :class:`~repro.telemetry.collector.BMCCollector`
hands over precisely this snapshot, making look-ahead structurally
impossible.

Undefined values (e.g. "min CE row" in a bank that has no CEs) are encoded
as ``MISSING = -1`` — tree models split on the sentinel naturally.

Two extraction paths exist, locked to exact (bit-identical) agreement by
``tests/test_feature_equivalence.py``:

* the **scalar reference** — :meth:`BankPatternFeaturizer.extract` and
  :meth:`CrossRowFeaturizer.extract_blocks_scalar` walk the history
  record by record; they define the feature semantics;
* the **vectorized batch path** — :meth:`BankPatternFeaturizer.extract_many`
  and :meth:`CrossRowFeaturizer.extract_blocks` pack each history once
  into ``(rows, times, type codes)`` arrays (:func:`pack_history`) and
  compute every feature with NumPy reductions.  The online service goes
  one step further and folds events into a
  :class:`~repro.core.incremental.IncrementalFeatureState`, whose
  :class:`CrossRowAggregates` feed the same column kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.telemetry.events import ErrorRecord, ErrorType

MISSING = -1.0

#: Packed type codes (index into per-type arrays).
CE_CODE, UEO_CODE, UER_CODE = 0, 1, 2
_TYPE_CODE = {ErrorType.CE: CE_CODE, ErrorType.UEO: UEO_CODE,
              ErrorType.UER: UER_CODE}

#: Lattice multiples probed by the cross-row lattice-residual feature.
_LATTICE_KS = np.arange(1, 7, dtype=np.float64)


def pack_history(history: Sequence[ErrorRecord]
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One pass over a history -> ``(rows, times, codes)`` arrays.

    ``rows`` and ``times`` are float64, ``codes`` maps each record's
    :class:`ErrorType` to ``CE_CODE``/``UEO_CODE``/``UER_CODE``.  This is
    the single per-record Python loop of the vectorized path; everything
    downstream is NumPy reductions over these arrays.
    """
    n = len(history)
    rows = np.empty(n, dtype=np.float64)
    times = np.empty(n, dtype=np.float64)
    codes = np.empty(n, dtype=np.int8)
    code_of = _TYPE_CODE
    for index, record in enumerate(history):
        rows[index] = record.address.row
        times[index] = record.timestamp
        codes[index] = code_of[record.error_type]
    return rows, times, codes


def _stats_min_max_avg(values: Sequence[float]) -> Tuple[float, float, float]:
    if not len(values):
        return MISSING, MISSING, MISSING
    arr = np.asarray(values, dtype=np.float64)
    return float(arr.min()), float(arr.max()), float(arr.mean())


def _consecutive_diffs(values: Sequence[float]) -> List[float]:
    return [abs(b - a) for a, b in zip(values, values[1:])]


def _diff_stats(values: np.ndarray) -> Tuple[float, float, float]:
    """min/max/mean of ``|consecutive difference|`` (vectorized twin of
    ``_stats_min_max_avg(_consecutive_diffs(...))``)."""
    if values.size < 2:
        return MISSING, MISSING, MISSING
    diffs = np.abs(np.diff(values))
    return float(diffs.min()), float(diffs.max()), float(diffs.mean())


def _segment_min_max(data: np.ndarray, starts: np.ndarray,
                     counts: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment min and max; ``MISSING`` where a segment is empty.

    The segments must tile ``data`` contiguously in order.  min/max are
    order-independent, so ``reduceat`` is bit-exact here.
    """
    mins = np.full(counts.shape, MISSING)
    maxs = np.full(counts.shape, MISSING)
    nonempty = counts > 0
    if data.size and nonempty.any():
        first = starts[nonempty]
        mins[nonempty] = np.minimum.reduceat(data, first)
        maxs[nonempty] = np.maximum.reduceat(data, first)
    return mins, maxs


def _segment_means(data: np.ndarray, starts: np.ndarray,
                   counts: np.ndarray) -> np.ndarray:
    """Per-segment mean, bit-identical to ``data[s:s+c].mean()``.

    ``np.mean`` sums the pairwise way, which below 8 elements is plain
    left-to-right accumulation from 0.0 — reproduced for all short
    segments at once by row-summing a zero-padded 7-column gather
    (appending ``+0.0`` terms is exact for the non-negative values fed
    here).  Longer segments fall back to a real per-segment ``mean``;
    ``reduceat`` is NOT usable for the sum — its accumulation order
    diverges from ``np.mean`` from 3 elements up.
    """
    means = np.full(counts.shape, MISSING)
    short = (counts > 0) & (counts < 8)
    if short.any():
        first = starts[short]
        width = counts[short]
        index = first[:, None] + np.arange(7)
        np.minimum(index, data.size - 1, out=index)
        block = data[index]
        block[np.arange(7) >= width[:, None]] = 0.0
        means[short] = block.sum(axis=1) / width
    for i in np.nonzero(counts >= 8)[0]:
        s = starts[i]
        means[i] = data[s:s + counts[i]].mean()
    return means


class BankPatternFeaturizer:
    """Failure-pattern features (Section IV-B).

    Spatial features — min/max rows of CEs, UEOs and UERs and the
    min/max/average row difference between consecutive errors (overall and
    per type), plus the pairwise gaps of the first three UER rows;
    temporal features — min/max occurrence-time differences per type;
    count features — CE/UEO totals before the first UER and at trigger
    time.
    """

    def feature_names(self) -> List[str]:
        """Names aligned with the vectors returned by :meth:`extract`."""
        names: List[str] = []
        for kind in ("ce", "ueo", "uer"):
            names += [f"{kind}_row_min", f"{kind}_row_max",
                      f"{kind}_row_range", f"{kind}_row_mean"]
        for kind in ("all", "ce", "ueo", "uer"):
            names += [f"{kind}_rowdiff_min", f"{kind}_rowdiff_max",
                      f"{kind}_rowdiff_avg"]
        names += ["uer_gap_small", "uer_gap_large", "uer_gap_ratio",
                  "uer_span"]
        for kind in ("ce", "ueo", "uer"):
            names += [f"{kind}_timediff_min", f"{kind}_timediff_max"]
        names += ["uer_time_span", "trigger_to_last_error"]
        names += ["ce_before_first_uer", "ueo_before_first_uer",
                  "ce_total", "ueo_total", "uer_events_total",
                  "events_total"]
        names += ["ce_near_uer_min", "ce_near_uer_mean"]
        return names

    @property
    def n_features(self) -> int:
        """Length of the feature vector."""
        return len(self.feature_names())

    def extract(self, history: Sequence[ErrorRecord]) -> np.ndarray:
        """Feature vector from a bank history snapshot (trigger included).

        Scalar reference implementation: walks the history record by
        record and defines the exact semantics the vectorized
        :meth:`extract_many` must reproduce bit for bit.
        """
        if not history:
            raise ValueError("cannot featurize an empty history")
        rows = {kind: [] for kind in ErrorType}
        times = {kind: [] for kind in ErrorType}
        all_rows: List[float] = []
        for record in history:
            rows[record.error_type].append(float(record.row))
            times[record.error_type].append(record.timestamp)
            all_rows.append(float(record.row))

        features: List[float] = []
        # Spatial: row min/max/range/mean per type.
        for kind in (ErrorType.CE, ErrorType.UEO, ErrorType.UER):
            r = rows[kind]
            if r:
                lo, hi, mean = _stats_min_max_avg(r)
                features += [lo, hi, hi - lo, mean]
            else:
                features += [MISSING] * 4
        # Spatial: consecutive row differences (time order).
        for seq in (all_rows, rows[ErrorType.CE], rows[ErrorType.UEO],
                    rows[ErrorType.UER]):
            features += list(_stats_min_max_avg(_consecutive_diffs(seq)))
        # Spatial: the three-UER-row geometry the paper leans on.
        uer_rows_sorted = sorted(set(rows[ErrorType.UER]))
        if len(uer_rows_sorted) >= 3:
            gaps = sorted(b - a for a, b in zip(uer_rows_sorted,
                                                uer_rows_sorted[1:]))
            small, large = gaps[0], gaps[-1]
            ratio = large / (small + 1.0)
            span = uer_rows_sorted[-1] - uer_rows_sorted[0]
            features += [small, large, ratio, span]
        elif len(uer_rows_sorted) == 2:
            gap = uer_rows_sorted[1] - uer_rows_sorted[0]
            features += [gap, gap, gap / (gap + 1.0), gap]
        else:
            features += [MISSING, MISSING, MISSING, MISSING]
        # Temporal: min/max time differences per type.
        for kind in (ErrorType.CE, ErrorType.UEO, ErrorType.UER):
            diffs = _consecutive_diffs(times[kind])
            lo, hi, _ = _stats_min_max_avg(diffs)
            features += [lo, hi]
        uer_times = times[ErrorType.UER]
        features.append(uer_times[-1] - uer_times[0] if len(uer_times) >= 2
                        else MISSING)
        trigger_time = history[-1].timestamp
        prior = [r.timestamp for r in history[:-1]]
        features.append(trigger_time - prior[-1] if prior else MISSING)
        # Counts.
        first_uer_time = uer_times[0] if uer_times else float("inf")
        ce_before = sum(1 for r in history
                        if r.error_type is ErrorType.CE
                        and r.timestamp < first_uer_time)
        ueo_before = sum(1 for r in history
                         if r.error_type is ErrorType.UEO
                         and r.timestamp < first_uer_time)
        features += [float(ce_before), float(ueo_before),
                     float(len(rows[ErrorType.CE])),
                     float(len(rows[ErrorType.UEO])),
                     float(len(rows[ErrorType.UER])),
                     float(len(history))]
        # CE proximity to UER rows (aggregation CEs hug the cluster).
        if rows[ErrorType.CE] and uer_rows_sorted:
            uer_arr = np.asarray(uer_rows_sorted)
            dists = [float(np.abs(uer_arr - ce_row).min())
                     for ce_row in rows[ErrorType.CE]]
            features += [min(dists), float(np.mean(dists))]
        else:
            features += [MISSING, MISSING]
        return np.asarray(features, dtype=np.float64)

    def extract_packed(self, rows: np.ndarray, times: np.ndarray,
                       codes: np.ndarray) -> np.ndarray:
        """Vectorized feature vector from one packed history.

        Bit-identical to :meth:`extract` on the same history: every
        reduction runs over the same float64 values in the same order the
        scalar path sees them.
        """
        if rows.size == 0:
            raise ValueError("cannot featurize an empty history")
        type_masks = [codes == code for code in (CE_CODE, UEO_CODE, UER_CODE)]
        type_rows = [rows[mask] for mask in type_masks]
        type_times = [times[mask] for mask in type_masks]

        features: List[float] = []
        # Spatial: row min/max/range/mean per type.
        for r in type_rows:
            if r.size:
                lo, hi, mean = float(r.min()), float(r.max()), float(r.mean())
                features += [lo, hi, hi - lo, mean]
            else:
                features += [MISSING] * 4
        # Spatial: consecutive row differences (time order).
        for seq in (rows, type_rows[CE_CODE], type_rows[UEO_CODE],
                    type_rows[UER_CODE]):
            features += list(_diff_stats(seq))
        # Spatial: the three-UER-row geometry the paper leans on.
        uer_unique = np.unique(type_rows[UER_CODE])
        if uer_unique.size >= 3:
            gaps = np.sort(np.diff(uer_unique))
            small, large = float(gaps[0]), float(gaps[-1])
            features += [small, large, large / (small + 1.0),
                         float(uer_unique[-1]) - float(uer_unique[0])]
        elif uer_unique.size == 2:
            gap = float(uer_unique[1]) - float(uer_unique[0])
            features += [gap, gap, gap / (gap + 1.0), gap]
        else:
            features += [MISSING, MISSING, MISSING, MISSING]
        # Temporal: min/max time differences per type.
        for t in type_times:
            lo, hi, _ = _diff_stats(t)
            features += [lo, hi]
        uer_times = type_times[UER_CODE]
        features.append(float(uer_times[-1]) - float(uer_times[0])
                        if uer_times.size >= 2 else MISSING)
        features.append(float(times[-1]) - float(times[-2])
                        if times.size >= 2 else MISSING)
        # Counts.
        first_uer_time = uer_times[0] if uer_times.size else np.inf
        before = times < first_uer_time
        features += [float(np.count_nonzero(type_masks[CE_CODE] & before)),
                     float(np.count_nonzero(type_masks[UEO_CODE] & before)),
                     float(type_rows[CE_CODE].size),
                     float(type_rows[UEO_CODE].size),
                     float(type_rows[UER_CODE].size),
                     float(rows.size)]
        # CE proximity to UER rows (aggregation CEs hug the cluster).
        ce_rows = type_rows[CE_CODE]
        if ce_rows.size and uer_unique.size:
            dists = np.abs(ce_rows[:, None] - uer_unique[None, :]).min(axis=1)
            features += [float(dists.min()), float(dists.mean())]
        else:
            features += [MISSING, MISSING]
        return np.asarray(features, dtype=np.float64)

    def extract_many(self, histories: Sequence[Sequence[ErrorRecord]]
                     ) -> np.ndarray:
        """Stack feature vectors for many bank histories (columnar).

        All histories are packed into one concatenated ``(rows, times,
        codes)`` column set in a single pass, and every feature column is
        computed for the whole batch at once with segment reductions —
        no per-history NumPy dispatch.  The result equals
        ``np.vstack([self.extract(h) for h in histories])`` bit for bit
        (``tests/test_feature_equivalence.py``).
        """
        if not histories:
            raise ValueError("cannot featurize an empty batch")
        n_hist = len(histories)
        lengths = np.fromiter((len(h) for h in histories),
                              dtype=np.int64, count=n_hist)
        if not lengths.all():
            raise ValueError("cannot featurize an empty history")
        offsets = np.zeros(n_hist + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        rows = np.empty(total, dtype=np.float64)
        times = np.empty(total, dtype=np.float64)
        codes = np.empty(total, dtype=np.int8)
        code_of = _TYPE_CODE
        position = 0
        for history in histories:
            for record in history:
                rows[position] = record.address.row
                times[position] = record.timestamp
                codes[position] = code_of[record.error_type]
                position += 1
        hist_index = np.repeat(np.arange(n_hist, dtype=np.int64), lengths)

        def segment_starts(counts: np.ndarray) -> np.ndarray:
            starts = np.zeros(counts.shape, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            return starts

        # Group records by (history, type); the stable sort preserves
        # time order inside each group, so every per-group reduction sees
        # the exact value sequence the scalar path iterates.
        group = hist_index * 3 + codes
        order = np.argsort(group, kind="stable")
        sorted_group = group[order]
        g_rows = rows[order]
        g_times = times[order]
        g_counts = np.bincount(group, minlength=3 * n_hist)
        g_starts = segment_starts(g_counts)

        columns: List[np.ndarray] = []
        # Spatial: row min/max/range/mean per type.
        row_min, row_max = _segment_min_max(g_rows, g_starts, g_counts)
        row_mean = _segment_means(g_rows, g_starts, g_counts)
        for code in (CE_CODE, UEO_CODE, UER_CODE):
            lo, hi = row_min[code::3], row_max[code::3]
            spread = np.where(g_counts[code::3] > 0, hi - lo, MISSING)
            columns += [lo, hi, spread, row_mean[code::3]]
        # Spatial: consecutive row differences (time order) — overall and
        # per type.  Adjacent-pair masks drop the history/group seams.
        d_all = np.abs(rows[1:] - rows[:-1])[hist_index[1:]
                                             == hist_index[:-1]]
        d_counts = lengths - 1
        d_starts = segment_starts(d_counts)
        g_adjacent = sorted_group[1:] == sorted_group[:-1]
        dg_rows = np.abs(g_rows[1:] - g_rows[:-1])[g_adjacent]
        dg_counts = np.maximum(g_counts - 1, 0)
        dg_starts = segment_starts(dg_counts)
        d_min, d_max = _segment_min_max(d_all, d_starts, d_counts)
        columns += [d_min, d_max, _segment_means(d_all, d_starts, d_counts)]
        gd_min, gd_max = _segment_min_max(dg_rows, dg_starts, dg_counts)
        gd_mean = _segment_means(dg_rows, dg_starts, dg_counts)
        for code in (CE_CODE, UEO_CODE, UER_CODE):
            columns += [gd_min[code::3], gd_max[code::3], gd_mean[code::3]]
        # Spatial: the three-UER-row geometry, from the per-history sorted
        # distinct UER rows (integer keys make np.unique segment-aware).
        uer_mask = codes == UER_CODE
        base = int(rows.max()) + 2 if total else 2
        distinct = np.unique(hist_index[uer_mask] * base
                             + rows[uer_mask].astype(np.int64))
        du_hist = distinct // base
        du_rows = (distinct - du_hist * base).astype(np.float64)
        du_counts = np.bincount(du_hist, minlength=n_hist)
        du_starts = segment_starts(du_counts)
        gap_d = (du_rows[1:] - du_rows[:-1])[du_hist[1:] == du_hist[:-1]]
        gap_counts = np.maximum(du_counts - 1, 0)
        gap_min, gap_max = _segment_min_max(gap_d,
                                            segment_starts(gap_counts),
                                            gap_counts)
        two_plus = du_counts >= 2
        ratio = np.full(n_hist, MISSING)
        ratio[two_plus] = gap_max[two_plus] / (gap_min[two_plus] + 1.0)
        span = np.full(n_hist, MISSING)
        span[two_plus] = (du_rows[du_starts[two_plus]
                                  + du_counts[two_plus] - 1]
                          - du_rows[du_starts[two_plus]])
        columns += [gap_min, gap_max, ratio, span]
        # Temporal: min/max time differences per type.
        dg_times = np.abs(g_times[1:] - g_times[:-1])[g_adjacent]
        t_min, t_max = _segment_min_max(dg_times, dg_starts, dg_counts)
        for code in (CE_CODE, UEO_CODE, UER_CODE):
            columns += [t_min[code::3], t_max[code::3]]
        uer_counts = g_counts[UER_CODE::3]
        uer_starts = g_starts[UER_CODE::3]
        t_span = np.full(n_hist, MISSING)
        multi = uer_counts >= 2
        t_span[multi] = (g_times[uer_starts[multi] + uer_counts[multi] - 1]
                         - g_times[uer_starts[multi]])
        columns.append(t_span)
        t_last = np.full(n_hist, MISSING)
        pair = lengths >= 2
        ends = offsets[1:]
        t_last[pair] = times[ends[pair] - 1] - times[ends[pair] - 2]
        columns.append(t_last)
        # Counts.
        first_uer = np.full(n_hist, np.inf)
        has_uer = uer_counts > 0
        first_uer[has_uer] = g_times[uer_starts[has_uer]]
        before = times < first_uer[hist_index]
        ce_mask = codes == CE_CODE
        ueo_mask = codes == UEO_CODE
        columns += [
            np.bincount(hist_index[before & ce_mask],
                        minlength=n_hist).astype(np.float64),
            np.bincount(hist_index[before & ueo_mask],
                        minlength=n_hist).astype(np.float64),
            g_counts[CE_CODE::3].astype(np.float64),
            g_counts[UEO_CODE::3].astype(np.float64),
            uer_counts.astype(np.float64),
            lengths.astype(np.float64),
        ]
        # CE proximity to distinct UER rows: each CE's nearest neighbour
        # is one of its two searchsorted neighbours in the same history.
        ce_counts = g_counts[CE_CODE::3]
        c_hist = hist_index[ce_mask]
        c_rows = rows[ce_mask]
        near = np.full(c_rows.shape, np.inf)
        if c_rows.size and distinct.size:
            pos = np.searchsorted(distinct,
                                  c_hist * base + c_rows.astype(np.int64))
            for candidate in (pos - 1, pos):
                valid = (candidate >= 0) & (candidate < distinct.size)
                safe = np.where(valid, candidate, 0)
                valid &= du_hist[safe] == c_hist
                np.minimum(near,
                           np.where(valid, np.abs(du_rows[safe] - c_rows),
                                    np.inf), out=near)
        c_starts = segment_starts(ce_counts)
        eligible = (ce_counts > 0) & (du_counts > 0)
        near_min, _ = _segment_min_max(near, c_starts, ce_counts)
        near_mean = _segment_means(near, c_starts, ce_counts)
        columns += [np.where(eligible, near_min, MISSING),
                    np.where(eligible, near_mean, MISSING)]
        return np.column_stack(columns)

    @staticmethod
    def family_of(name: str) -> str:
        """Feature family of one feature name (Section IV-B's taxonomy):
        ``"spatial"``, ``"temporal"`` or ``"count"``."""
        if ("timediff" in name or "time_span" in name
                or name == "trigger_to_last_error"):
            return "temporal"
        if name.endswith("_total") or name.endswith("before_first_uer"):
            return "count"
        return "spatial"


class FamilyMaskedFeaturizer:
    """A :class:`BankPatternFeaturizer` restricted to chosen families.

    Used by the feature-ablation study (which of the paper's three feature
    families carries the signal).
    """

    def __init__(self, families: Sequence[str],
                 base: "BankPatternFeaturizer" = None) -> None:
        valid = {"spatial", "temporal", "count"}
        self.families = set(families)
        if not self.families or not self.families <= valid:
            raise ValueError(f"families must be a non-empty subset of "
                             f"{sorted(valid)}")
        self.base = base or BankPatternFeaturizer()
        names = self.base.feature_names()
        self._keep = [i for i, name in enumerate(names)
                      if BankPatternFeaturizer.family_of(name)
                      in self.families]

    def feature_names(self) -> List[str]:
        """Names of the retained features."""
        names = self.base.feature_names()
        return [names[i] for i in self._keep]

    @property
    def n_features(self) -> int:
        """Number of retained features."""
        return len(self._keep)

    def extract(self, history: Sequence[ErrorRecord]) -> np.ndarray:
        """Masked feature vector."""
        return self.base.extract(history)[self._keep]

    def extract_many(self, histories: Sequence[Sequence[ErrorRecord]]
                     ) -> np.ndarray:
        """Masked feature matrix."""
        return self.base.extract_many(histories)[:, self._keep]


@dataclass(frozen=True)
class CrossRowWindow:
    """Geometry of the cross-row prediction window (Section IV-D).

    The paper predicts within 128 rows — 64 above and 64 below the last
    UER row — split into 16 blocks of 8 rows.  Ablations vary both knobs.
    """

    half_window: int = 64
    block_rows: int = 8

    def __post_init__(self) -> None:
        if self.half_window < 1 or self.block_rows < 1:
            raise ValueError("window parameters must be positive")
        if (2 * self.half_window) % self.block_rows != 0:
            raise ValueError("window must divide evenly into blocks")

    @property
    def n_blocks(self) -> int:
        """Number of prediction blocks."""
        return (2 * self.half_window) // self.block_rows

    def block_range(self, last_uer_row: int, block: int,
                    total_rows: int = 32768) -> Tuple[int, int]:
        """Row interval ``[start, end)`` of ``block`` (clipped to the bank)."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range")
        start = last_uer_row - self.half_window + block * self.block_rows
        end = start + self.block_rows
        return max(0, start), min(total_rows, max(0, end))

    def block_of_row(self, last_uer_row: int, row: int) -> int:
        """Block index containing ``row``, or -1 when outside the window."""
        offset = row - (last_uer_row - self.half_window)
        if offset < 0 or offset >= 2 * self.half_window:
            return -1
        return offset // self.block_rows


@dataclass(frozen=True)
class CrossRowAggregates:
    """Everything :class:`CrossRowFeaturizer` needs from a bank history.

    Both extraction paths reduce a history to this record before the
    per-block column kernels run: the batch path builds it from a packed
    history in one pass (:meth:`CrossRowFeaturizer.aggregate_history`),
    the online path maintains it incrementally
    (:meth:`repro.core.incremental.IncrementalFeatureState.aggregates`).
    Equal aggregates produce bit-identical block matrices by construction.

    Attributes:
        rows_by_type: per type code, ``(distinct rows sorted ascending,
            event multiplicities)`` — both float64/int64 arrays.
        uer_occurrence: distinct UER rows in first-occurrence order.
        uer_times: every UER timestamp, in stream order.
        since_last: newest event timestamp minus the previous event's
            (``MISSING`` for a single-event history).
        totals: ``(ce, ueo, uer, all)`` event counts.
    """

    rows_by_type: Tuple[Tuple[np.ndarray, np.ndarray], ...]
    uer_occurrence: np.ndarray
    uer_times: np.ndarray
    since_last: float
    totals: Tuple[float, float, float, float]


class CrossRowFeaturizer:
    """Per-block features for cross-row UER prediction (Section IV-D).

    Every (bank, block) sample combines block geometry (index, distance
    from the last UER row), block-local error history (CE/UEO/UER counts
    inside the block and its side of the window), and bank-level context
    (the spatial/temporal/count features of Section IV-D: error row
    numbers and differences, inter-arrival times, time since last event,
    per-type totals).
    """

    def __init__(self, window: CrossRowWindow | None = None,
                 total_rows: int = 32768) -> None:
        self.window = window or CrossRowWindow()
        self.total_rows = total_rows

    def feature_names(self) -> List[str]:
        """Names aligned with the columns of :meth:`extract_blocks`."""
        names = [
            "block_index", "block_center_offset", "block_center_distance",
            "block_ce_count", "block_ueo_count", "block_uer_count",
            "side_ce_count", "side_ueo_count", "side_uer_count",
            "window_ce_count", "window_ueo_count", "window_uer_count",
            "dist_block_to_nearest_uer", "dist_block_to_nearest_ce",
            "dist_block_to_uer_centroid",
            "uer_row_std", "uer_row_span", "uer_gap_small", "uer_gap_large",
            "last_step_signed", "last_step_abs",
            "dist_to_forward_step", "dist_to_backward_step",
            "lattice_residual_last", "lattice_residual_prev",
            "step_regularity", "steps_same_direction",
            "uer_timediff_min", "uer_timediff_max", "uer_timediff_mean",
            "time_since_last_event", "ce_total", "ueo_total", "uer_total",
            "events_total",
        ]
        return names

    @property
    def n_features(self) -> int:
        """Length of one block's feature vector."""
        return len(self.feature_names())

    # -- aggregation ---------------------------------------------------------
    @staticmethod
    def aggregate_history(history: Sequence[ErrorRecord]
                          ) -> CrossRowAggregates:
        """Reduce one history to :class:`CrossRowAggregates` (one pass)."""
        if not history:
            raise ValueError("cannot featurize an empty history")
        rows, times, codes = pack_history(history)
        rows_by_type = []
        for code in (CE_CODE, UEO_CODE, UER_CODE):
            distinct, counts = np.unique(rows[codes == code],
                                         return_counts=True)
            rows_by_type.append((distinct, counts))
        uer_mask = codes == UER_CODE
        uer_sub = rows[uer_mask]
        distinct, first_index = np.unique(uer_sub, return_index=True)
        occurrence = distinct[np.argsort(first_index, kind="stable")]
        since_last = (float(times[-1]) - float(times[-2])
                      if times.size >= 2 else MISSING)
        totals = (float(np.count_nonzero(codes == CE_CODE)),
                  float(np.count_nonzero(codes == UEO_CODE)),
                  float(np.count_nonzero(uer_mask)),
                  float(rows.size))
        return CrossRowAggregates(
            rows_by_type=tuple(rows_by_type),
            uer_occurrence=occurrence,
            uer_times=times[uer_mask],
            since_last=since_last,
            totals=totals,
        )

    # -- extraction ----------------------------------------------------------
    def extract_blocks(self, history: Sequence[ErrorRecord],
                       last_uer_row: int) -> np.ndarray:
        """Feature matrix of shape ``(n_blocks, n_features)`` (vectorized).

        Packs the history once, reduces it to
        :class:`CrossRowAggregates`, then computes every block column
        with NumPy kernels.  Bit-identical to
        :meth:`extract_blocks_scalar` (``tests/test_feature_equivalence``).
        """
        return self.extract_from_aggregates(self.aggregate_history(history),
                                            last_uer_row)

    def extract_from_aggregates(self, agg: CrossRowAggregates,
                                last_uer_row: int) -> np.ndarray:
        """Block feature matrix from pre-reduced history aggregates.

        This is the kernel both the batch path and the incremental online
        path share — feeding it equal aggregates is what makes the two
        paths bit-identical by construction.
        """
        window = self.window
        n_blocks = window.n_blocks
        uer_arr = agg.rows_by_type[UER_CODE][0]
        ce_arr = agg.rows_by_type[CE_CODE][0]
        centroid = float(uer_arr.mean()) if uer_arr.size else MISSING
        uer_std = float(uer_arr.std()) if uer_arr.size else MISSING
        uer_span = (float(uer_arr.max() - uer_arr.min()) if uer_arr.size
                    else MISSING)
        if uer_arr.size >= 2:
            gaps = np.sort(np.diff(np.sort(uer_arr)))
            gap_small, gap_large = float(gaps[0]), float(gaps[-1])
        else:
            gap_small = gap_large = MISSING
        occurrence = agg.uer_occurrence
        if occurrence.size >= 2:
            last_step = float(occurrence[-1] - occurrence[-2])
        else:
            last_step = 0.0
        prev_step = (float(occurrence[-2] - occurrence[-3])
                     if occurrence.size >= 3 else last_step)
        step_regularity = (abs(abs(last_step) - abs(prev_step))
                           if occurrence.size >= 3 else MISSING)
        steps_same_direction = (float(np.sign(last_step)
                                      == np.sign(prev_step))
                                if occurrence.size >= 3 else MISSING)
        t_lo, t_hi, t_mean = _diff_stats(agg.uer_times)

        # Block geometry, clipped exactly like CrossRowWindow.block_range.
        block_index = np.arange(n_blocks, dtype=np.float64)
        raw_starts = (last_uer_row - window.half_window
                      + block_index * window.block_rows)
        starts = np.maximum(0.0, raw_starts)
        ends = np.minimum(float(self.total_rows),
                          np.maximum(0.0, raw_starts + window.block_rows))
        centers = (starts + ends) / 2.0
        offsets = centers - last_uer_row
        abs_offsets = np.abs(offsets)
        window_lo = float(last_uer_row - window.half_window)
        window_hi = float(last_uer_row + window.half_window)

        cumulative_by_type = [np.concatenate(([0], np.cumsum(counts)))
                              for _, counts in agg.rows_by_type]

        def range_counts(code: int, lo, hi) -> np.ndarray:
            distinct = agg.rows_by_type[code][0]
            cumulative = cumulative_by_type[code]
            i = np.searchsorted(distinct, lo, side="left")
            j = np.searchsorted(distinct, hi, side="left")
            return (cumulative[j] - cumulative[i]).astype(np.float64)

        block_counts = [range_counts(code, starts, ends)
                        for code in (CE_CODE, UEO_CODE, UER_CODE)]
        below = centers < last_uer_row
        side_counts = []
        for code in (CE_CODE, UEO_CODE, UER_CODE):
            low_side, high_side = range_counts(
                code,
                np.asarray([window_lo, float(last_uer_row)]),
                np.asarray([float(last_uer_row), window_hi]))
            side_counts.append(np.where(below, low_side, high_side))
        window_counts = [
            float(range_counts(code,
                               np.asarray([window_lo]),
                               np.asarray([window_hi]))[0])
            for code in (CE_CODE, UEO_CODE, UER_CODE)]

        if uer_arr.size:
            d_uer = np.abs(centers[:, None] - uer_arr[None, :]).min(axis=1)
        else:
            d_uer = np.full(n_blocks, MISSING)
        if ce_arr.size:
            d_ce = np.abs(centers[:, None] - ce_arr[None, :]).min(axis=1)
        else:
            d_ce = np.full(n_blocks, MISSING)
        if centroid != MISSING:
            d_centroid = np.abs(centers - centroid)
        else:
            d_centroid = np.full(n_blocks, MISSING)
        d_forward = np.abs(centers - (last_uer_row + last_step))
        d_backward = np.abs(centers - (last_uer_row - last_step))

        def lattice_residual(step: float) -> np.ndarray:
            """How far each block center is from the nearest multiple of
            ``step`` — small when a block sits on the error lattice."""
            step = abs(step)
            if step < 1:
                return np.full(n_blocks, MISSING)
            return np.abs(abs_offsets[:, None]
                          - step * _LATTICE_KS[None, :]).min(axis=1)

        def full(value: float) -> np.ndarray:
            return np.full(n_blocks, value)

        columns = (
            [block_index, offsets, abs_offsets]
            + block_counts + side_counts
            + [full(c) for c in window_counts]
            + [d_uer, d_ce, d_centroid,
               full(uer_std), full(uer_span),
               full(gap_small), full(gap_large),
               full(last_step), full(abs(last_step)),
               d_forward, d_backward,
               lattice_residual(last_step), lattice_residual(prev_step),
               full(step_regularity), full(steps_same_direction),
               full(t_lo), full(t_hi), full(t_mean), full(agg.since_last)]
            + [full(t) for t in agg.totals])
        return np.column_stack(columns)

    def extract_blocks_scalar(self, history: Sequence[ErrorRecord],
                              last_uer_row: int) -> np.ndarray:
        """Scalar reference implementation of :meth:`extract_blocks`.

        Walks the history record by record and the window block by block;
        defines the exact feature semantics the vectorized path must
        reproduce bit for bit (``tests/test_feature_equivalence.py``).
        """
        if not history:
            raise ValueError("cannot featurize an empty history")
        window = self.window
        rows = {kind: [] for kind in ErrorType}
        for record in history:
            rows[record.error_type].append(record.row)
        uer_rows: List[int] = []
        seen = set()
        for record in history:
            if record.error_type is ErrorType.UER and record.row not in seen:
                seen.add(record.row)
                uer_rows.append(record.row)
        uer_arr = np.asarray(sorted(set(rows[ErrorType.UER])), dtype=float)
        ce_arr = np.asarray(sorted(rows[ErrorType.CE]), dtype=float)
        centroid = float(uer_arr.mean()) if uer_arr.size else MISSING
        uer_std = float(uer_arr.std()) if uer_arr.size else MISSING
        uer_span = (float(uer_arr.max() - uer_arr.min()) if uer_arr.size
                    else MISSING)
        if uer_arr.size >= 2:
            gaps = np.sort(np.diff(np.sort(uer_arr)))
            gap_small, gap_large = float(gaps[0]), float(gaps[-1])
        else:
            gap_small = gap_large = MISSING
        if len(uer_rows) >= 2:
            last_step = float(uer_rows[-1] - uer_rows[-2])
        else:
            last_step = 0.0
        prev_step = (float(uer_rows[-2] - uer_rows[-3])
                     if len(uer_rows) >= 3 else last_step)
        step_regularity = (abs(abs(last_step) - abs(prev_step))
                           if len(uer_rows) >= 3 else MISSING)
        steps_same_direction = (float(np.sign(last_step)
                                      == np.sign(prev_step))
                                if len(uer_rows) >= 3 else MISSING)

        def lattice_residual(distance: float, step: float) -> float:
            """How far ``distance`` is from the nearest multiple of
            ``step`` — small when a block sits on the error lattice."""
            step = abs(step)
            if step < 1:
                return MISSING
            best = min(abs(distance - k * step) for k in range(1, 7))
            return float(best)
        uer_times = [r.timestamp for r in history
                     if r.error_type is ErrorType.UER]
        tdiffs = _consecutive_diffs(uer_times)
        t_lo, t_hi, t_mean = _stats_min_max_avg(tdiffs)
        trigger_time = history[-1].timestamp
        prior_times = [r.timestamp for r in history[:-1]]
        since_last = (trigger_time - prior_times[-1]) if prior_times else MISSING
        totals = [float(len(rows[ErrorType.CE])),
                  float(len(rows[ErrorType.UEO])),
                  float(len(rows[ErrorType.UER])), float(len(history))]

        matrix = np.empty((window.n_blocks, self.n_features),
                          dtype=np.float64)
        window_lo = last_uer_row - window.half_window
        window_hi = last_uer_row + window.half_window

        def count_in(kind: ErrorType, lo: float, hi: float) -> float:
            return float(sum(1 for r in rows[kind] if lo <= r < hi))

        window_counts = [count_in(k, window_lo, window_hi)
                         for k in (ErrorType.CE, ErrorType.UEO,
                                   ErrorType.UER)]
        for block in range(window.n_blocks):
            start, end = window.block_range(last_uer_row, block,
                                            self.total_rows)
            center = (start + end) / 2.0
            offset = center - last_uer_row
            below = center < last_uer_row
            side_lo, side_hi = ((window_lo, last_uer_row) if below
                                else (last_uer_row, window_hi))
            block_counts = [count_in(k, start, end)
                            for k in (ErrorType.CE, ErrorType.UEO,
                                      ErrorType.UER)]
            side_counts = [count_in(k, side_lo, side_hi)
                           for k in (ErrorType.CE, ErrorType.UEO,
                                     ErrorType.UER)]
            d_uer = (float(np.abs(uer_arr - center).min()) if uer_arr.size
                     else MISSING)
            d_ce = (float(np.abs(ce_arr - center).min()) if ce_arr.size
                    else MISSING)
            d_centroid = (abs(center - centroid) if centroid != MISSING
                          else MISSING)
            d_forward = abs(center - (last_uer_row + last_step))
            d_backward = abs(center - (last_uer_row - last_step))
            matrix[block] = (
                [float(block), offset, abs(offset)]
                + block_counts + side_counts + window_counts
                + [d_uer, d_ce, d_centroid,
                   uer_std, uer_span, gap_small, gap_large,
                   last_step, abs(last_step),
                   d_forward, d_backward,
                   lattice_residual(abs(offset), last_step),
                   lattice_residual(abs(offset), prev_step),
                   step_regularity, steps_same_direction,
                   t_lo, t_hi, t_mean, since_last]
                + totals)
        return matrix

    def block_labels(self, last_uer_row: int, trigger_time: float,
                     future_uer_rows: Sequence[Tuple[float, int]]
                     ) -> np.ndarray:
        """Ground-truth block labels: does a future UER land in each block?

        Args:
            future_uer_rows: ``(first_uer_time, row)`` pairs with
                ``first_uer_time > trigger_time``.
        """
        labels = np.zeros(self.window.n_blocks, dtype=bool)
        for when, row in future_uer_rows:
            if when <= trigger_time:
                continue
            block = self.window.block_of_row(last_uer_row, row)
            if block >= 0:
                labels[block] = True
        return labels
