"""Failure-pattern classification (Section IV-C).

Wraps the three tree-based model families the paper evaluates — Random
Forest, XGBoost and LightGBM — behind one interface keyed by the names
used in Table III.  Hyperparameters follow the libraries' common defaults
scaled to the ~1k-bank dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.features import BankPatternFeaturizer
from repro.faults.types import FailurePattern
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBClassifier
from repro.ml.lgbm import LGBMClassifier
from repro.telemetry.events import ErrorRecord

#: Table III model names -> constructor.
MODEL_NAMES = ("LightGBM", "XGBoost", "Random Forest")


def make_model(name: str, random_state: Optional[int] = 0,
               task: str = "pattern", n_jobs: Optional[int] = None):
    """Instantiate one of the paper's three model families by name.

    Args:
        task: ``"pattern"`` (bank classification, ~1k samples x 40
            features) or ``"blocks"`` (cross-row prediction, ~10k heavily
            imbalanced samples — deeper forests, more rounds).
        n_jobs: training worker processes (``None``/``1`` = serial,
            ``-1`` = all cores); never changes the fitted model — see
            :mod:`repro.ml.parallel`.
    """
    if task not in ("pattern", "blocks"):
        raise ValueError(f"unknown task: {task!r}")
    deep = task == "blocks"
    if name == "Random Forest":
        return RandomForestClassifier(
            n_estimators=160 if deep else 150,
            max_depth=None if deep else 12,
            min_samples_leaf=2,
            max_features="sqrt", class_weight="balanced",
            random_state=random_state, n_jobs=n_jobs)
    if name == "XGBoost":
        return XGBClassifier(
            n_estimators=150 if deep else 120, learning_rate=0.1,
            max_depth=6 if deep else 5,
            reg_lambda=1.0, min_samples_leaf=2, subsample=0.9,
            colsample=0.8, random_state=random_state, n_jobs=n_jobs)
    if name == "LightGBM":
        return LGBMClassifier(
            n_estimators=150 if deep else 120, learning_rate=0.1,
            num_leaves=63 if deep else 31,
            min_child_samples=5, feature_fraction=0.8,
            random_state=random_state, n_jobs=n_jobs)
    raise ValueError(f"unknown model name: {name!r}; "
                     f"expected one of {MODEL_NAMES}")


class FailurePatternClassifier:
    """Stage-2 of Cordial: classify a bank's failure pattern at trigger time.

    Args:
        model_name: ``"Random Forest"`` (best in the paper), ``"XGBoost"``
            or ``"LightGBM"``.
        featurizer: the Section IV-B featurizer (injected for ablations).
        random_state: seed forwarded to the model.
        n_jobs: training worker processes forwarded to the model; never
            changes the fit.
    """

    def __init__(self, model_name: str = "Random Forest",
                 featurizer: Optional[BankPatternFeaturizer] = None,
                 random_state: Optional[int] = 0,
                 n_jobs: Optional[int] = None) -> None:
        self.model_name = model_name
        self.featurizer = featurizer or BankPatternFeaturizer()
        self.model = make_model(model_name, random_state, n_jobs=n_jobs)
        self._fitted = False

    def fit(self, histories: Sequence[Sequence[ErrorRecord]],
            patterns: Sequence[FailurePattern]
            ) -> "FailurePatternClassifier":
        """Train on bank-history snapshots and their pattern labels."""
        if len(histories) != len(patterns):
            raise ValueError("histories and patterns must align")
        if not histories:
            raise ValueError("cannot fit on an empty training set")
        X = self.featurizer.extract_many(histories)
        y = np.asarray([p.value for p in patterns])
        self.model.fit(X, y)
        self._fitted = True
        return self

    def predict(self, history: Sequence[ErrorRecord]) -> FailurePattern:
        """Classify one bank-history snapshot."""
        return self.predict_many([history])[0]

    def predict_many(self, histories: Sequence[Sequence[ErrorRecord]]
                     ) -> List[FailurePattern]:
        """Classify many snapshots at once."""
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        X = self.featurizer.extract_many(histories)
        return [FailurePattern(v) for v in self.model.predict(X)]

    def predict_proba_many(self, histories: Sequence[Sequence[ErrorRecord]]
                           ) -> Dict[FailurePattern, np.ndarray]:
        """Per-pattern probabilities, keyed by pattern."""
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        X = self.featurizer.extract_many(histories)
        proba = self.model.predict_proba(X)
        return {FailurePattern(label): proba[:, i]
                for i, label in enumerate(self.model.classes_)}

    @property
    def feature_importances(self) -> Dict[str, float]:
        """Feature name -> normalised split-gain importance."""
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        names = self.featurizer.feature_names()
        return dict(zip(names, self.model.feature_importances_.tolist()))
