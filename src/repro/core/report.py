"""Markdown evaluation reports for operators.

Turns a :class:`~repro.core.pipeline.CordialEvaluation` (plus optional
baseline and cost parameters) into a self-contained markdown document —
the artefact an operator attaches to a deployment review.  Pure string
assembly; no I/O besides an optional write helper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.costmodel import CostParams, price_result
from repro.core.pipeline import CordialEvaluation
from repro.faults.types import FailurePattern


def _pct(value: float) -> str:
    return f"{value:.2%}"


def render_markdown_report(evaluation: CordialEvaluation,
                           baseline: Optional[CordialEvaluation] = None,
                           cost_params: Optional[CostParams] = None,
                           title: str = "Cordial evaluation report") -> str:
    """Render one evaluation (optionally vs a baseline) as markdown."""
    lines = [f"# {title}", ""]
    lines += [f"Model family: **{evaluation.model_name}**",
              f"Test triggers: {evaluation.n_test_triggers} banks "
              f"({evaluation.n_crossrow_banks} received cross-row "
              "predictions)", ""]

    # -- pattern classification ------------------------------------------
    lines += ["## Failure-pattern classification", "",
              "| Pattern | Precision | Recall | F1 | Support |",
              "|---|---|---|---|---|"]
    for pattern in (FailurePattern.SINGLE_ROW, FailurePattern.DOUBLE_ROW,
                    FailurePattern.SCATTERED):
        s = evaluation.pattern_scores[pattern]
        lines.append(f"| {pattern.label} | {s.precision:.3f} | "
                     f"{s.recall:.3f} | {s.f1:.3f} | {s.support} |")
    w = evaluation.pattern_weighted
    lines.append(f"| **Weighted average** | {w.precision:.3f} | "
                 f"{w.recall:.3f} | {w.f1:.3f} | {w.support} |")
    lines.append("")

    # -- cross-row prediction ----------------------------------------------
    b = evaluation.block_scores
    lines += ["## Cross-row block prediction", "",
              f"- precision: **{b.precision:.3f}**",
              f"- recall: **{b.recall:.3f}**",
              f"- F1: **{b.f1:.3f}** over {b.support} positive blocks", ""]

    # -- isolation coverage ---------------------------------------------------
    icr = evaluation.icr
    lines += ["## Isolation coverage", "",
              f"- ICR: **{_pct(icr.icr)}** "
              f"({icr.covered_rows}/{icr.total_rows} UER rows preempted)",
              f"- via cross-row row sparing: "
              f"{_pct(icr.icr_row_sparing_only)}",
              f"- isolation cost: {icr.spared_rows} spare rows, "
              f"{icr.spared_banks} retired banks", ""]
    if baseline is not None:
        base_icr = baseline.icr
        lines += ["### vs Neighbor-Rows baseline", "",
                  f"- baseline ICR: {_pct(base_icr.icr)} "
                  f"(block F1 {baseline.block_scores.f1:.3f})"]
        if base_icr.icr > 0:
            improvement = (icr.icr - base_icr.icr) / base_icr.icr
            lines.append(f"- relative ICR improvement: "
                         f"**{improvement:+.1%}**")
        if baseline.block_scores.f1 > 0:
            f1_gain = (b.f1 - baseline.block_scores.f1) \
                / baseline.block_scores.f1
            lines.append(f"- relative F1 improvement: **{f1_gain:+.1%}**")
        lines.append("")

    # -- economics ------------------------------------------------------------------
    if cost_params is not None:
        cost = price_result(icr, cost_params)
        lines += ["## Cost model", "",
                  f"- isolation spending: {cost.isolation_cost:,.0f} units",
                  f"- residual failure impact: "
                  f"{cost.failure_cost:,.0f} units",
                  f"- avoided failure impact: "
                  f"{cost.avoided_failure_cost:,.0f} units",
                  f"- **net benefit: {cost.net_benefit:,.0f} units**", ""]
        if baseline is not None:
            base_cost = price_result(baseline.icr, cost_params)
            delta = cost.net_benefit - base_cost.net_benefit
            lines.append(f"Net benefit vs baseline: **{delta:+,.0f} "
                         "units**")
            lines.append("")
    return "\n".join(lines)


def write_markdown_report(evaluation: CordialEvaluation,
                          destination: Union[str, Path],
                          baseline: Optional[CordialEvaluation] = None,
                          cost_params: Optional[CostParams] = None,
                          title: str = "Cordial evaluation report") -> Path:
    """Render and write the report; returns the path."""
    path = Path(destination)
    path.write_text(render_markdown_report(evaluation, baseline,
                                           cost_params, title),
                    encoding="utf-8")
    return path
