"""Exact (sort-based) CART decision trees.

This is the reference tree implementation: split points are found by
sorting each candidate feature inside each node and scanning every
boundary between distinct values — the classic CART algorithm.  The
histogram growers in :mod:`repro.ml._hist` trade this exactness for speed;
unit tests cross-check them against these trees.

Both estimators follow the familiar ``fit`` / ``predict`` /
``predict_proba`` protocol with ``sample_weight`` support and per-split
feature subsampling (the ingredient Random Forests need).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

_LEAF = -1


def resolve_max_features(max_features: Union[None, str, int, float],
                         n_features: int) -> int:
    """Number of features examined per split.

    Accepts ``None`` (all), ``"sqrt"``, ``"log2"``, an int count or a float
    fraction — the same convention scikit-learn and the boosting libraries
    use.
    """
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        raise ValueError(f"unknown max_features string: {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        return max(1, int(round(max_features * n_features)))
    if isinstance(max_features, (int, np.integer)):
        if not 1 <= max_features <= n_features:
            raise ValueError(
                f"int max_features must be in [1, {n_features}]")
        return int(max_features)
    raise TypeError(f"unsupported max_features: {max_features!r}")


@dataclass
class _Nodes:
    """Array-of-structs tree storage shared by both estimators."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[np.ndarray] = field(default_factory=list)

    def add(self, value: np.ndarray) -> int:
        """Append a leaf node carrying ``value``; returns its id."""
        self.feature.append(_LEAF)
        self.threshold.append(np.nan)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        return len(self.feature) - 1

    def make_split(self, node: int, feature: int, threshold: float,
                   left: int, right: int) -> None:
        """Turn leaf ``node`` into an internal node."""
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right

    def __len__(self) -> int:
        return len(self.feature)


def _class_impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of one or many nodes given class-weight rows.

    Args:
        counts: (..., n_classes) weighted class counts.
        criterion: ``"gini"`` or ``"entropy"``.
    Returns impurity with the leading shape of ``counts``.
    """
    total = counts.sum(axis=-1, keepdims=True)
    safe_total = np.where(total > 0, total, 1.0)
    p = counts / safe_total
    if criterion == "gini":
        impurity = 1.0 - np.square(p).sum(axis=-1)
    elif criterion == "entropy":
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
        impurity = -(p * logs).sum(axis=-1)
    else:
        raise ValueError(f"unknown criterion: {criterion!r}")
    return np.where(total.squeeze(-1) > 0, impurity, 0.0)


class _BaseExactTree:
    """Shared recursion for exact trees; subclasses define split scoring."""

    def __init__(self, max_depth: Optional[int], min_samples_split: int,
                 min_samples_leaf: int, min_impurity_decrease: float,
                 max_features: Union[None, str, int, float],
                 random_state: Optional[int]) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if min_impurity_decrease < 0:
            raise ValueError("min_impurity_decrease must be >= 0")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: Optional[_Nodes] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # -- subclass hooks -----------------------------------------------------
    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        raise NotImplementedError

    def _split_candidates(self, values: np.ndarray, y: np.ndarray,
                          w: np.ndarray):
        """Return (positions, gains, thresholds) for one sorted feature.

        ``positions`` are left-side sizes; ``gains`` are weighted impurity
        decreases.  Subclasses implement criterion-specific scoring.
        """
        raise NotImplementedError

    # -- core recursion ------------------------------------------------------
    def _fit_arrays(self, X: np.ndarray, y: np.ndarray,
                    sample_weight: Optional[np.ndarray]) -> None:
        n_samples, n_features = X.shape
        if sample_weight is None:
            w = np.ones(n_samples, dtype=np.float64)
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (n_samples,):
                raise ValueError("sample_weight shape mismatch")
            if np.any(w < 0):
                raise ValueError("sample_weight must be non-negative")
        self.n_features_ = n_features
        self._nodes = _Nodes()
        self._importance = np.zeros(n_features, dtype=np.float64)
        rng = np.random.default_rng(self.random_state)
        k = resolve_max_features(self.max_features, n_features)
        root_idx = np.arange(n_samples)
        self._grow(X, y, w, root_idx, depth=0, rng=rng, n_candidates=k)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance)

    def _grow(self, X: np.ndarray, y: np.ndarray, w: np.ndarray,
              idx: np.ndarray, depth: int, rng: np.random.Generator,
              n_candidates: int) -> int:
        node = self._nodes.add(self._leaf_value(y[idx], w[idx]))
        n_node = idx.size
        if (n_node < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)):
            return node
        impurity = self._node_impurity(y[idx], w[idx])
        if impurity <= 1e-12:
            return node

        features = np.arange(self.n_features_)
        if n_candidates < self.n_features_:
            features = rng.choice(self.n_features_, size=n_candidates,
                                  replace=False)
        best_gain = 0.0
        best = None
        for j in features:
            values = X[idx, j]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            positions, gains, thresholds = self._split_candidates(
                sorted_values, y[idx][order], w[idx][order])
            if positions.size == 0:
                continue
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                best = (int(j), float(thresholds[pick]), order,
                        int(positions[pick]))
        if best is None or best_gain < self.min_impurity_decrease:
            return node

        feature, threshold, order, position = best
        left_idx = idx[order[:position]]
        right_idx = idx[order[position:]]
        self._importance[feature] += best_gain
        left = self._grow(X, y, w, left_idx, depth + 1, rng, n_candidates)
        right = self._grow(X, y, w, right_idx, depth + 1, rng, n_candidates)
        self._nodes.make_split(node, feature, threshold, left, right)
        return node

    # -- prediction -----------------------------------------------------------
    def _decision_values(self, X: np.ndarray) -> np.ndarray:
        """Route every sample to its leaf and stack the leaf values."""
        if self._nodes is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be (n, {self.n_features_}), got {X.shape}")
        nodes = self._nodes
        out = np.empty((X.shape[0],) + nodes.value[0].shape, dtype=np.float64)
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if nodes.feature[node] == _LEAF:
                out[idx] = nodes.value[node]
                continue
            mask = X[idx, nodes.feature[node]] <= nodes.threshold[node]
            stack.append((nodes.left[node], idx[mask]))
            stack.append((nodes.right[node], idx[~mask]))
        return out

    @property
    def node_count(self) -> int:
        """Total number of nodes (internal + leaves)."""
        if self._nodes is None:
            raise RuntimeError("tree is not fitted")
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root-only tree has depth 0)."""
        if self._nodes is None:
            raise RuntimeError("tree is not fitted")
        nodes = self._nodes
        depths = {0: 0}
        best = 0
        for node in range(len(nodes)):
            if nodes.feature[node] == _LEAF:
                continue
            for child in (nodes.left[node], nodes.right[node]):
                depths[child] = depths[node] + 1
                best = max(best, depths[child])
        return best


class DecisionTreeClassifier(_BaseExactTree):
    """Exact CART classifier with gini or entropy impurity.

    Example:
        >>> model = DecisionTreeClassifier(max_depth=3, random_state=0)
        >>> _ = model.fit([[0.0], [1.0], [2.0], [3.0]], [0, 0, 1, 1])
        >>> list(model.predict([[0.5], [2.5]]))
        [0, 1]
    """

    def __init__(self, criterion: str = "gini",
                 max_depth: Optional[int] = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 min_impurity_decrease: float = 0.0,
                 max_features: Union[None, str, int, float] = None,
                 random_state: Optional[int] = None) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         min_impurity_decrease, max_features, random_state)
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion: {criterion!r}")
        self.criterion = criterion
        self.classes_: Optional[np.ndarray] = None
        self._n_classes = 0

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Fit the tree on features ``X`` and integer/str labels ``y``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-d with one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self._n_classes = len(self.classes_)
        self._fit_arrays(X, encoded.astype(np.int64), sample_weight)
        return self

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, weights=w, minlength=self._n_classes)
        total = counts.sum()
        if total <= 0:
            return np.full(self._n_classes, 1.0 / self._n_classes)
        return counts / total

    def _node_impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        counts = np.bincount(y, weights=w, minlength=self._n_classes)
        return float(_class_impurity(counts, self.criterion))

    def _split_candidates(self, values, y, w):
        n = values.size
        onehot = np.zeros((n, self._n_classes), dtype=np.float64)
        onehot[np.arange(n), y] = w
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        total_weight = total.sum()

        boundaries = np.nonzero(np.diff(values) > 0)[0] + 1  # left sizes
        min_leaf = self.min_samples_leaf
        boundaries = boundaries[(boundaries >= min_leaf)
                                & (boundaries <= n - min_leaf)]
        if boundaries.size == 0:
            return boundaries, np.empty(0), np.empty(0)
        left = cum[boundaries - 1]
        right = total[None, :] - left
        wl = left.sum(axis=1)
        wr = right.sum(axis=1)
        parent_impurity = _class_impurity(total, self.criterion)
        child = (wl * _class_impurity(left, self.criterion)
                 + wr * _class_impurity(right, self.criterion))
        gains = parent_impurity * total_weight - child
        valid = (wl > 0) & (wr > 0)
        gains = np.where(valid, gains, -np.inf)
        thresholds = (values[boundaries - 1] + values[boundaries]) / 2.0
        return boundaries, gains, thresholds

    def predict_proba(self, X) -> np.ndarray:
        """Per-class probability estimates (leaf class frequencies)."""
        return self._decision_values(X)

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(_BaseExactTree):
    """Exact CART regressor minimising weighted squared error."""

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 min_impurity_decrease: float = 0.0,
                 max_features: Union[None, str, int, float] = None,
                 random_state: Optional[int] = None) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         min_impurity_decrease, max_features, random_state)

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        """Fit the regression tree."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-d with one target per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._fit_arrays(X, y, sample_weight)
        return self

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        total = w.sum()
        mean = float(np.dot(y, w) / total) if total > 0 else 0.0
        return np.asarray([mean])

    def _node_impurity(self, y: np.ndarray, w: np.ndarray) -> float:
        total = w.sum()
        if total <= 0:
            return 0.0
        mean = np.dot(y, w) / total
        return float(np.dot(w, np.square(y - mean)) / total)

    def _split_candidates(self, values, y, w):
        n = values.size
        cw = np.cumsum(w)
        cwy = np.cumsum(w * y)
        cwyy = np.cumsum(w * y * y)
        total_w, total_wy, total_wyy = cw[-1], cwy[-1], cwyy[-1]

        boundaries = np.nonzero(np.diff(values) > 0)[0] + 1
        min_leaf = self.min_samples_leaf
        boundaries = boundaries[(boundaries >= min_leaf)
                                & (boundaries <= n - min_leaf)]
        if boundaries.size == 0:
            return boundaries, np.empty(0), np.empty(0)
        wl = cw[boundaries - 1]
        wyl = cwy[boundaries - 1]
        wyyl = cwyy[boundaries - 1]
        wr = total_w - wl
        wyr = total_wy - wyl
        wyyr = total_wyy - wyyl
        with np.errstate(divide="ignore", invalid="ignore"):
            sse_left = wyyl - np.square(wyl) / np.where(wl > 0, wl, 1.0)
            sse_right = wyyr - np.square(wyr) / np.where(wr > 0, wr, 1.0)
        sse_parent = total_wyy - total_wy ** 2 / total_w
        gains = sse_parent - (sse_left + sse_right)
        valid = (wl > 0) & (wr > 0)
        gains = np.where(valid, gains, -np.inf)
        thresholds = (values[boundaries - 1] + values[boundaries]) / 2.0
        return boundaries, gains, thresholds

    def predict(self, X) -> np.ndarray:
        """Predicted mean target per sample."""
        return self._decision_values(X)[:, 0]
