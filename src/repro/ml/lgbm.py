"""LightGBM-style gradient boosting: leaf-wise growth + GOSS.

Differs from :mod:`repro.ml.gbdt` in the two ways that define LightGBM:

* **leaf-wise (best-first) growth** bounded by ``num_leaves`` rather than
  level-wise growth bounded by depth — trees spend their leaf budget where
  the gain is;
* **GOSS** (Gradient-based One-Side Sampling): each round keeps the
  ``top_rate`` fraction of samples with the largest gradient magnitude,
  samples ``other_rate`` of the rest, and up-weights the sampled small
  gradients by ``(1 - top_rate) / other_rate`` to keep the split gains
  unbiased.

Both models share the quantile-binned histogram split search.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml._hist import HistTree, TreeParams
from repro.ml.gbdt import _sigmoid, _softmax
from repro.ml.parallel import (BoostingPool, RoundSpec, RoundTask,
                               resolve_n_jobs)


class LGBMClassifier:
    """Leaf-wise Newton-boosted classifier.

    Args:
        n_estimators: boosting rounds.
        learning_rate: shrinkage per round.
        num_leaves: leaf budget per tree (LightGBM default 31).
        max_depth: optional extra depth cap (``None`` = unlimited).
        min_child_samples: minimum samples per leaf.
        reg_lambda: L2 regularisation of leaf values.
        min_split_gain: minimum gain to accept a split.
        feature_fraction: features examined per split.
        goss: enable Gradient-based One-Side Sampling.
        top_rate / other_rate: GOSS retention fractions.
        max_bins: histogram resolution.
        random_state: seed for sampling.  Every boosting round draws from
            its own ``SeedSequence`` child (see :mod:`repro.ml.parallel`),
            so the fitted ensemble is bit-identical for every ``n_jobs``.
        n_jobs: worker processes growing a round's per-class trees
            (``None``/``1`` = serial, ``-1`` = all cores).  Rounds remain
            sequential, so parallelism only pays off in multiclass mode;
            the result never depends on it.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 num_leaves: int = 31, max_depth: Optional[int] = None,
                 min_child_samples: int = 20, reg_lambda: float = 1.0,
                 min_split_gain: float = 0.0, feature_fraction: float = 1.0,
                 goss: bool = False, top_rate: float = 0.2,
                 other_rate: float = 0.1, max_bins: int = 255,
                 random_state: Optional[int] = None,
                 n_jobs: Optional[int] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if num_leaves < 2:
            raise ValueError("num_leaves must be >= 2")
        if goss and not (0.0 < top_rate < 1.0 and 0.0 < other_rate
                         and top_rate + other_rate <= 1.0):
            raise ValueError("invalid GOSS rates")
        resolve_n_jobs(n_jobs)  # validate eagerly
        self.n_jobs = n_jobs
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.num_leaves = num_leaves
        self.max_depth = max_depth
        self.min_child_samples = min_child_samples
        self.reg_lambda = reg_lambda
        self.min_split_gain = min_split_gain
        self.feature_fraction = feature_fraction
        self.goss = goss
        self.top_rate = top_rate
        self.other_rate = other_rate
        self.max_bins = max_bins
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self.trees_: List[List[HistTree]] = []
        self._mapper: Optional[BinMapper] = None
        self.feature_importances_: Optional[np.ndarray] = None

    @property
    def _is_binary(self) -> bool:
        return len(self.classes_) == 2

    def _goss_sample(self, grad_matrix: np.ndarray,
                     rng: np.random.Generator) -> tuple:
        """GOSS row selection.

        Args:
            grad_matrix: per-sample gradient magnitudes (summed over classes
                in multiclass mode).
        Returns ``(sample_idx, multiplier)`` where ``multiplier`` scales the
        gradients/hessians of the sampled small-gradient rows.
        """
        n = grad_matrix.shape[0]
        n_top = max(1, int(round(self.top_rate * n)))
        n_other = max(1, int(round(self.other_rate * n)))
        order = np.argsort(-grad_matrix)
        top_idx = order[:n_top]
        rest = order[n_top:]
        if rest.size <= n_other:
            other_idx = rest
            amplify = 1.0
        else:
            other_idx = rng.choice(rest, size=n_other, replace=False)
            amplify = (1.0 - self.top_rate) / self.other_rate
        multiplier = np.ones(n, dtype=np.float64)
        multiplier[other_idx] = amplify
        sample_idx = np.sort(np.concatenate([top_idx, other_idx]))
        return sample_idx, multiplier

    def fit(self, X, y, sample_weight=None) -> "LGBMClassifier":
        """Fit the boosted ensemble."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        encoded = encoded.astype(np.int64)
        n_samples, n_features = X.shape
        if sample_weight is None:
            weights = np.ones(n_samples, dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight shape mismatch")

        self._mapper = BinMapper(max_bins=self.max_bins)
        binned = self._mapper.fit_transform(X)
        n_bins = int(self._mapper.n_bins_.max())
        params = TreeParams(
            max_depth=self.max_depth,
            max_leaves=self.num_leaves,
            min_samples_leaf=self.min_child_samples,
            reg_lambda=self.reg_lambda,
            min_gain=self.min_split_gain,
            feature_fraction=self.feature_fraction,
        )
        round_seeds = np.random.SeedSequence(self.random_state).spawn(
            self.n_estimators)
        spec = RoundSpec(n_bins=n_bins, params=params, leafwise=True)
        importance = np.zeros(n_features, dtype=np.float64)
        self.trees_ = []

        n_classes = len(self.classes_)
        with BoostingPool(binned, n_jobs=resolve_n_jobs(self.n_jobs)) as pool:
            if self._is_binary:
                raw = np.zeros(n_samples, dtype=np.float64)
                target = encoded.astype(np.float64)
                for t in range(self.n_estimators):
                    prob = _sigmoid(raw)
                    grad = (prob - target) * weights
                    hess = np.maximum(prob * (1.0 - prob), 1e-16) * weights
                    goss_seed, tree_seed = round_seeds[t].spawn(2)
                    if self.goss:
                        sample_idx, mult = self._goss_sample(
                            np.abs(grad), np.random.default_rng(goss_seed))
                        grad_fit, hess_fit = grad * mult, hess * mult
                    else:
                        sample_idx, grad_fit, hess_fit = None, grad, hess
                    (tree, pred), = pool.grow_round(spec, [RoundTask(
                        class_index=0, seed=tree_seed, grad=grad_fit,
                        hess=hess_fit, sample_idx=sample_idx)])
                    tree.accumulate_importance(importance)
                    raw += self.learning_rate * pred
                    self.trees_.append([tree])
            else:
                raw = np.zeros((n_samples, n_classes), dtype=np.float64)
                onehot = np.zeros((n_samples, n_classes), dtype=np.float64)
                onehot[np.arange(n_samples), encoded] = 1.0
                for t in range(self.n_estimators):
                    prob = _softmax(raw)
                    grads = (prob - onehot) * weights[:, None]
                    hesses = np.maximum(
                        prob * (1.0 - prob), 1e-16) * weights[:, None]
                    children = round_seeds[t].spawn(1 + n_classes)
                    if self.goss:
                        sample_idx, mult = self._goss_sample(
                            np.abs(grads).sum(axis=1),
                            np.random.default_rng(children[0]))
                    else:
                        sample_idx, mult = None, None
                    tasks = []
                    for k in range(n_classes):
                        grad, hess = grads[:, k], hesses[:, k]
                        if mult is not None:
                            grad, hess = grad * mult, hess * mult
                        tasks.append(RoundTask(
                            class_index=k, seed=children[1 + k], grad=grad,
                            hess=hess, sample_idx=sample_idx))
                    round_trees: List[HistTree] = []
                    for k, (tree, pred) in enumerate(
                            pool.grow_round(spec, tasks)):
                        tree.accumulate_importance(importance)
                        raw[:, k] += self.learning_rate * pred
                        round_trees.append(tree)
                    self.trees_.append(round_trees)

        total = importance.sum()
        self.feature_importances_ = (
            importance / total if total > 0 else importance)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw boosted scores."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        binned = self._mapper.transform(X)
        if self._is_binary:
            raw = np.zeros(X.shape[0], dtype=np.float64)
            for (tree,) in self.trees_:
                raw += self.learning_rate * tree.predict_value(binned)[:, 0]
            return raw
        raw = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for round_trees in self.trees_:
            for k, tree in enumerate(round_trees):
                raw[:, k] += self.learning_rate * tree.predict_value(binned)[:, 0]
        return raw

    def predict_proba(self, X) -> np.ndarray:
        """Class probability estimates."""
        raw = self.decision_function(X)
        if self._is_binary:
            p1 = _sigmoid(raw)
            return np.column_stack([1.0 - p1, p1])
        return _softmax(raw)

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
