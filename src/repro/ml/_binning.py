"""Quantile binning of continuous features into small integer codes.

Histogram-based tree growing (used by the forest and both boosting
implementations) first maps every feature to at most ``max_bins`` integer
bins using per-feature quantile edges, exactly as LightGBM and XGBoost's
``hist`` method do.  Binning happens once per dataset; every subsequent
split search is a histogram accumulation instead of a sort.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class BinMapper:
    """Maps a float feature matrix to uint8/uint16 bin codes.

    Bins are chosen from quantiles of the *training* distribution; values
    outside the training range fall into the first or last bin.  NaNs are
    assigned a dedicated bin (the last one), mirroring LightGBM's default
    missing-value handling.
    """

    def __init__(self, max_bins: int = 255) -> None:
        if not 2 <= max_bins <= 65535:
            raise ValueError("max_bins must be in [2, 65535]")
        self.max_bins = max_bins
        self.edges_: Optional[list] = None
        self.n_bins_: Optional[np.ndarray] = None
        self.missing_bin_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.edges_ is not None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Compute per-feature bin edges from training data."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        n_features = X.shape[1]
        self.edges_ = []
        n_bins = np.empty(n_features, dtype=np.int64)
        missing_bin = np.empty(n_features, dtype=np.int64)
        for j in range(n_features):
            column = X[:, j]
            finite = column[np.isfinite(column)]
            if finite.size == 0:
                edges = np.empty(0, dtype=np.float64)
            else:
                distinct = np.unique(finite)
                if distinct.size <= self.max_bins - 1:
                    # One bin per distinct value: edges at midpoints.
                    edges = (distinct[:-1] + distinct[1:]) / 2.0
                else:
                    quantiles = np.linspace(0, 1, self.max_bins)[1:-1]
                    edges = np.unique(np.quantile(finite, quantiles))
            self.edges_.append(edges)
            # value bins: 0..len(edges); missing bin is one past that.
            n_value_bins = len(edges) + 1
            missing_bin[j] = n_value_bins
            n_bins[j] = n_value_bins + 1
        self.n_bins_ = n_bins
        self.missing_bin_ = missing_bin
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Bin a feature matrix using the fitted edges."""
        if not self.is_fitted:
            raise RuntimeError("BinMapper.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1]} features, mapper was fitted on "
                f"{len(self.edges_)}")
        dtype = np.uint16 if int(self.n_bins_.max()) > 256 else np.uint8
        binned = np.empty(X.shape, dtype=dtype)
        for j, edges in enumerate(self.edges_):
            column = X[:, j]
            codes = np.searchsorted(edges, column, side="right")
            codes = np.where(np.isfinite(column), codes, self.missing_bin_[j])
            binned[:, j] = codes.astype(dtype)
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its binned representation."""
        return self.fit(X).transform(X)

    def bin_upper_edges(self, feature: int) -> np.ndarray:
        """Upper value edge of each bin of ``feature`` (for diagnostics)."""
        if not self.is_fitted:
            raise RuntimeError("BinMapper not fitted")
        return np.asarray(self.edges_[feature])
