"""Permutation feature importance (model-agnostic).

Split-gain importances (``feature_importances_``) reflect what the trees
*used*; permutation importance measures what the model actually *needs*:
shuffle one feature column on held-out data and record the score drop.
Used to report which of the paper's feature families carry the cross-row
signal without retraining (complementing ablation A4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


def permutation_importance(model, X, y,
                           scorer: Optional[Callable] = None,
                           n_repeats: int = 5,
                           seed: Optional[int] = 0,
                           feature_names: Optional[Sequence[str]] = None
                           ) -> Dict[str, Dict[str, float]]:
    """Per-feature mean/std score drop under column permutation.

    Args:
        model: fitted estimator with ``predict`` (and the scorer's needs).
        scorer: ``scorer(model, X, y) -> float`` (higher is better);
            defaults to accuracy of ``model.predict``.
        n_repeats: permutations per feature.
        feature_names: labels for the result keys (defaults to ``f<i>``).

    Returns:
        ``{feature: {"mean": drop, "std": spread}}``, ordered by mean drop
        descending.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be 2-d and aligned with y")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    if scorer is None:
        def scorer(m, X_, y_):
            return float(np.mean(m.predict(X_) == y_))
    names = (list(feature_names) if feature_names is not None
             else [f"f{i}" for i in range(X.shape[1])])
    if len(names) != X.shape[1]:
        raise ValueError("feature_names must match X's width")

    rng = np.random.default_rng(seed)
    baseline = scorer(model, X, y)
    results: List[tuple] = []
    for j, name in enumerate(names):
        drops = np.empty(n_repeats)
        for r in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            drops[r] = baseline - scorer(model, shuffled, y)
        results.append((name, float(drops.mean()), float(drops.std())))
    results.sort(key=lambda item: -item[1])
    return {name: {"mean": mean, "std": std}
            for name, mean, std in results}


def grouped_permutation_importance(model, X, y,
                                   groups: Dict[str, Sequence[int]],
                                   scorer: Optional[Callable] = None,
                                   n_repeats: int = 5,
                                   seed: Optional[int] = 0
                                   ) -> Dict[str, Dict[str, float]]:
    """Permutation importance of *feature groups* (columns shuffled
    together — correlated features hide each other when shuffled one at a
    time).

    Args:
        groups: ``{group_name: column indices}``.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if scorer is None:
        def scorer(m, X_, y_):
            return float(np.mean(m.predict(X_) == y_))
    for name, columns in groups.items():
        for column in columns:
            if not 0 <= column < X.shape[1]:
                raise ValueError(f"group {name!r}: column {column} "
                                 "out of range")
    rng = np.random.default_rng(seed)
    baseline = scorer(model, X, y)
    results: List[tuple] = []
    for name, columns in groups.items():
        columns = list(columns)
        drops = np.empty(n_repeats)
        for r in range(n_repeats):
            shuffled = X.copy()
            permutation = rng.permutation(X.shape[0])
            shuffled[:, columns] = shuffled[permutation][:, columns]
            drops[r] = baseline - scorer(model, shuffled, y)
        results.append((name, float(drops.mean()), float(drops.std())))
    results.sort(key=lambda item: -item[1])
    return {name: {"mean": mean, "std": std}
            for name, mean, std in results}
