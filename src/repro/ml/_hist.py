"""Histogram-based tree growers.

Split search on pre-binned features: instead of sorting a node's samples
per feature (exact CART), accumulate per-(feature, bin) statistics with one
``bincount`` and scan bin boundaries.  This is the core trick of LightGBM
and of XGBoost's ``hist`` method, and it is what makes fitting hundreds of
trees on fleet-scale data tractable in pure Python.

Two growers live here:

* :func:`grow_classification_tree` — weighted-gini splits on class
  histograms, depth-wise growth (used by the Random Forest);
* :func:`grow_regression_tree` — Newton gain
  ``GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) - gamma`` on
  gradient/hessian histograms, with depth-wise (XGBoost-style) or
  leaf-wise best-first (LightGBM-style) growth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

_LEAF = -1


@dataclass(frozen=True)
class TreeParams:
    """Growth limits shared by both growers.

    Attributes:
        max_depth: maximum split depth (``None`` = unlimited).
        max_leaves: maximum number of leaves (``None`` = unlimited); the
            binding constraint for leaf-wise growth.
        min_samples_leaf: minimum (unweighted) samples in each child.
        min_gain: minimum split gain (on top of any gamma penalty).
        reg_lambda: L2 regularisation on leaf values (regression gain).
        gamma: per-split penalty subtracted from the Newton gain.
        min_child_weight: minimum hessian sum per child (regression).
        feature_fraction: fraction of features examined per split.
    """

    max_depth: Optional[int] = None
    max_leaves: Optional[int] = None
    min_samples_leaf: int = 1
    min_gain: float = 0.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 0.0
    feature_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if self.max_leaves is not None and self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2 or None")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if not 0.0 < self.feature_fraction <= 1.0:
            raise ValueError("feature_fraction must be in (0, 1]")
        if self.reg_lambda < 0 or self.gamma < 0 or self.min_child_weight < 0:
            raise ValueError("regularisers must be non-negative")


class HistTree:
    """A fitted tree over binned features.

    Splits compare bin codes: a sample goes left when
    ``binned[:, feature] <= bin_threshold``.
    """

    def __init__(self, value_shape: tuple) -> None:
        self.feature: List[int] = []
        self.bin_threshold: List[int] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[np.ndarray] = []
        self.value_shape = value_shape
        self.split_gains: dict = {}

    def add_leaf(self, value: np.ndarray) -> int:
        """Append a leaf; returns its node id."""
        self.feature.append(_LEAF)
        self.bin_threshold.append(-1)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(np.asarray(value, dtype=np.float64))
        return len(self.feature) - 1

    def make_split(self, node: int, feature: int, bin_threshold: int,
                   left: int, right: int, gain: float) -> None:
        """Turn leaf ``node`` into an internal node."""
        self.feature[node] = feature
        self.bin_threshold[node] = bin_threshold
        self.left[node] = left
        self.right[node] = right
        self.split_gains[node] = (feature, gain)

    def __len__(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for f in self.feature if f == _LEAF)

    def predict_value(self, binned: np.ndarray) -> np.ndarray:
        """Route binned samples to leaves; returns stacked leaf values."""
        n = binned.shape[0]
        out = np.empty((n,) + self.value_shape, dtype=np.float64)
        stack = [(0, np.arange(n))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if self.feature[node] == _LEAF:
                out[idx] = self.value[node]
                continue
            mask = binned[idx, self.feature[node]] <= self.bin_threshold[node]
            stack.append((self.left[node], idx[mask]))
            stack.append((self.right[node], idx[~mask]))
        return out

    def accumulate_importance(self, importance: np.ndarray) -> None:
        """Add this tree's split gains into a per-feature accumulator."""
        for feature, gain in self.split_gains.values():
            importance[feature] += gain


def _feature_subset(n_features: int, fraction: float,
                    rng: np.random.Generator) -> np.ndarray:
    if fraction >= 1.0:
        return np.arange(n_features)
    k = max(1, int(round(fraction * n_features)))
    return np.sort(rng.choice(n_features, size=k, replace=False))


# --------------------------------------------------------------------------
# Classification (gini) grower — depth-wise
# --------------------------------------------------------------------------

def _class_node_histograms(binned_node: np.ndarray, y_node: np.ndarray,
                           w_node: np.ndarray, n_classes: int,
                           n_bins: int) -> tuple:
    """Per-(feature, bin) class-weight and sample-count histograms.

    Returns ``(weights, counts)`` with shapes ``(d, n_bins, K)`` and
    ``(d, n_bins)``.  Built with one ``bincount`` per class — the key
    vectorisation that keeps per-node Python overhead constant.
    """
    n, d = binned_node.shape
    offsets = np.arange(d, dtype=np.int64) * n_bins
    weights = np.zeros((d, n_bins, n_classes), dtype=np.float64)
    counts = np.zeros((d, n_bins), dtype=np.float64)
    flat_all = (binned_node.astype(np.int64) + offsets).ravel()
    counts += np.bincount(flat_all, minlength=d * n_bins).reshape(d, n_bins)
    for k in range(n_classes):
        mask = y_node == k
        if not np.any(mask):
            continue
        flat = (binned_node[mask].astype(np.int64) + offsets).ravel()
        wk = np.repeat(w_node[mask], d)
        weights[:, :, k] = np.bincount(
            flat, weights=wk, minlength=d * n_bins).reshape(d, n_bins)
    return weights, counts


def _best_gini_split(weights: np.ndarray, counts: np.ndarray,
                     features: np.ndarray, min_samples_leaf: int) -> tuple:
    """Best (feature, bin_threshold, gain) over candidate features.

    ``gain`` is the weighted impurity decrease
    ``W * gini(parent) - WL * gini(left) - WR * gini(right)``; returns
    gain ``-inf`` when no valid split exists.
    """
    sub_w = weights[features]            # (f, B, K)
    sub_c = counts[features]             # (f, B)
    left_w = np.cumsum(sub_w, axis=1)[:, :-1, :]     # (f, B-1, K)
    left_c = np.cumsum(sub_c, axis=1)[:, :-1]
    total_w = sub_w.sum(axis=1)                       # (f, K)
    total_c = sub_c.sum(axis=1)                       # (f,)
    right_w = total_w[:, None, :] - left_w
    right_c = total_c[:, None] - left_c

    wl = left_w.sum(axis=2)
    wr = right_w.sum(axis=2)
    w_tot = total_w.sum(axis=1)                       # (f,)
    # sum of squared class weights; gini decrease in "sum sq / W" form.
    with np.errstate(divide="ignore", invalid="ignore"):
        score_left = np.square(left_w).sum(axis=2) / np.where(wl > 0, wl, 1.0)
        score_right = np.square(right_w).sum(axis=2) / np.where(wr > 0, wr, 1.0)
        score_parent = (np.square(total_w).sum(axis=1)
                        / np.where(w_tot > 0, w_tot, 1.0))
    gains = score_left + score_right - score_parent[:, None]
    valid = ((left_c >= min_samples_leaf)
             & (right_c >= min_samples_leaf)
             & (wl > 0) & (wr > 0))
    gains = np.where(valid, gains, -np.inf)
    if not np.any(np.isfinite(gains)) or gains.size == 0:
        return -1, -1, -np.inf
    flat_best = int(np.argmax(gains))
    f_local, threshold = divmod(flat_best, gains.shape[1])
    return int(features[f_local]), int(threshold), float(gains[f_local, threshold])


def grow_classification_tree(binned: np.ndarray, y: np.ndarray,
                             w: np.ndarray, n_classes: int, n_bins: int,
                             params: TreeParams,
                             rng: np.random.Generator) -> HistTree:
    """Grow a depth-wise gini tree on binned features.

    Leaf values are weighted class-frequency vectors (probabilities).
    """
    tree = HistTree(value_shape=(n_classes,))

    def leaf_value(idx: np.ndarray) -> np.ndarray:
        counts = np.bincount(y[idx], weights=w[idx], minlength=n_classes)
        total = counts.sum()
        if total <= 0:
            return np.full(n_classes, 1.0 / n_classes)
        return counts / total

    def grow(idx: np.ndarray, depth: int) -> int:
        node = tree.add_leaf(leaf_value(idx))
        if idx.size < 2 * params.min_samples_leaf:
            return node
        if params.max_depth is not None and depth >= params.max_depth:
            return node
        if np.all(y[idx] == y[idx[0]]):
            return node
        features = _feature_subset(binned.shape[1], params.feature_fraction,
                                   rng)
        weights, counts = _class_node_histograms(
            binned[idx], y[idx], w[idx], n_classes, n_bins)
        feature, threshold, gain = _best_gini_split(
            weights, counts, features, params.min_samples_leaf)
        if feature < 0 or gain <= params.min_gain:
            return node
        mask = binned[idx, feature] <= threshold
        left = grow(idx[mask], depth + 1)
        right = grow(idx[~mask], depth + 1)
        tree.make_split(node, feature, threshold, left, right, gain)
        return node

    grow(np.arange(binned.shape[0]), depth=0)
    return tree


# --------------------------------------------------------------------------
# Regression (Newton) grower — depth-wise or leaf-wise
# --------------------------------------------------------------------------

def _newton_node_histograms(binned_node: np.ndarray, grad: np.ndarray,
                            hess: np.ndarray, n_bins: int) -> tuple:
    """Per-(feature, bin) gradient, hessian and count histograms."""
    n, d = binned_node.shape
    offsets = np.arange(d, dtype=np.int64) * n_bins
    flat = (binned_node.astype(np.int64) + offsets).ravel()
    size = d * n_bins
    hist_g = np.bincount(flat, weights=np.repeat(grad, d),
                         minlength=size).reshape(d, n_bins)
    hist_h = np.bincount(flat, weights=np.repeat(hess, d),
                         minlength=size).reshape(d, n_bins)
    hist_c = np.bincount(flat, minlength=size).reshape(d, n_bins)
    return hist_g, hist_h, hist_c


def _best_newton_split(hist_g: np.ndarray, hist_h: np.ndarray,
                       hist_c: np.ndarray, features: np.ndarray,
                       params: TreeParams) -> tuple:
    """Best (feature, bin_threshold, gain) under the Newton objective."""
    g = hist_g[features]
    h = hist_h[features]
    c = hist_c[features]
    gl = np.cumsum(g, axis=1)[:, :-1]
    hl = np.cumsum(h, axis=1)[:, :-1]
    cl = np.cumsum(c, axis=1)[:, :-1]
    g_tot = g.sum(axis=1)
    h_tot = h.sum(axis=1)
    c_tot = c.sum(axis=1)
    gr = g_tot[:, None] - gl
    hr = h_tot[:, None] - hl
    cr = c_tot[:, None] - cl

    lam = params.reg_lambda
    with np.errstate(divide="ignore", invalid="ignore"):
        parent = np.square(g_tot) / (h_tot + lam)
        gains = (np.square(gl) / (hl + lam)
                 + np.square(gr) / (hr + lam)
                 - parent[:, None]) / 2.0 - params.gamma
    gains = np.where(np.isfinite(gains), gains, -np.inf)
    valid = ((cl >= params.min_samples_leaf)
             & (cr >= params.min_samples_leaf)
             & (hl >= params.min_child_weight)
             & (hr >= params.min_child_weight))
    gains = np.where(valid, gains, -np.inf)
    if gains.size == 0 or not np.any(np.isfinite(gains)):
        return -1, -1, -np.inf
    flat_best = int(np.argmax(gains))
    f_local, threshold = divmod(flat_best, gains.shape[1])
    return int(features[f_local]), int(threshold), float(gains[f_local, threshold])


def _newton_leaf_value(grad_sum: float, hess_sum: float,
                       reg_lambda: float) -> float:
    """Optimal leaf weight ``-G / (H + lambda)``."""
    return -grad_sum / (hess_sum + reg_lambda)


def grow_regression_tree(binned: np.ndarray, grad: np.ndarray,
                         hess: np.ndarray, n_bins: int, params: TreeParams,
                         rng: np.random.Generator,
                         leafwise: bool = False,
                         sample_idx: Optional[np.ndarray] = None) -> HistTree:
    """Grow one boosting tree on (grad, hess) with the Newton objective.

    Args:
        leafwise: when True grow best-first by gain until ``max_leaves``
            (LightGBM); otherwise grow depth-first to ``max_depth``
            (XGBoost's level-wise policy — the resulting tree is identical
            to level-order growth because every admissible split is taken).
        sample_idx: optional row subset to train on (GOSS / subsampling).
    """
    tree = HistTree(value_shape=(1,))
    root_idx = (np.arange(binned.shape[0])
                if sample_idx is None else np.asarray(sample_idx))

    def leaf_value(idx: np.ndarray) -> np.ndarray:
        return np.asarray([_newton_leaf_value(
            float(grad[idx].sum()), float(hess[idx].sum()),
            params.reg_lambda)])

    def find_split(idx: np.ndarray):
        features = _feature_subset(binned.shape[1], params.feature_fraction,
                                   rng)
        hist_g, hist_h, hist_c = _newton_node_histograms(
            binned[idx], grad[idx], hess[idx], n_bins)
        return _best_newton_split(hist_g, hist_h, hist_c, features, params)

    if leafwise:
        max_leaves = params.max_leaves or 31
        counter = 0
        root = tree.add_leaf(leaf_value(root_idx))
        heap: list = []

        def push(node: int, idx: np.ndarray, depth: int) -> None:
            nonlocal counter
            if idx.size < 2 * params.min_samples_leaf:
                return
            if params.max_depth is not None and depth >= params.max_depth:
                return
            feature, threshold, gain = find_split(idx)
            if feature < 0 or gain <= params.min_gain:
                return
            heapq.heappush(heap, (-gain, counter,
                                  (node, idx, depth, feature, threshold)))
            counter += 1

        push(root, root_idx, 0)
        n_leaves = 1
        while heap and n_leaves < max_leaves:
            neg_gain, _, (node, idx, depth, feature, threshold) = (
                heapq.heappop(heap))
            mask = binned[idx, feature] <= threshold
            left_idx, right_idx = idx[mask], idx[~mask]
            left = tree.add_leaf(leaf_value(left_idx))
            right = tree.add_leaf(leaf_value(right_idx))
            tree.make_split(node, feature, threshold, left, right, -neg_gain)
            n_leaves += 1
            push(left, left_idx, depth + 1)
            push(right, right_idx, depth + 1)
        return tree

    def grow(idx: np.ndarray, depth: int) -> int:
        node = tree.add_leaf(leaf_value(idx))
        if idx.size < 2 * params.min_samples_leaf:
            return node
        if params.max_depth is not None and depth >= params.max_depth:
            return node
        feature, threshold, gain = find_split(idx)
        if feature < 0 or gain <= params.min_gain:
            return node
        mask = binned[idx, feature] <= threshold
        left = grow(idx[mask], depth + 1)
        right = grow(idx[~mask], depth + 1)
        tree.make_split(node, feature, threshold, left, right, gain)
        return node

    grow(root_idx, depth=0)
    return tree
