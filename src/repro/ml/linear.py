"""Logistic regression, from scratch (the linear baseline).

The paper motivates tree models by their fit for tabular error features;
a linear baseline quantifies how much of the signal is non-linear.  This
is a standard L2-regularised logistic regression trained by full-batch
Newton iterations (IRLS) with a gradient-descent fallback for
ill-conditioned steps — no external solver.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class StandardScaler:
    """Per-feature standardisation (mean 0, variance 1).

    Linear models need it; tree models do not.  Constant features map to
    zero instead of dividing by a zero scale.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and scale."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise ``X`` with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("StandardScaler not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform."""
        return self.fit(X).transform(X)


class LogisticRegressionClassifier:
    """L2-regularised logistic regression (binary and multinomial).

    Args:
        reg_lambda: L2 penalty on the weights (not the intercept).
        max_iter: Newton/IRLS iterations.
        tol: stop when the gradient norm falls below this.
        scale_features: standardise inputs internally (recommended; the
            error features span rows, counts and seconds).
    """

    def __init__(self, reg_lambda: float = 1.0, max_iter: int = 100,
                 tol: float = 1e-6, scale_features: bool = True) -> None:
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be >= 0")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.reg_lambda = reg_lambda
        self.max_iter = max_iter
        self.tol = tol
        self.scale_features = scale_features
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None       # (K or 1, d)
        self.intercept_: Optional[np.ndarray] = None  # (K or 1,)
        self._scaler: Optional[StandardScaler] = None
        self.n_iter_: int = 0

    # -- internals ----------------------------------------------------------
    def _prepare(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if self._scaler is not None:
            X = self._scaler.transform(X)
        return X

    def _fit_binary(self, X: np.ndarray, y: np.ndarray,
                    sample_weight: np.ndarray) -> None:
        n, d = X.shape
        w = np.zeros(d + 1)  # last entry = intercept
        Xb = np.hstack([X, np.ones((n, 1))])
        reg = np.full(d + 1, self.reg_lambda)
        reg[-1] = 0.0
        for iteration in range(self.max_iter):
            z = Xb @ w
            p = _sigmoid(z)
            gradient = Xb.T @ (sample_weight * (p - y)) + reg * w
            if np.linalg.norm(gradient) < self.tol * n:
                break
            h = sample_weight * np.maximum(p * (1 - p), 1e-9)
            hessian = (Xb * h[:, None]).T @ Xb + np.diag(reg + 1e-9)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = gradient / (np.abs(np.diag(hessian)) + 1.0)
            w = w - step
        self.n_iter_ = iteration + 1
        self.coef_ = w[None, :-1]
        self.intercept_ = w[None, -1]

    def _fit_multinomial(self, X: np.ndarray, encoded: np.ndarray,
                         sample_weight: np.ndarray, n_classes: int) -> None:
        # One-vs-rest Newton fits: simple, stable, adequate for the small
        # feature counts used here.
        coefs, intercepts = [], []
        for k in range(n_classes):
            self._fit_binary(X, (encoded == k).astype(float), sample_weight)
            coefs.append(self.coef_[0])
            intercepts.append(float(self.intercept_[0]))
        self.coef_ = np.vstack(coefs)
        self.intercept_ = np.asarray(intercepts)

    # -- public API ----------------------------------------------------------
    def fit(self, X, y, sample_weight=None) -> "LogisticRegressionClassifier":
        """Fit the model."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if sample_weight is None:
            sample_weight = np.ones(X.shape[0])
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != (X.shape[0],):
                raise ValueError("sample_weight shape mismatch")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        if self.scale_features:
            self._scaler = StandardScaler().fit(X)
            X = self._scaler.transform(X)
        if len(self.classes_) == 2:
            self._fit_binary(X, encoded.astype(float), sample_weight)
        else:
            self._fit_multinomial(X, encoded, sample_weight,
                                  len(self.classes_))
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw linear scores."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = self._prepare(X)
        scores = X @ self.coef_.T + self.intercept_
        if len(self.classes_) == 2:
            return scores[:, 0]
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities."""
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            p1 = _sigmoid(scores)
            return np.column_stack([1 - p1, p1])
        return _softmax(scores)

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
