"""Probability calibration: Platt scaling and isotonic regression.

The cross-row stage thresholds predicted probabilities, so calibration
matters: bagged forests are under-confident at the extremes and boosted
models drift with the loss.  Both classic calibrators are implemented from
scratch — Platt scaling as a 1-d logistic fit on the scores, isotonic
regression via the pool-adjacent-violators algorithm (PAVA).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PlattCalibrator:
    """Sigmoid calibration ``p = sigmoid(a * s + b)`` (Platt, 1999).

    Fit by Newton iterations on the calibration set's log-loss, with the
    usual Platt target smoothing to avoid saturated labels.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-9) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float = 1.0
        self.b_: float = 0.0
        self._fitted = False

    def fit(self, scores, labels) -> "PlattCalibrator":
        """Fit on held-out (score, binary label) pairs."""
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = np.asarray(labels, dtype=np.float64).ravel()
        if s.shape != y.shape:
            raise ValueError("scores and labels must align")
        if s.size == 0:
            raise ValueError("cannot calibrate on empty data")
        n_pos = float(y.sum())
        n_neg = float(y.size - n_pos)
        # Platt's smoothed targets.
        t = np.where(y > 0.5, (n_pos + 1) / (n_pos + 2), 1 / (n_neg + 2))

        def loss(a: float, b: float) -> float:
            z = np.clip(a * s + b, -35, 35)
            p = 1.0 / (1.0 + np.exp(-z))
            p = np.clip(p, 1e-12, 1 - 1e-12)
            return float(-np.sum(t * np.log(p) + (1 - t) * np.log(1 - p)))

        a, b = 1.0, float(-np.log((n_neg + 1) / (n_pos + 1)))
        current = loss(a, b)
        for _ in range(self.max_iter):
            z = a * s + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
            grad_a = float(np.dot(s, p - t))
            grad_b = float(np.sum(p - t))
            if abs(grad_a) + abs(grad_b) < self.tol * s.size:
                break
            w = np.maximum(p * (1 - p), 1e-12)
            haa = float(np.dot(w, s * s)) + 1e-10
            hab = float(np.dot(w, s))
            hbb = float(np.sum(w)) + 1e-10
            det = haa * hbb - hab * hab
            if abs(det) < 1e-18:
                break
            da = (hbb * grad_a - hab * grad_b) / det
            db = (haa * grad_b - hab * grad_a) / det
            # Backtracking line search: the pure Newton step diverges on
            # near-separable or low-variance score sets.
            step = 1.0
            improved = False
            for _halving in range(30):
                candidate = loss(a - step * da, b - step * db)
                if candidate < current:
                    a, b = a - step * da, b - step * db
                    current = candidate
                    improved = True
                    break
                step *= 0.5
            if not improved:
                break
        self.a_, self.b_ = a, b
        self._fitted = True
        return self

    def transform(self, scores) -> np.ndarray:
        """Calibrated probabilities for new scores."""
        if not self._fitted:
            raise RuntimeError("calibrator is not fitted")
        s = np.asarray(scores, dtype=np.float64).ravel()
        z = self.a_ * s + self.b_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class IsotonicCalibrator:
    """Monotone (isotonic) calibration via pool-adjacent-violators.

    Produces a non-decreasing step function from scores to probabilities;
    new scores interpolate linearly between the learned steps.
    """

    def __init__(self) -> None:
        self.thresholds_: Optional[np.ndarray] = None
        self.values_: Optional[np.ndarray] = None

    def fit(self, scores, labels, sample_weight=None) -> "IsotonicCalibrator":
        """Fit on held-out (score, binary label) pairs."""
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = np.asarray(labels, dtype=np.float64).ravel()
        if s.shape != y.shape:
            raise ValueError("scores and labels must align")
        if s.size == 0:
            raise ValueError("cannot calibrate on empty data")
        if sample_weight is None:
            w = np.ones_like(s)
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
        order = np.argsort(s, kind="stable")
        s, y, w = s[order], y[order], w[order]

        # PAVA with weighted block means.
        block_value = list(y)
        block_weight = list(w)
        block_start = list(range(len(y)))
        i = 0
        while i < len(block_value) - 1:
            if block_value[i] > block_value[i + 1] + 1e-15:
                total = block_weight[i] + block_weight[i + 1]
                merged = (block_value[i] * block_weight[i]
                          + block_value[i + 1] * block_weight[i + 1]) / total
                block_value[i] = merged
                block_weight[i] = total
                del block_value[i + 1], block_weight[i + 1], block_start[i + 1]
                if i > 0:
                    i -= 1
            else:
                i += 1
        thresholds = []
        values = []
        starts = block_start + [len(s)]
        for b, value in enumerate(block_value):
            lo, hi = starts[b], starts[b + 1] - 1
            thresholds.append(float(s[lo]))
            values.append(float(value))
            if hi > lo:
                thresholds.append(float(s[hi]))
                values.append(float(value))
        self.thresholds_ = np.asarray(thresholds)
        self.values_ = np.clip(np.asarray(values), 0.0, 1.0)
        return self

    def transform(self, scores) -> np.ndarray:
        """Calibrated probabilities for new scores (linear interpolation,
        clamped at the ends)."""
        if self.thresholds_ is None:
            raise RuntimeError("calibrator is not fitted")
        s = np.asarray(scores, dtype=np.float64).ravel()
        return np.interp(s, self.thresholds_, self.values_)


def brier_score(probabilities, labels) -> float:
    """Mean squared error of probabilities vs binary outcomes."""
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    y = np.asarray(labels, dtype=np.float64).ravel()
    if p.shape != y.shape:
        raise ValueError("probabilities and labels must align")
    if p.size == 0:
        raise ValueError("empty inputs")
    return float(np.mean((p - y) ** 2))


def expected_calibration_error(probabilities, labels,
                               n_bins: int = 10) -> float:
    """ECE: weighted gap between confidence and accuracy per bin."""
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    y = np.asarray(labels, dtype=np.float64).ravel()
    if p.shape != y.shape:
        raise ValueError("probabilities and labels must align")
    if p.size == 0:
        raise ValueError("empty inputs")
    edges = np.linspace(0, 1, n_bins + 1)
    ece = 0.0
    for lo, hi in zip(edges, edges[1:]):
        mask = (p >= lo) & (p < hi) if hi < 1.0 else (p >= lo) & (p <= hi)
        if not np.any(mask):
            continue
        gap = abs(p[mask].mean() - y[mask].mean())
        ece += gap * mask.mean()
    return float(ece)
