"""Parallel model-training engine, bit-identical to serial by construction.

The tree growers in :mod:`repro.ml._hist` dominate every experiment table
and every serving-path retrain, and failure predictors must be retrained
frequently as error populations drift — so training speed is a fleet-scale
requirement, not a one-off cost.  This module applies the dataset layer's
parallelisation playbook (``repro.datasets.parallel``) to model fitting:

* **per-task seeding** — every tree (forest) or round-tree (boosting) gets
  its own ``numpy.random.SeedSequence`` child, so a grown tree is a pure
  function of ``(data, params, its seed)`` and never of which worker grew
  it, in what order, or how many workers there are.  The spawned
  derivation is canonical: the *serial* path runs the identical per-task
  functions with the identical seeds, so ``n_jobs`` can never change a
  fitted model by so much as a bit;
* **shared-memory data shipping** — the quantile-binned ``uint8/uint16``
  feature matrix (plus the forest's labels/weights) is published once per
  fit through ``multiprocessing.shared_memory`` and attached read-only by
  every worker, instead of being pickled into each task;
* **total-order merge** — workers return ``(index, result)`` pairs that
  the parent reassembles in task order before accumulating importances or
  updating boosted raw scores, so floating-point summation order matches
  the serial path exactly.

Seeding contract (mirrors the dataset layer's diagram)::

    RandomForestClassifier(random_state)
        SeedSequence(random_state).spawn(n_estimators)
        └── child t → tree t's bootstrap draw + feature subsampling

    XGBClassifier / LGBMClassifier(random_state)
        SeedSequence(random_state).spawn(n_estimators)
        └── child t → round t → spawn(1 + n_trees_in_round)
             ├── grandchild 0     → row sampling (subsample / GOSS)
             └── grandchild 1 + k → class-k tree's feature subsampling

Boosting rounds stay sequential (round ``t + 1``'s gradients depend on
round ``t``'s predictions); the parallel win there is the per-class trees
of a multiclass round, which are independent given the round's gradients.
The forest is embarrassingly parallel across all of its trees.

``tests/test_training_equivalence.py`` locks the ``n_jobs`` invariance
down to persisted-model bytes; ``benchmarks/test_perf_training.py``
records the speedup to ``BENCH_training.json``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml._hist import (HistTree, TreeParams, grow_classification_tree,
                            grow_regression_tree)

#: Task chunks per worker for the forest fan-out: enough slack that an
#: unlucky chunk (a few deep trees) does not serialise the pool's tail.
CHUNKS_PER_JOB = 4

#: Shared-memory offsets are aligned so every array view starts on a
#: boundary that satisfies any numpy dtype.
_ALIGN = 16


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a worker count.

    ``None``/``1`` mean serial, ``-1`` means one worker per CPU, any other
    positive integer is taken literally.
    """
    if n_jobs is None:
        return 1
    jobs = int(n_jobs)
    if jobs == -1:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("n_jobs must be a positive integer, -1, or None")
    return jobs


# --------------------------------------------------------------------------
# Shared-memory dataset shipping
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DatasetHandle:
    """Picklable descriptor of a published :class:`SharedDataset`.

    Attributes:
        shm_name: name of the backing shared-memory segment.
        arrays: ``{array name: (byte offset, shape, dtype string)}``.
    """

    shm_name: str
    arrays: Dict[str, Tuple[int, tuple, str]]


class SharedDataset:
    """Named arrays packed into one shared-memory segment.

    The parent publishes the fit-constant arrays (binned matrix, labels,
    weights) once; workers attach read-only views through the picklable
    :meth:`handle` instead of receiving a pickled copy per task.  Use as a
    context manager so the segment is always closed and unlinked.
    """

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        contiguous = {name: np.ascontiguousarray(a)
                      for name, a in arrays.items()}
        offsets: Dict[str, int] = {}
        cursor = 0
        for name, array in contiguous.items():
            cursor = -(-cursor // _ALIGN) * _ALIGN
            offsets[name] = cursor
            cursor += array.nbytes
        self._shm = shared_memory.SharedMemory(create=True,
                                               size=max(1, cursor))
        self._spec: Dict[str, Tuple[int, tuple, str]] = {}
        for name, array in contiguous.items():
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=self._shm.buf, offset=offsets[name])
            view[...] = array
            self._spec[name] = (offsets[name], tuple(array.shape),
                                array.dtype.str)

    def handle(self) -> DatasetHandle:
        """The picklable descriptor workers attach with."""
        return DatasetHandle(shm_name=self._shm.name, arrays=dict(self._spec))

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Worker-side attachment cache: one mapping per segment per process
#: (workers live exactly as long as their pool, so entries never go
#: stale).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(handle: DatasetHandle) -> Dict[str, np.ndarray]:
    """Attach (or reuse) a shared dataset; returns read-only views."""
    segment = _ATTACHED.get(handle.shm_name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=handle.shm_name)
        if multiprocessing.get_start_method(allow_none=False) != "fork":
            # Under spawn each worker has its own resource tracker, which
            # would otherwise try to unlink the parent-owned segment at
            # worker exit (and warn about a "leak").  Under fork the
            # tracker is shared and already knows the name.
            try:  # pragma: no cover - spawn-only path
                from multiprocessing import resource_tracker
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED[handle.shm_name] = segment
    arrays: Dict[str, np.ndarray] = {}
    for name, (offset, shape, dtype) in handle.arrays.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=segment.buf, offset=offset)
        view.setflags(write=False)
        arrays[name] = view
    return arrays


# --------------------------------------------------------------------------
# Random-forest task tree
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ForestSpec:
    """Fit-constant forest parameters shipped once per worker batch."""

    n_classes: int
    n_bins: int
    params: TreeParams
    bootstrap: bool


@dataclass(frozen=True)
class ForestTask:
    """One tree of the forest: its position and its SeedSequence child."""

    index: int
    seed: np.random.SeedSequence


def _forest_tree_task(binned: np.ndarray, encoded: np.ndarray,
                      weights: np.ndarray, spec: ForestSpec,
                      task: ForestTask) -> Tuple[int, HistTree]:
    """Grow one forest tree — the single source of truth for both paths.

    The serial path calls this in-process with the same seeds the workers
    receive, which is what makes ``n_jobs`` bit-invariant by construction.
    """
    rng = np.random.default_rng(task.seed)
    n_samples = binned.shape[0]
    if spec.bootstrap:
        idx = rng.integers(0, n_samples, size=n_samples)
        bag_counts = np.bincount(idx, minlength=n_samples)
        bag_weights = weights * bag_counts
        rows = np.nonzero(bag_counts)[0]
    else:
        rows = np.arange(n_samples)
        bag_weights = weights
    tree = grow_classification_tree(binned[rows], encoded[rows],
                                    bag_weights[rows], spec.n_classes,
                                    spec.n_bins, spec.params, rng)
    return task.index, tree


def _forest_worker(handle: DatasetHandle, spec: ForestSpec,
                   tasks: Sequence[ForestTask]
                   ) -> List[Tuple[int, HistTree]]:
    """Worker: grow one chunk of forest trees from the shared dataset."""
    data = _attach(handle)
    return [_forest_tree_task(data["binned"], data["encoded"],
                              data["weights"], spec, task)
            for task in tasks]


def _chunk(tasks: Sequence, n_chunks: int) -> List[List]:
    """Split tasks into at most ``n_chunks`` contiguous chunks."""
    n_chunks = max(1, min(n_chunks, len(tasks)))
    bounds = np.linspace(0, len(tasks), n_chunks + 1).astype(int)
    return [list(tasks[bounds[i]:bounds[i + 1]]) for i in range(n_chunks)
            if bounds[i] < bounds[i + 1]]


def grow_forest(binned: np.ndarray, encoded: np.ndarray,
                weights: np.ndarray, spec: ForestSpec,
                seeds: Sequence[np.random.SeedSequence],
                n_jobs: int = 1) -> List[HistTree]:
    """Grow every tree of a forest; returns them in task (index) order.

    ``n_jobs <= 1`` runs the identical per-tree tasks in-process; more
    workers fan the chunks out over a ``ProcessPoolExecutor`` with the
    binned matrix, labels and weights shipped once via shared memory.
    """
    tasks = [ForestTask(index=i, seed=seed) for i, seed in enumerate(seeds)]
    if n_jobs <= 1 or len(tasks) <= 1:
        pairs = [_forest_tree_task(binned, encoded, weights, spec, task)
                 for task in tasks]
    else:
        with SharedDataset({"binned": binned, "encoded": encoded,
                            "weights": weights}) as dataset:
            handle = dataset.handle()
            chunks = _chunk(tasks, n_jobs * CHUNKS_PER_JOB)
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                futures = [pool.submit(_forest_worker, handle, spec, chunk)
                           for chunk in chunks]
                pairs = [pair for future in futures
                         for pair in future.result()]
    trees: List[Optional[HistTree]] = [None] * len(tasks)
    for index, tree in pairs:
        trees[index] = tree
    return trees  # type: ignore[return-value]


# --------------------------------------------------------------------------
# Boosting-round task tree
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RoundSpec:
    """Fit-constant boosting parameters shipped with every round."""

    n_bins: int
    params: TreeParams
    leafwise: bool


@dataclass(frozen=True)
class RoundTask:
    """One tree of one boosting round.

    ``grad``/``hess`` are this round's per-sample statistics for one
    class column (already GOSS-amplified where applicable); they change
    every round, so they travel with the task rather than in the shared
    dataset.
    """

    class_index: int
    seed: np.random.SeedSequence
    grad: np.ndarray
    hess: np.ndarray
    sample_idx: Optional[np.ndarray]


def _round_tree_task(binned: np.ndarray, spec: RoundSpec, task: RoundTask
                     ) -> Tuple[int, HistTree, np.ndarray]:
    """Grow one round-tree and score it on the full training matrix.

    Returning the predictions lets the parent update its raw scores
    without re-walking the tree, and keeps that (deterministic) work on
    the worker's CPU.
    """
    rng = np.random.default_rng(task.seed)
    tree = grow_regression_tree(binned, task.grad, task.hess, spec.n_bins,
                                spec.params, rng, leafwise=spec.leafwise,
                                sample_idx=task.sample_idx)
    return task.class_index, tree, tree.predict_value(binned)[:, 0]


def _round_worker(handle: DatasetHandle, spec: RoundSpec,
                  tasks: Sequence[RoundTask]
                  ) -> List[Tuple[int, HistTree, np.ndarray]]:
    """Worker: grow round-trees against the shared binned matrix."""
    data = _attach(handle)
    return [_round_tree_task(data["binned"], spec, task) for task in tasks]


class BoostingPool:
    """Per-fit worker pool for boosting rounds.

    Publishes the binned matrix and starts the process pool lazily, on
    the first round that actually has more than one tree to grow — a
    binary objective (one tree per round) therefore never pays for a
    pool it cannot use.  Rounds are submitted one at a time (they are
    sequential by nature); within a round the per-class trees run
    concurrently and are merged back in class order.
    """

    def __init__(self, binned: np.ndarray, n_jobs: int = 1) -> None:
        self._binned = binned
        self._n_jobs = max(1, int(n_jobs))
        self._dataset: Optional[SharedDataset] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> None:
        if self._pool is None:
            self._dataset = SharedDataset({"binned": self._binned})
            self._pool = ProcessPoolExecutor(max_workers=self._n_jobs)

    def grow_round(self, spec: RoundSpec, tasks: Sequence[RoundTask]
                   ) -> List[Tuple[HistTree, np.ndarray]]:
        """Grow one round's trees; returns ``(tree, train_pred)`` pairs in
        class order regardless of worker completion order."""
        if self._n_jobs <= 1 or len(tasks) <= 1:
            results = [_round_tree_task(self._binned, spec, task)
                       for task in tasks]
        else:
            self._ensure_pool()
            handle = self._dataset.handle()
            futures = [self._pool.submit(_round_worker, handle, spec, [task])
                       for task in tasks]
            results = [item for future in futures
                       for item in future.result()]
        results.sort(key=lambda item: item[0])
        return [(tree, pred) for _, tree, pred in results]

    def close(self) -> None:
        """Shut the pool down and unlink the shared dataset."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._dataset is not None:
            self._dataset.close()
            self._dataset = None

    def __enter__(self) -> "BoostingPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
