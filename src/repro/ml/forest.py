"""Random Forest classifier (bagging + feature subsampling).

Breiman-style random forest on histogram trees: each tree is grown on a
bootstrap resample of the training set, examining a random subset of
features at every split, and the forest predicts by averaging the trees'
leaf class-frequency vectors.  The paper credits exactly this variance
reduction for Random Forest beating the boosting models on its ~1k-bank
dataset (Section V-B).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml._hist import HistTree, TreeParams
from repro.ml.parallel import ForestSpec, grow_forest, resolve_n_jobs
from repro.ml.tree import resolve_max_features


class RandomForestClassifier:
    """Bagged ensemble of gini histogram trees.

    Every tree draws its bootstrap resample and feature subsets from its
    own ``SeedSequence(random_state)`` child (see :mod:`repro.ml.parallel`),
    so tree growth is order-independent and the fitted forest is
    bit-identical for every ``n_jobs``.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth limit.
        min_samples_leaf: minimum samples per leaf.
        max_features: features examined per split (default ``"sqrt"``).
        max_bins: histogram resolution for continuous features.
        bootstrap: draw a bootstrap resample per tree (True for a classic
            random forest; False degenerates to a randomised-tree ensemble).
        class_weight: ``None`` or ``"balanced"`` (reweight classes inversely
            to their frequency — useful for the heavily skewed pattern
            classes of Table III).
        random_state: seed for all resampling and feature subsampling.
        n_jobs: worker processes growing trees (``None``/``1`` = serial,
            ``-1`` = all cores); never changes the fitted model.
    """

    def __init__(self, n_estimators: int = 100,
                 max_depth: Optional[int] = None,
                 min_samples_leaf: int = 1,
                 max_features: Union[None, str, int, float] = "sqrt",
                 max_bins: int = 255,
                 bootstrap: bool = True,
                 class_weight: Optional[str] = None,
                 random_state: Optional[int] = None,
                 n_jobs: Optional[int] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        resolve_n_jobs(n_jobs)  # validate eagerly
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.classes_: Optional[np.ndarray] = None
        self.trees_: List[HistTree] = []
        self._mapper: Optional[BinMapper] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Fit the forest."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        encoded = encoded.astype(np.int64)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)

        if sample_weight is None:
            weights = np.ones(n_samples, dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).copy()
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight shape mismatch")
        if self.class_weight == "balanced":
            counts = np.bincount(encoded, minlength=n_classes)
            factors = n_samples / (n_classes * np.maximum(counts, 1))
            weights = weights * factors[encoded]

        self._mapper = BinMapper(max_bins=self.max_bins)
        binned = self._mapper.fit_transform(X)
        n_bins = int(self._mapper.n_bins_.max())

        k = resolve_max_features(self.max_features, n_features)
        params = TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            feature_fraction=k / n_features,
        )
        seeds = np.random.SeedSequence(self.random_state).spawn(
            self.n_estimators)
        spec = ForestSpec(n_classes=n_classes, n_bins=n_bins, params=params,
                          bootstrap=self.bootstrap)
        self.trees_ = grow_forest(binned, encoded, weights, spec, seeds,
                                  n_jobs=resolve_n_jobs(self.n_jobs))
        importance = np.zeros(n_features, dtype=np.float64)
        for tree in self.trees_:
            tree.accumulate_importance(importance)
        total = importance.sum()
        self.feature_importances_ = (
            importance / total if total > 0 else importance)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average of per-tree leaf class frequencies."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        binned = self._mapper.transform(X)
        proba = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for tree in self.trees_:
            proba += tree.predict_value(binned)
        proba /= len(self.trees_)
        return proba

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
