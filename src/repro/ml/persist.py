"""Model persistence: save/load trained models as JSON documents.

Deployment needs trained models to survive process restarts without
pickle (which is a code-execution vector when models are shipped between
services).  Every estimator in :mod:`repro.ml` serialises to a plain JSON
document with an explicit schema version; loading validates the header
and reconstructs the exact predictor (bit-identical probabilities).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml._hist import HistTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBClassifier
from repro.ml.lgbm import LGBMClassifier

FORMAT_NAME = "cordial-ml-model"
FORMAT_VERSION = 1


class ModelPersistenceError(ValueError):
    """Raised when a model document is malformed or unsupported."""


# -- low-level pieces ---------------------------------------------------------

def _tree_to_obj(tree: HistTree) -> dict:
    return {
        "feature": [int(v) for v in tree.feature],
        "bin_threshold": [int(v) for v in tree.bin_threshold],
        "left": [int(v) for v in tree.left],
        "right": [int(v) for v in tree.right],
        "value": [np.asarray(v, dtype=float).tolist() for v in tree.value],
        "value_shape": list(tree.value_shape),
    }


def _tree_from_obj(obj: dict) -> HistTree:
    tree = HistTree(value_shape=tuple(obj["value_shape"]))
    tree.feature = [int(v) for v in obj["feature"]]
    tree.bin_threshold = [int(v) for v in obj["bin_threshold"]]
    tree.left = [int(v) for v in obj["left"]]
    tree.right = [int(v) for v in obj["right"]]
    tree.value = [np.asarray(v, dtype=np.float64) for v in obj["value"]]
    return tree


def _mapper_to_obj(mapper: BinMapper) -> dict:
    if not mapper.is_fitted:
        raise ModelPersistenceError("cannot persist an unfitted BinMapper")
    return {
        "max_bins": mapper.max_bins,
        "edges": [np.asarray(e, dtype=float).tolist()
                  for e in mapper.edges_],
        "n_bins": mapper.n_bins_.tolist(),
        "missing_bin": mapper.missing_bin_.tolist(),
    }


def _mapper_from_obj(obj: dict) -> BinMapper:
    mapper = BinMapper(max_bins=int(obj["max_bins"]))
    mapper.edges_ = [np.asarray(e, dtype=np.float64) for e in obj["edges"]]
    mapper.n_bins_ = np.asarray(obj["n_bins"], dtype=np.int64)
    mapper.missing_bin_ = np.asarray(obj["missing_bin"], dtype=np.int64)
    return mapper


def _classes_to_obj(classes: np.ndarray) -> dict:
    kind = "int" if np.issubdtype(classes.dtype, np.integer) else "str"
    values = ([int(c) for c in classes] if kind == "int"
              else [str(c) for c in classes])
    return {"kind": kind, "values": values}


def _classes_from_obj(obj: dict) -> np.ndarray:
    if obj["kind"] == "int":
        return np.asarray(obj["values"], dtype=np.int64)
    return np.asarray(obj["values"])


# -- per-estimator serialisation -----------------------------------------------------

def _forest_to_obj(model: RandomForestClassifier) -> dict:
    return {
        "kind": "RandomForestClassifier",
        "classes": _classes_to_obj(model.classes_),
        "mapper": _mapper_to_obj(model._mapper),
        "trees": [_tree_to_obj(t) for t in model.trees_],
    }


def _forest_from_obj(obj: dict) -> RandomForestClassifier:
    model = RandomForestClassifier(n_estimators=max(1, len(obj["trees"])))
    model.classes_ = _classes_from_obj(obj["classes"])
    model._mapper = _mapper_from_obj(obj["mapper"])
    model.trees_ = [_tree_from_obj(t) for t in obj["trees"]]
    return model


def _boosted_to_obj(model, kind: str) -> dict:
    out = {
        "kind": kind,
        "classes": _classes_to_obj(model.classes_),
        "mapper": _mapper_to_obj(model._mapper),
        "learning_rate": float(model.learning_rate),
        "rounds": [[_tree_to_obj(t) for t in round_trees]
                   for round_trees in model.trees_],
    }
    if kind == "XGBClassifier":
        out["base_raw"] = float(model._base_raw)
    return out


def _xgb_from_obj(obj: dict) -> XGBClassifier:
    model = XGBClassifier(n_estimators=max(1, len(obj["rounds"])),
                          learning_rate=obj["learning_rate"])
    model.classes_ = _classes_from_obj(obj["classes"])
    model._mapper = _mapper_from_obj(obj["mapper"])
    model._base_raw = float(obj["base_raw"])
    model.trees_ = [[_tree_from_obj(t) for t in round_trees]
                    for round_trees in obj["rounds"]]
    return model


def _lgbm_from_obj(obj: dict) -> LGBMClassifier:
    model = LGBMClassifier(n_estimators=max(1, len(obj["rounds"])),
                           learning_rate=obj["learning_rate"])
    model.classes_ = _classes_from_obj(obj["classes"])
    model._mapper = _mapper_from_obj(obj["mapper"])
    model.trees_ = [[_tree_from_obj(t) for t in round_trees]
                    for round_trees in obj["rounds"]]
    return model


_SERIALIZERS = {
    RandomForestClassifier: lambda m: _forest_to_obj(m),
    XGBClassifier: lambda m: _boosted_to_obj(m, "XGBClassifier"),
    LGBMClassifier: lambda m: _boosted_to_obj(m, "LGBMClassifier"),
}

_DESERIALIZERS = {
    "RandomForestClassifier": _forest_from_obj,
    "XGBClassifier": _xgb_from_obj,
    "LGBMClassifier": _lgbm_from_obj,
}


# -- public API ---------------------------------------------------------------------

def dump_model(model, destination: Union[str, Path]) -> None:
    """Serialise a fitted model to a JSON file."""
    serializer = _SERIALIZERS.get(type(model))
    if serializer is None:
        raise ModelPersistenceError(
            f"unsupported model type: {type(model).__name__}")
    if getattr(model, "classes_", None) is None:
        raise ModelPersistenceError("cannot persist an unfitted model")
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "model": serializer(model),
    }
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_model(source: Union[str, Path]):
    """Load a model saved by :func:`dump_model`."""
    try:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ModelPersistenceError(f"invalid model file: {exc}") from exc
    if document.get("format") != FORMAT_NAME:
        raise ModelPersistenceError(
            f"unexpected format: {document.get('format')!r}")
    if document.get("version") != FORMAT_VERSION:
        raise ModelPersistenceError(
            f"unsupported version: {document.get('version')!r}")
    obj = document.get("model", {})
    loader = _DESERIALIZERS.get(obj.get("kind"))
    if loader is None:
        raise ModelPersistenceError(f"unknown model kind: {obj.get('kind')!r}")
    model = loader(obj)
    # mark boosted/forest models as fitted for downstream checks
    if hasattr(model, "_fitted"):
        model._fitted = True
    return model
