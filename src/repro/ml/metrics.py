"""Classification metrics: confusion matrix, precision / recall / F1.

The evaluation section of the paper reports per-class and weighted-average
precision, recall and F1 (Tables III and IV); these are the exact
definitions used there (weighted average = support-weighted mean of the
per-class scores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


def _as_labels(y_true, y_pred, labels: Optional[Sequence] = None):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.ndim != 1:
        raise ValueError("labels must be 1-dimensional")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    return y_true, y_pred, labels


def confusion_matrix(y_true, y_pred, labels: Optional[Sequence] = None
                     ) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of class i predicted as j."""
    y_true, y_pred, labels = _as_labels(y_true, y_pred, labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred, _ = _as_labels(y_true, y_pred)
    if y_true.size == 0:
        raise ValueError("cannot score empty inputs")
    return float(np.mean(y_true == y_pred))


@dataclass(frozen=True)
class ClassScores:
    """Precision / recall / F1 and support of one class."""

    precision: float
    recall: float
    f1: float
    support: int


def precision_recall_f1(y_true, y_pred, labels: Optional[Sequence] = None
                        ) -> Dict[object, ClassScores]:
    """Per-class precision, recall and F1.

    Undefined ratios (no predicted or no true samples of a class) score 0,
    matching the common ``zero_division=0`` convention.
    """
    y_true, y_pred, labels = _as_labels(y_true, y_pred, labels)
    matrix = confusion_matrix(y_true, y_pred, labels)
    scores: Dict[object, ClassScores] = {}
    for i, label in enumerate(labels.tolist()):
        tp = float(matrix[i, i])
        predicted = float(matrix[:, i].sum())
        actual = float(matrix[i, :].sum())
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall > 0 else 0.0)
        scores[label] = ClassScores(precision=precision, recall=recall,
                                    f1=f1, support=int(actual))
    return scores


@dataclass(frozen=True)
class WeightedScores:
    """Support-weighted average precision / recall / F1."""

    precision: float
    recall: float
    f1: float
    support: int


def weighted_average(scores: Dict[object, ClassScores]) -> WeightedScores:
    """Support-weighted mean of per-class scores (the paper's
    "Weighted Average" rows)."""
    total = sum(s.support for s in scores.values())
    if total == 0:
        return WeightedScores(0.0, 0.0, 0.0, 0)
    precision = sum(s.precision * s.support for s in scores.values()) / total
    recall = sum(s.recall * s.support for s in scores.values()) / total
    f1 = sum(s.f1 * s.support for s in scores.values()) / total
    return WeightedScores(precision=precision, recall=recall, f1=f1,
                          support=total)


def binary_scores(y_true, y_pred) -> ClassScores:
    """Precision / recall / F1 of the positive (True/1) class.

    The cross-row prediction task of Table IV is binary per block; its
    headline numbers are the positive-class scores.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = float(np.sum(y_true & y_pred))
    fp = float(np.sum(~y_true & y_pred))
    fn = float(np.sum(y_true & ~y_pred))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall > 0 else 0.0)
    return ClassScores(precision=precision, recall=recall, f1=f1,
                       support=int(np.sum(y_true)))


def classification_report(y_true, y_pred,
                          labels: Optional[Sequence] = None,
                          label_names: Optional[Dict] = None) -> str:
    """Plain-text per-class + weighted-average report."""
    scores = precision_recall_f1(y_true, y_pred, labels)
    avg = weighted_average(scores)
    names = label_names or {}
    width = max([len(str(names.get(k, k))) for k in scores] + [len("weighted avg")])
    lines = [f"{'':<{width}}  precision  recall  f1-score  support"]
    for label, s in scores.items():
        name = str(names.get(label, label))
        lines.append(f"{name:<{width}}  {s.precision:9.3f}  {s.recall:6.3f}"
                     f"  {s.f1:8.3f}  {s.support:7d}")
    lines.append(f"{'weighted avg':<{width}}  {avg.precision:9.3f}"
                 f"  {avg.recall:6.3f}  {avg.f1:8.3f}  {avg.support:7d}")
    return "\n".join(lines)
