"""XGBoost-style gradient-boosted trees (Newton boosting).

Implements the defining pieces of XGBoost's tree booster:

* second-order (gradient + hessian) Taylor expansion of the loss,
* leaf weights ``-G/(H + lambda)`` with L2 regularisation,
* split gain ``1/2 [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma``,
* shrinkage (learning rate) per boosting round,
* level-wise growth to a fixed ``max_depth``,
* binary logistic and multiclass softmax objectives (one tree per class
  per round, as XGBoost does).

Split search runs on quantile-binned features (XGBoost's ``hist`` method).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml._binning import BinMapper
from repro.ml._hist import HistTree, TreeParams
from repro.ml.parallel import (BoostingPool, RoundSpec, RoundTask,
                               resolve_n_jobs)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class XGBClassifier:
    """Newton-boosted tree classifier with the XGBoost objective.

    Args:
        n_estimators: boosting rounds.
        learning_rate: shrinkage applied to every leaf value.
        max_depth: level-wise depth limit per tree (XGBoost default 6).
        min_child_weight: minimum hessian sum per child.
        reg_lambda: L2 regularisation of leaf values.
        gamma: minimum loss reduction required to split.
        subsample: per-round row subsampling fraction.
        colsample: per-split feature subsampling fraction.
        max_bins: histogram resolution.
        base_score: prior probability used to initialise raw scores
            (binary only; multiclass starts from zero logits).
        random_state: seed for row/feature subsampling.  Every boosting
            round draws from its own ``SeedSequence`` child (see
            :mod:`repro.ml.parallel`), so the fitted ensemble is
            bit-identical for every ``n_jobs``.
        n_jobs: worker processes growing a round's per-class trees
            (``None``/``1`` = serial, ``-1`` = all cores).  Rounds remain
            sequential, so parallelism only pays off in multiclass mode;
            the result never depends on it.
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 6, min_child_weight: float = 1.0,
                 reg_lambda: float = 1.0, gamma: float = 0.0,
                 subsample: float = 1.0, colsample: float = 1.0,
                 min_samples_leaf: int = 1, max_bins: int = 255,
                 base_score: float = 0.5,
                 random_state: Optional[int] = None,
                 n_jobs: Optional[int] = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < base_score < 1.0:
            raise ValueError("base_score must be in (0, 1)")
        resolve_n_jobs(n_jobs)  # validate eagerly
        self.n_jobs = n_jobs
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.colsample = colsample
        self.min_samples_leaf = min_samples_leaf
        self.max_bins = max_bins
        self.base_score = base_score
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        # rounds x classes matrix of trees (1 column in binary mode)
        self.trees_: List[List[HistTree]] = []
        self._mapper: Optional[BinMapper] = None
        self._base_raw: float = 0.0
        self.feature_importances_: Optional[np.ndarray] = None

    @property
    def _is_binary(self) -> bool:
        return len(self.classes_) == 2

    def fit(self, X, y, sample_weight=None) -> "XGBClassifier":
        """Fit the boosted ensemble."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        encoded = encoded.astype(np.int64)
        n_samples, n_features = X.shape
        if sample_weight is None:
            weights = np.ones(n_samples, dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (n_samples,):
                raise ValueError("sample_weight shape mismatch")

        self._mapper = BinMapper(max_bins=self.max_bins)
        binned = self._mapper.fit_transform(X)
        n_bins = int(self._mapper.n_bins_.max())
        params = TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            min_child_weight=self.min_child_weight,
            feature_fraction=self.colsample,
        )
        round_seeds = np.random.SeedSequence(self.random_state).spawn(
            self.n_estimators)
        spec = RoundSpec(n_bins=n_bins, params=params, leafwise=False)
        importance = np.zeros(n_features, dtype=np.float64)
        self.trees_ = []

        with BoostingPool(binned, n_jobs=resolve_n_jobs(self.n_jobs)) as pool:
            if self._is_binary:
                self._base_raw = float(
                    np.log(self.base_score / (1.0 - self.base_score)))
                raw = np.full(n_samples, self._base_raw, dtype=np.float64)
                target = encoded.astype(np.float64)
                for t in range(self.n_estimators):
                    prob = _sigmoid(raw)
                    grad = (prob - target) * weights
                    hess = np.maximum(prob * (1.0 - prob), 1e-16) * weights
                    row_seed, tree_seed = round_seeds[t].spawn(2)
                    sample_idx = self._draw_rows(
                        n_samples, np.random.default_rng(row_seed))
                    (tree, pred), = pool.grow_round(spec, [RoundTask(
                        class_index=0, seed=tree_seed, grad=grad, hess=hess,
                        sample_idx=sample_idx)])
                    tree.accumulate_importance(importance)
                    raw += self.learning_rate * pred
                    self.trees_.append([tree])
            else:
                n_classes = len(self.classes_)
                self._base_raw = 0.0
                raw = np.zeros((n_samples, n_classes), dtype=np.float64)
                onehot = np.zeros((n_samples, n_classes), dtype=np.float64)
                onehot[np.arange(n_samples), encoded] = 1.0
                for t in range(self.n_estimators):
                    prob = _softmax(raw)
                    children = round_seeds[t].spawn(1 + n_classes)
                    sample_idx = self._draw_rows(
                        n_samples, np.random.default_rng(children[0]))
                    tasks = []
                    for k in range(n_classes):
                        grad = (prob[:, k] - onehot[:, k]) * weights
                        hess = np.maximum(
                            prob[:, k] * (1.0 - prob[:, k]), 1e-16) * weights
                        tasks.append(RoundTask(
                            class_index=k, seed=children[1 + k], grad=grad,
                            hess=hess, sample_idx=sample_idx))
                    round_trees: List[HistTree] = []
                    for k, (tree, pred) in enumerate(
                            pool.grow_round(spec, tasks)):
                        tree.accumulate_importance(importance)
                        raw[:, k] += self.learning_rate * pred
                        round_trees.append(tree)
                    self.trees_.append(round_trees)

        total = importance.sum()
        self.feature_importances_ = (
            importance / total if total > 0 else importance)
        return self

    def _draw_rows(self, n_samples: int,
                   rng: np.random.Generator) -> Optional[np.ndarray]:
        if self.subsample >= 1.0:
            return None
        k = max(1, int(round(self.subsample * n_samples)))
        return np.sort(rng.choice(n_samples, size=k, replace=False))

    def decision_function(self, X) -> np.ndarray:
        """Raw boosted scores (logit in binary mode, logits per class
        otherwise)."""
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        binned = self._mapper.transform(X)
        if self._is_binary:
            raw = np.full(X.shape[0], self._base_raw, dtype=np.float64)
            for (tree,) in self.trees_:
                raw += self.learning_rate * tree.predict_value(binned)[:, 0]
            return raw
        raw = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for round_trees in self.trees_:
            for k, tree in enumerate(round_trees):
                raw[:, k] += self.learning_rate * tree.predict_value(binned)[:, 0]
        return raw

    def predict_proba(self, X) -> np.ndarray:
        """Class probability estimates."""
        raw = self.decision_function(X)
        if self._is_binary:
            p1 = _sigmoid(raw)
            return np.column_stack([1.0 - p1, p1])
        return _softmax(raw)

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
