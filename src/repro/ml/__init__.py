"""Tree-based machine learning, implemented from scratch on numpy.

The paper trains three model families — Random Forest, XGBoost and
LightGBM — none of which are available in this offline environment, so
this package reimplements the defining algorithm of each:

* :mod:`repro.ml.tree` — exact (sort-based) CART decision trees, the
  reference implementation everything else is validated against;
* :mod:`repro.ml.forest` — :class:`RandomForestClassifier`: bootstrap
  bagging with per-split feature subsampling and probability averaging;
* :mod:`repro.ml.gbdt` — :class:`XGBClassifier`: Newton (second-order)
  gradient boosting with L2 leaf regularisation, gamma split penalty and
  level-wise tree growth, as in XGBoost;
* :mod:`repro.ml.lgbm` — :class:`LGBMClassifier`: histogram-binned,
  leaf-wise (best-first) gradient boosting with optional GOSS sampling,
  as in LightGBM.

Shared infrastructure: :mod:`repro.ml._binning` (quantile bin mapping) and
:mod:`repro.ml._hist` (histogram tree growers).  Evaluation utilities live
in :mod:`repro.ml.metrics` and :mod:`repro.ml.selection`.
"""

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBClassifier
from repro.ml.lgbm import LGBMClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    precision_recall_f1,
    classification_report,
)
from repro.ml.selection import train_test_split_groups
from repro.ml.linear import LogisticRegressionClassifier, StandardScaler
from repro.ml.calibration import (
    PlattCalibrator,
    IsotonicCalibrator,
    brier_score,
    expected_calibration_error,
)
from repro.ml.cv import GroupKFold, KFold, StratifiedKFold, cross_val_score
from repro.ml.scoring import Scorer, accuracy, auprc, auroc, make_scorer
from repro.ml.parallel import resolve_n_jobs
from repro.ml.persist import ModelPersistenceError, dump_model, load_model
from repro.ml.ranking import (best_f1_threshold, pr_auc,
                              precision_recall_curve, roc_auc)
from repro.ml.importance import (grouped_permutation_importance,
                                 permutation_importance)
from repro.ml.tuning import GridSearchResult, grid_search

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "XGBClassifier",
    "LGBMClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "classification_report",
    "train_test_split_groups",
    "LogisticRegressionClassifier",
    "StandardScaler",
    "PlattCalibrator",
    "IsotonicCalibrator",
    "brier_score",
    "expected_calibration_error",
    "KFold",
    "StratifiedKFold",
    "GroupKFold",
    "cross_val_score",
    "Scorer",
    "accuracy",
    "auprc",
    "auroc",
    "make_scorer",
    "resolve_n_jobs",
    "ModelPersistenceError",
    "dump_model",
    "load_model",
    "roc_auc",
    "pr_auc",
    "precision_recall_curve",
    "best_f1_threshold",
    "permutation_importance",
    "grouped_permutation_importance",
    "GridSearchResult",
    "grid_search",
]
