"""Dataset splitting utilities.

The paper splits its dataset 7:3 for training and testing (Section V-A).
Because every bank contributes one pattern sample *and* up to 16 cross-row
block samples, splits must be **group-aware** — all samples of one bank go
to the same side, or the evaluation leaks bank identity across the split.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np


def train_test_split_groups(groups: Sequence[Hashable],
                            test_fraction: float = 0.3,
                            seed: Optional[int] = None
                            ) -> Tuple[List[Hashable], List[Hashable]]:
    """Split distinct group keys into train/test sets.

    Args:
        groups: group identifiers (duplicates allowed; the split is over
            the distinct keys).
        test_fraction: fraction of groups assigned to the test side
            (0.3 reproduces the paper's 7:3 split).
        seed: RNG seed for the shuffle.

    Returns:
        ``(train_groups, test_groups)`` — disjoint, covering all distinct
        keys, each sorted for determinism.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    distinct = sorted(set(groups))
    if len(distinct) < 2:
        raise ValueError("need at least two distinct groups to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(distinct))
    n_test = max(1, int(round(test_fraction * len(distinct))))
    n_test = min(n_test, len(distinct) - 1)
    test_keys = {distinct[i] for i in order[:n_test]}
    train = sorted(k for k in distinct if k not in test_keys)
    test = sorted(test_keys)
    return train, test


def group_mask(groups: Sequence[Hashable],
               selected: Sequence[Hashable]) -> np.ndarray:
    """Boolean mask of rows whose group is in ``selected``."""
    selected_set = set(selected)
    return np.asarray([g in selected_set for g in groups], dtype=bool)
