"""Scorer objects: which model output a metric consumes.

``cross_val_score`` and ``grid_search`` historically scored hard
``model.predict`` labels only, which locked out every threshold-free
metric the paper reports (AUPRC via :func:`repro.ml.ranking.pr_auc`,
ROC-AUC, …).  A :class:`Scorer` bundles a metric with the model output it
needs, so probability metrics plug into CV and tuning unchanged::

    from repro.ml.ranking import pr_auc
    from repro.ml.scoring import make_scorer

    cross_val_score(factory, X, y, scorer=make_scorer(pr_auc,
                                                      needs_proba=True))

Plain ``scorer(y_true, y_pred)`` callables keep working everywhere a
scorer is accepted (they are wrapped by :func:`resolve_scorer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.ml.ranking import pr_auc, roc_auc


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches (the historical default scorer)."""
    return float(np.mean(np.asarray(y_true) == np.asarray(y_pred)))


def auprc(y_true, y_score) -> float:
    """:func:`repro.ml.ranking.pr_auc` in scorer ``(y_true, y_hat)``
    argument order — pair with ``make_scorer(auprc, needs_proba=True)``."""
    return pr_auc(y_score, y_true)


def auroc(y_true, y_score) -> float:
    """:func:`repro.ml.ranking.roc_auc` in scorer argument order."""
    return roc_auc(y_score, y_true)


@dataclass(frozen=True)
class Scorer:
    """A metric plus the model output it scores.  Higher is better.

    Attributes:
        fn: ``fn(y_true, y_hat) -> float``.  For ``needs_proba`` scorers
            ``y_hat`` is the positive-class probability column on binary
            problems and the full ``(n, n_classes)`` matrix otherwise;
            for label scorers it is ``model.predict``'s output.
        needs_proba: score ``predict_proba`` instead of ``predict``.
        name: diagnostic label.
    """

    fn: Callable
    needs_proba: bool = False
    name: str = "score"

    def __call__(self, model, X, y_true) -> float:
        """Score a fitted model on ``(X, y_true)``."""
        if self.needs_proba:
            proba = np.asarray(model.predict_proba(X))
            y_hat = proba[:, 1] if proba.shape[1] == 2 else proba
        else:
            y_hat = model.predict(X)
        return float(self.fn(y_true, y_hat))


def make_scorer(fn: Callable, needs_proba: bool = False,
                name: Optional[str] = None) -> Scorer:
    """Wrap a metric function into a :class:`Scorer`."""
    return Scorer(fn=fn, needs_proba=needs_proba,
                  name=name or getattr(fn, "__name__", "score"))


def resolve_scorer(scorer) -> Scorer:
    """Normalise the ``scorer=`` argument of CV/tuning entry points.

    ``None`` means accuracy; a :class:`Scorer` passes through; any other
    callable is treated as a legacy ``scorer(y_true, y_pred)`` label
    metric.
    """
    if scorer is None:
        return Scorer(fn=accuracy, name="accuracy")
    if isinstance(scorer, Scorer):
        return scorer
    return Scorer(fn=scorer, name=getattr(scorer, "__name__", "score"))
