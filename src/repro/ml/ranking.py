"""Threshold-free ranking metrics: ROC-AUC and PR-AUC, from scratch.

Table IV reports thresholded P/R/F1; ranking metrics separate "the model
orders blocks well" from "the threshold is right", which matters when
comparing model families whose probability scales differ (bagged forests
vs boosted logits).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _validate(scores, labels) -> Tuple[np.ndarray, np.ndarray]:
    s = np.asarray(scores, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel().astype(bool)
    if s.shape != y.shape:
        raise ValueError("scores and labels must align")
    if s.size == 0:
        raise ValueError("empty inputs")
    return s, y


def roc_auc(scores, labels) -> float:
    """Area under the ROC curve (Mann-Whitney formulation, tie-aware).

    Equals the probability that a random positive outranks a random
    negative, with ties counted half.
    """
    s, y = _validate(scores, labels)
    n_pos = int(y.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both classes for ROC-AUC")
    order = np.argsort(s, kind="stable")
    ranks = np.empty(s.size, dtype=np.float64)
    sorted_scores = s[order]
    # average ranks over tie groups (1-based midranks)
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum = float(ranks[y].sum())
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def precision_recall_curve(scores, labels
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds) sweeping the decision threshold.

    Points are ordered by decreasing threshold; recall is non-decreasing
    along the arrays.  Ties share one point (evaluated together).
    """
    s, y = _validate(scores, labels)
    if not y.any():
        raise ValueError("need at least one positive for a PR curve")
    order = np.argsort(-s, kind="stable")
    s_sorted = s[order]
    y_sorted = y[order].astype(np.float64)
    tp = np.cumsum(y_sorted)
    fp = np.cumsum(1.0 - y_sorted)
    # keep only the last index of each distinct threshold
    distinct = np.nonzero(np.diff(s_sorted))[0]
    idx = np.concatenate([distinct, [s.size - 1]])
    precision = tp[idx] / (tp[idx] + fp[idx])
    recall = tp[idx] / y_sorted.sum()
    return precision, recall, s_sorted[idx]


def pr_auc(scores, labels) -> float:
    """Area under the precision-recall curve (step-wise interpolation,
    the average-precision convention)."""
    precision, recall, _ = precision_recall_curve(scores, labels)
    recall = np.concatenate([[0.0], recall])
    return float(np.sum((recall[1:] - recall[:-1]) * precision))


def best_f1_threshold(scores, labels) -> Tuple[float, float]:
    """(threshold, f1) maximising F1 along the PR curve."""
    precision, recall, thresholds = precision_recall_curve(scores, labels)
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = 2 * precision * recall / (precision + recall)
    f1 = np.nan_to_num(f1)
    best = int(np.argmax(f1))
    return float(thresholds[best]), float(f1[best])
