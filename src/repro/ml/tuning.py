"""Hyperparameter grid search with cross-validated selection.

Small and deterministic: exhaustive grid, stratified CV per candidate,
refit on the full data with the winning configuration.  Enough to answer
"did the paper's hyperparameters matter?" without a tuning framework.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.cv import StratifiedKFold


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one grid search."""

    best_params: Dict[str, object]
    best_score: float
    results: Dict[tuple, float]  # param items tuple -> mean CV score
    best_model: object

    def ranked(self) -> List[tuple]:
        """(params, score) pairs, best first."""
        return sorted(self.results.items(), key=lambda item: -item[1])


def grid_search(model_factory: Callable[..., object],
                param_grid: Dict[str, Sequence],
                X, y,
                n_splits: int = 3,
                seed: Optional[int] = 0,
                scorer: Optional[Callable] = None) -> GridSearchResult:
    """Exhaustive grid search with stratified CV.

    Args:
        model_factory: ``model_factory(**params)`` builds an unfitted
            estimator with ``fit`` / ``predict``.
        param_grid: ``{name: candidate values}``.
        scorer: ``scorer(y_true, y_pred) -> float`` (higher better);
            defaults to accuracy.

    Returns the result with the winning model refit on all data.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if scorer is None:
        scorer = lambda a, b: float(np.mean(np.asarray(a) == np.asarray(b)))

    names = sorted(param_grid)
    results: Dict[tuple, float] = {}
    best_key, best_score = None, -np.inf
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        fold_scores = []
        for train_idx, test_idx in StratifiedKFold(n_splits,
                                                   seed=seed).split(y):
            model = model_factory(**params)
            model.fit(X[train_idx], y[train_idx])
            fold_scores.append(scorer(y[test_idx],
                                      model.predict(X[test_idx])))
        mean_score = float(np.mean(fold_scores))
        key = tuple(sorted(params.items()))
        results[key] = mean_score
        if mean_score > best_score:
            best_key, best_score = key, mean_score

    best_params = dict(best_key)
    best_model = model_factory(**best_params)
    best_model.fit(X, y)
    return GridSearchResult(best_params=best_params, best_score=best_score,
                            results=results, best_model=best_model)
