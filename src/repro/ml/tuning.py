"""Hyperparameter grid search with cross-validated selection.

Small and deterministic: exhaustive grid, stratified CV per candidate,
refit on the full data with the winning configuration.  Enough to answer
"did the paper's hyperparameters matter?" without a tuning framework.

The CV folds are computed once (every candidate scores the exact same
splits) and the (candidate, fold) fit tasks fan out over the fold-level
parallel tier of :mod:`repro.ml.cv` when ``n_jobs`` asks for it — the
selected model and every score are identical for every ``n_jobs``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.cv import StratifiedKFold, run_fold_tasks
from repro.ml.scoring import Scorer, resolve_scorer


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one grid search."""

    best_params: Dict[str, object]
    best_score: float
    results: Dict[tuple, float]  # param items tuple -> mean CV score
    best_model: object

    def ranked(self) -> List[tuple]:
        """(params, score) pairs, best first.

        Ties break deterministically on the parameter items (compared by
        ``repr`` so mixed-type grids like ``[None, 5]`` still order), so
        the ranking never depends on dict insertion order.
        """
        return sorted(
            self.results.items(),
            key=lambda item: (-item[1],
                              tuple((name, repr(value))
                                    for name, value in item[0])))


def _fit_and_score_candidate(model_factory: Callable[..., object],
                             params: Dict[str, object], X: np.ndarray,
                             y: np.ndarray,
                             sample_weight: Optional[np.ndarray],
                             train_idx: np.ndarray, test_idx: np.ndarray,
                             scorer: Scorer) -> float:
    """One (candidate, fold) fit — shared by the serial and parallel paths."""
    model = model_factory(**params)
    if sample_weight is None:
        model.fit(X[train_idx], y[train_idx])
    else:
        model.fit(X[train_idx], y[train_idx],
                  sample_weight=sample_weight[train_idx])
    return scorer(model, X[test_idx], y[test_idx])


def grid_search(model_factory: Callable[..., object],
                param_grid: Dict[str, Sequence],
                X, y,
                n_splits: int = 3,
                seed: Optional[int] = 0,
                scorer: Optional[Callable] = None,
                sample_weight=None,
                n_jobs: Optional[int] = None) -> GridSearchResult:
    """Exhaustive grid search with stratified CV.

    Args:
        model_factory: ``model_factory(**params)`` builds an unfitted
            estimator with ``fit`` / ``predict`` (and ``predict_proba``
            if the scorer needs it).
        param_grid: ``{name: candidate values}``.
        scorer: a :class:`repro.ml.scoring.Scorer` or a legacy
            ``scorer(y_true, y_pred)`` callable (higher better); defaults
            to accuracy.
        sample_weight: optional per-sample fit weights, sliced per fold
            and used whole for the final refit.
        n_jobs: (candidate, fold) fits run concurrently
            (``None``/``1`` = serial, ``-1`` = all cores); never changes
            the scores or the selected model.

    Returns the result with the winning model refit on all data.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if sample_weight is not None:
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        if sample_weight.shape != (len(y),):
            raise ValueError("sample_weight shape mismatch")
    scorer = resolve_scorer(scorer)

    names = sorted(param_grid)
    candidates = [dict(zip(names, values)) for values in
                  itertools.product(*(param_grid[name] for name in names))]
    folds = list(StratifiedKFold(n_splits, seed=seed).split(y))
    tasks = [(model_factory, params, X, y, sample_weight, train_idx,
              test_idx, scorer)
             for params in candidates for train_idx, test_idx in folds]
    fold_scores = run_fold_tasks(_fit_and_score_candidate, tasks, n_jobs,
                                 pickle_probe=(model_factory, scorer))

    results: Dict[tuple, float] = {}
    best_key, best_score = None, -np.inf
    for i, params in enumerate(candidates):
        mean_score = float(np.mean(
            fold_scores[i * len(folds):(i + 1) * len(folds)]))
        key = tuple(sorted(params.items()))
        results[key] = mean_score
        if mean_score > best_score:
            best_key, best_score = key, mean_score

    best_params = dict(best_key)
    best_model = model_factory(**best_params)
    if sample_weight is None:
        best_model.fit(X, y)
    else:
        best_model.fit(X, y, sample_weight=sample_weight)
    return GridSearchResult(best_params=best_params, best_score=best_score,
                            results=results, best_model=best_model)
