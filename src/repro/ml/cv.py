"""Cross-validation utilities (k-fold, stratified, grouped).

The paper uses a single 7:3 split; cross-validation quantifies how much
of a model ordering (RF vs XGB vs LGBM in Tables III/IV) is split luck.
All splitters are deterministic under a seed and yield index arrays.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class KFold:
    """Plain k-fold split over sample indices."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs."""
        if n_samples < self.n_splits:
            raise ValueError("fewer samples than folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            indices = rng.permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits)
                                    if j != i])
            yield np.sort(train), np.sort(test)


class StratifiedKFold:
    """K-fold preserving per-class proportions (needed for the skewed
    pattern classes: 68 % single-row vs 12 % double-row)."""

    def __init__(self, n_splits: int = 5, seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y: Sequence) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs stratified by ``y``."""
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(len(y), dtype=np.int64)
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            members = rng.permutation(members)
            for position, index in enumerate(members):
                fold_of[index] = position % self.n_splits
        for fold in range(self.n_splits):
            test = np.nonzero(fold_of == fold)[0]
            train = np.nonzero(fold_of != fold)[0]
            if test.size == 0 or train.size == 0:
                raise ValueError("a fold came out empty; reduce n_splits")
            yield train, test


class GroupKFold:
    """K-fold where all samples of one group stay on the same side
    (banks contribute many block samples — see
    :func:`repro.ml.selection.train_test_split_groups`)."""

    def __init__(self, n_splits: int = 5, seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, groups: Sequence[Hashable]
              ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs split by distinct group."""
        groups = list(groups)
        distinct = sorted(set(groups))
        if len(distinct) < self.n_splits:
            raise ValueError("fewer groups than folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(distinct))
        fold_of_group = {distinct[g]: i % self.n_splits
                         for i, g in enumerate(order)}
        fold_of = np.asarray([fold_of_group[g] for g in groups])
        for fold in range(self.n_splits):
            test = np.nonzero(fold_of == fold)[0]
            train = np.nonzero(fold_of != fold)[0]
            yield train, test


def cross_val_score(model_factory: Callable[[], object], X, y,
                    n_splits: int = 5, seed: Optional[int] = None,
                    scorer: Optional[Callable] = None,
                    stratified: bool = True) -> np.ndarray:
    """Fit a fresh model per fold; return the per-fold scores.

    Args:
        model_factory: zero-argument callable building an unfitted model
            with ``fit``/``predict``.
        scorer: ``scorer(y_true, y_pred) -> float``; defaults to accuracy.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if scorer is None:
        scorer = lambda a, b: float(np.mean(np.asarray(a) == np.asarray(b)))
    splitter = (StratifiedKFold(n_splits, seed) if stratified
                else KFold(n_splits, seed=seed))
    source = splitter.split(y) if stratified else splitter.split(len(y))
    scores: List[float] = []
    for train_idx, test_idx in source:
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores)
