"""Cross-validation utilities (k-fold, stratified, grouped).

The paper uses a single 7:3 split; cross-validation quantifies how much
of a model ordering (RF vs XGB vs LGBM in Tables III/IV) is split luck.

Determinism contract: every splitter and :func:`cross_val_score` is a
pure function of its inputs and its ``seed``.  ``cross_val_score``
defaults to ``seed=0`` (like :func:`repro.ml.tuning.grid_search`), so two
calls with the same arguments always return the same scores; pass
``seed=None`` to opt into OS-entropy splits explicitly.  Splitters
validate *all* folds eagerly, before yielding the first one, so callers
never fit models on early folds only to die mid-iteration.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import (Callable, Hashable, Iterator, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.ml.parallel import resolve_n_jobs
from repro.ml.scoring import Scorer, resolve_scorer


class KFold:
    """Plain k-fold split over sample indices."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs."""
        if n_samples < self.n_splits:
            raise ValueError("fewer samples than folds")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            indices = rng.permutation(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits)
                                    if j != i])
            yield np.sort(train), np.sort(test)


def _validated_folds(fold_of: np.ndarray, n_splits: int
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Materialise (train, test) pairs, checking every fold up front.

    Raising before the first yield means a caller that has to fit a model
    per fold never wastes work on early folds of a doomed split.
    """
    pairs = []
    for fold in range(n_splits):
        test = np.nonzero(fold_of == fold)[0]
        train = np.nonzero(fold_of != fold)[0]
        if test.size == 0 or train.size == 0:
            raise ValueError(
                f"fold {fold} of {n_splits} came out empty; reduce n_splits")
        pairs.append((train, test))
    return pairs


class StratifiedKFold:
    """K-fold preserving per-class proportions (needed for the skewed
    pattern classes: 68 % single-row vs 12 % double-row)."""

    def __init__(self, n_splits: int = 5, seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, y: Sequence) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs stratified by ``y``.

        All folds are validated non-empty before the first pair is
        yielded.
        """
        y = np.asarray(y)
        rng = np.random.default_rng(self.seed)
        fold_of = np.empty(len(y), dtype=np.int64)
        for label in np.unique(y):
            members = np.nonzero(y == label)[0]
            members = rng.permutation(members)
            for position, index in enumerate(members):
                fold_of[index] = position % self.n_splits
        yield from _validated_folds(fold_of, self.n_splits)


class GroupKFold:
    """K-fold where all samples of one group stay on the same side
    (banks contribute many block samples — see
    :func:`repro.ml.selection.train_test_split_groups`)."""

    def __init__(self, n_splits: int = 5, seed: Optional[int] = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.seed = seed

    def split(self, groups: Sequence[Hashable]
              ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs split by distinct group.

        All folds are validated non-empty before the first pair is
        yielded.
        """
        groups = list(groups)
        distinct = sorted(set(groups))
        if len(distinct) < self.n_splits:
            raise ValueError("fewer groups than folds")
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(distinct))
        fold_of_group = {distinct[g]: i % self.n_splits
                         for i, g in enumerate(order)}
        fold_of = np.asarray([fold_of_group[g] for g in groups])
        yield from _validated_folds(fold_of, self.n_splits)


def _fit_and_score(model_factory: Callable[[], object], X: np.ndarray,
                   y: np.ndarray, sample_weight: Optional[np.ndarray],
                   train_idx: np.ndarray, test_idx: np.ndarray,
                   scorer: Scorer) -> float:
    """Fit a fresh model on one fold and score the held-out side.

    Module-level so it is picklable for the fold-parallel tier; the
    serial path calls the very same function, so ``n_jobs`` cannot
    change a score.
    """
    model = model_factory()
    if sample_weight is None:
        model.fit(X[train_idx], y[train_idx])
    else:
        model.fit(X[train_idx], y[train_idx],
                  sample_weight=sample_weight[train_idx])
    return scorer(model, X[test_idx], y[test_idx])


def run_fold_tasks(worker: Callable, task_args: Sequence[tuple],
                   n_jobs: Optional[int],
                   pickle_probe: tuple = ()) -> List:
    """Run fold-level tasks serially or over a ``ProcessPoolExecutor``.

    Results come back in submission order, so parallelism never reorders
    scores.  If ``pickle_probe`` (typically the model factory and scorer)
    does not pickle — lambdas are common here — the tasks silently run
    serially instead; the results are identical either way because each
    task is independent and the per-task function is shared.
    """
    jobs = resolve_n_jobs(n_jobs)
    if jobs > 1 and len(task_args) > 1:
        try:
            pickle.dumps(pickle_probe)
        except Exception:
            jobs = 1
    if jobs <= 1 or len(task_args) <= 1:
        return [worker(*args) for args in task_args]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(worker, *args) for args in task_args]
        return [future.result() for future in futures]


def cross_val_score(model_factory: Callable[[], object], X, y,
                    n_splits: int = 5, seed: Optional[int] = 0,
                    scorer: Optional[Callable] = None,
                    stratified: bool = True,
                    sample_weight=None,
                    n_jobs: Optional[int] = None) -> np.ndarray:
    """Fit a fresh model per fold; return the per-fold scores.

    Deterministic by default: ``seed=0`` fixes the fold assignment, so
    repeated calls score identical splits (pass ``seed=None`` for
    OS-entropy splits).  Scores are returned in fold order regardless of
    ``n_jobs``.

    Args:
        model_factory: zero-argument callable building an unfitted model
            with ``fit``/``predict`` (and ``predict_proba`` if the scorer
            needs it).
        scorer: a :class:`repro.ml.scoring.Scorer` (e.g. from
            :func:`repro.ml.scoring.make_scorer` with ``needs_proba=True``
            for AUPRC/ROC-AUC), or a legacy ``scorer(y_true, y_pred)``
            callable; defaults to accuracy.
        sample_weight: optional per-sample fit weights; each fold's model
            sees the training slice of them.
        n_jobs: folds fitted concurrently (``None``/``1`` = serial,
            ``-1`` = all cores); never changes the scores.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if sample_weight is not None:
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        if sample_weight.shape != (len(y),):
            raise ValueError("sample_weight shape mismatch")
    scorer = resolve_scorer(scorer)
    splitter = (StratifiedKFold(n_splits, seed) if stratified
                else KFold(n_splits, seed=seed))
    source = splitter.split(y) if stratified else splitter.split(len(y))
    tasks = [(model_factory, X, y, sample_weight, train_idx, test_idx, scorer)
             for train_idx, test_idx in source]
    scores = run_fold_tasks(_fit_and_score, tasks, n_jobs,
                            pickle_probe=(model_factory, scorer))
    return np.asarray(scores, dtype=np.float64)
