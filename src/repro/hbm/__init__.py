"""Structural model of an HBM2E memory subsystem.

This package provides the hardware substrate the paper's prediction method
operates on: the full device hierarchy (node -> NPU -> HBM -> SID -> channel
-> pseudo-channel -> bank group -> bank -> row/column), the ECC error model
that turns raw bit faults into CE/UEO/UER events, the patrol scrubber, and
the sparing (isolation) mechanisms whose coverage Cordial is evaluated on.
"""

from repro.hbm.geometry import HBMGeometry, FleetGeometry
from repro.hbm.address import DeviceAddress, MicroLevel
from repro.hbm.ecc import ECCConfig, ECCModel, ECCOutcome
from repro.hbm.bank import BankState
from repro.hbm.device import HBMDevice, NPUState, FleetState
from repro.hbm.sparing import (
    RowSparingController,
    BankSparingController,
    PageOfflineManager,
    SparingExhaustedError,
)
from repro.hbm.scrub import PatrolScrubber
from repro.hbm.repair import PPRManager, PPRPolicy, RepairRecord, RepairState
from repro.hbm.addressmap import AddressLayout, AddressMapper, default_hbm2e_mapper

__all__ = [
    "HBMGeometry",
    "FleetGeometry",
    "DeviceAddress",
    "MicroLevel",
    "ECCConfig",
    "ECCModel",
    "ECCOutcome",
    "BankState",
    "HBMDevice",
    "NPUState",
    "FleetState",
    "RowSparingController",
    "BankSparingController",
    "PageOfflineManager",
    "SparingExhaustedError",
    "PatrolScrubber",
    "PPRManager",
    "PPRPolicy",
    "RepairRecord",
    "RepairState",
    "AddressLayout",
    "AddressMapper",
    "default_hbm2e_mapper",
]
