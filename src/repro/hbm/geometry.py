"""Geometry of the HBM2E hierarchy and of the compute fleet.

The paper (Section II-A) describes HBM2E devices built as 8-Hi stacks:
every four DRAM dies form one stack ID (SID), each die exposes 8 channels,
each channel is split into 2 pseudo-channels, each pseudo-channel holds
4 bank groups of 4 banks, and each bank is a two-dimensional array of cells
indexed by row and column.  Figure 3 of the paper shows banks with row
indices beyond 30,000 and column indices up to 128, so the default bank
shape is 32768 rows x 128 columns.

The fleet side mirrors the paper's platform: compute nodes with 8 NPUs and
8 HBMs per NPU (">10,000 NPUs and 80,000 HBMs").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HBMGeometry:
    """Shape of a single HBM device.

    Attributes mirror the hierarchy of Section II-A of the paper.  All
    counts are per parent level (e.g. ``banks`` is banks *per bank group*).
    """

    sids: int = 2
    channels: int = 8
    pseudo_channels: int = 2
    bank_groups: int = 4
    banks: int = 4
    rows: int = 32768
    columns: int = 128

    def __post_init__(self) -> None:
        for name in (
            "sids",
            "channels",
            "pseudo_channels",
            "bank_groups",
            "banks",
            "rows",
            "columns",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"HBMGeometry.{name} must be positive, got {value}")

    @property
    def banks_per_device(self) -> int:
        """Total number of banks in one HBM device."""
        return (
            self.sids
            * self.channels
            * self.pseudo_channels
            * self.bank_groups
            * self.banks
        )

    @property
    def rows_per_device(self) -> int:
        """Total number of addressable rows in one HBM device."""
        return self.banks_per_device * self.rows

    @property
    def cells_per_bank(self) -> int:
        """Number of (row, column) cells in one bank."""
        return self.rows * self.columns

    def bank_index(self, sid: int, channel: int, pseudo_channel: int,
                   bank_group: int, bank: int) -> int:
        """Flatten a bank coordinate into a dense index within the device."""
        self.validate_bank_coord(sid, channel, pseudo_channel, bank_group, bank)
        index = sid
        index = index * self.channels + channel
        index = index * self.pseudo_channels + pseudo_channel
        index = index * self.bank_groups + bank_group
        index = index * self.banks + bank
        return index

    def bank_coord(self, index: int) -> tuple:
        """Invert :meth:`bank_index`."""
        if not 0 <= index < self.banks_per_device:
            raise ValueError(f"bank index {index} out of range")
        index, bank = divmod(index, self.banks)
        index, bank_group = divmod(index, self.bank_groups)
        index, pseudo_channel = divmod(index, self.pseudo_channels)
        sid, channel = divmod(index, self.channels)
        return sid, channel, pseudo_channel, bank_group, bank

    def validate_bank_coord(self, sid: int, channel: int, pseudo_channel: int,
                            bank_group: int, bank: int) -> None:
        """Raise ``ValueError`` when any coordinate is out of range."""
        bounds = (
            ("sid", sid, self.sids),
            ("channel", channel, self.channels),
            ("pseudo_channel", pseudo_channel, self.pseudo_channels),
            ("bank_group", bank_group, self.bank_groups),
            ("bank", bank, self.banks),
        )
        for name, value, limit in bounds:
            if not 0 <= value < limit:
                raise ValueError(f"{name}={value} out of range [0, {limit})")

    def validate_cell(self, row: int, column: int) -> None:
        """Raise ``ValueError`` when a (row, column) cell is out of range."""
        if not 0 <= row < self.rows:
            raise ValueError(f"row={row} out of range [0, {self.rows})")
        if not 0 <= column < self.columns:
            raise ValueError(f"column={column} out of range [0, {self.columns})")


@dataclass(frozen=True)
class FleetGeometry:
    """Shape of the compute fleet hosting the HBMs.

    The paper's platform has more than 10,000 NPUs and 80,000 HBMs; each
    compute node carries 8 NPUs and each NPU carries 8 HBMs (two sockets
    with four stacks each).
    """

    nodes: int = 1280
    npus_per_node: int = 8
    hbms_per_npu: int = 8
    hbm: HBMGeometry = HBMGeometry()

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.npus_per_node <= 0:
            raise ValueError("npus_per_node must be positive")
        if self.hbms_per_npu <= 0:
            raise ValueError("hbms_per_npu must be positive")

    @property
    def total_npus(self) -> int:
        """Number of NPUs in the fleet."""
        return self.nodes * self.npus_per_node

    @property
    def total_hbms(self) -> int:
        """Number of HBM devices in the fleet."""
        return self.total_npus * self.hbms_per_npu

    @property
    def total_banks(self) -> int:
        """Number of banks in the fleet."""
        return self.total_hbms * self.hbm.banks_per_device

    def scaled(self, factor: float) -> "FleetGeometry":
        """Return a fleet scaled down (or up) by ``factor`` nodes-wise.

        Used by tests and small examples to run the same pipeline on a
        fraction of the paper-scale fleet.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        nodes = max(1, round(self.nodes * factor))
        return FleetGeometry(
            nodes=nodes,
            npus_per_node=self.npus_per_node,
            hbms_per_npu=self.hbms_per_npu,
            hbm=self.hbm,
        )
