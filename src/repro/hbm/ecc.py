"""ECC error model: from raw bit faults to CE / UEO / UER events.

Section II-B of the paper defines an HBM *error* as data delivered through
the ECC that is inconsistent with the original data, and splits errors into

* **CE** — within the correction capability of the ECC (e.g. a single-bit
  error), silently repaired;
* **UCE** — beyond the correction capability; further split by impact into
  **UEO** (Uncorrectable Error, Action Optional — typically found by patrol
  scrub in memory that no one is about to consume) and **UER**
  (Uncorrectable Error, Action Required — the poisoned data was demanded by
  the workload).

We model a symbol-oriented SEC-DED-like code parameterised by the number of
bit errors it can correct per codeword.  Whether a UCE becomes a UEO or a
UER is decided by a race between the patrol scrubber (period ``T_s``) and
demand accesses (exponential with rate ``access_rate`` for the affected
region): the scrubber finds the corruption first with probability
``p_ueo = (1 - exp(-access_rate * T_s)) / (access_rate * T_s)`` integrated
over a uniform scrub phase — we expose the closed form via
:meth:`ECCModel.ueo_probability` and let callers draw outcomes with an
explicit RNG.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np


class ECCOutcome(enum.Enum):
    """Classification of a raw fault event after passing through ECC."""

    CE = "CE"
    UEO = "UEO"
    UER = "UER"

    @property
    def is_uncorrectable(self) -> bool:
        """Whether the outcome is a UCE (UEO or UER)."""
        return self is not ECCOutcome.CE


@dataclass(frozen=True)
class ECCConfig:
    """Parameters of the ECC and of the UEO/UER race.

    Attributes:
        correctable_bits: maximum number of wrong bits per codeword that the
            code corrects (1 for SEC-DED).
        detectable_bits: maximum number of wrong bits that the code is
            guaranteed to *detect*; beyond this, miscorrection is possible
            but we conservatively still classify as UCE.
        scrub_period_s: patrol scrubber full-sweep period in seconds.
        access_rate_hz: mean demand-access rate for a poisoned region.
            Together with ``scrub_period_s`` this sets the UEO:UER split;
            the defaults reproduce the roughly 48:52 UEO:UER row ratio of
            Table II.
    """

    correctable_bits: int = 1
    detectable_bits: int = 2
    scrub_period_s: float = 24 * 3600.0
    access_rate_hz: float = 1.95e-5

    def __post_init__(self) -> None:
        if self.correctable_bits < 0:
            raise ValueError("correctable_bits must be >= 0")
        if self.detectable_bits < self.correctable_bits:
            raise ValueError("detectable_bits must be >= correctable_bits")
        if self.scrub_period_s <= 0:
            raise ValueError("scrub_period_s must be positive")
        if self.access_rate_hz < 0:
            raise ValueError("access_rate_hz must be >= 0")


class ECCModel:
    """Classify raw bit-error events into CE / UEO / UER.

    The model is deliberately stateless: all randomness comes from the
    ``numpy.random.Generator`` the caller passes in, keeping fleet
    generation reproducible.
    """

    def __init__(self, config: ECCConfig | None = None) -> None:
        self.config = config or ECCConfig()

    def ueo_probability(self) -> float:
        """Probability that a UCE is detected by scrub before any access.

        Derivation: the corruption appears at a uniformly random phase
        ``u ~ U(0, T_s)`` of the scrub sweep, so the scrubber reaches it
        after time ``t_s = T_s - u``.  A demand access arrives after
        ``t_a ~ Exp(rate)``.  The UCE is a UEO iff ``t_s < t_a``:

            P(UEO) = E_u[exp(-rate * (T_s - u))]
                   = (1 - exp(-rate * T_s)) / (rate * T_s)
        """
        rate = self.config.access_rate_hz
        period = self.config.scrub_period_s
        if rate == 0.0:
            return 1.0
        x = rate * period
        return float((1.0 - math.exp(-x)) / x)

    def classify_bits(self, bit_errors: int, rng: np.random.Generator) -> ECCOutcome:
        """Classify an event given the number of simultaneous bit errors.

        Args:
            bit_errors: number of wrong bits in the worst affected codeword.
            rng: source of randomness for the UEO/UER race.
        """
        if bit_errors < 0:
            raise ValueError("bit_errors must be >= 0")
        if bit_errors == 0:
            raise ValueError("an error event must flip at least one bit")
        if bit_errors <= self.config.correctable_bits:
            return ECCOutcome.CE
        return self.classify_uncorrectable(rng)

    def classify_uncorrectable(self, rng: np.random.Generator) -> ECCOutcome:
        """Draw the UEO/UER outcome of a UCE from the scrub-vs-access race."""
        if rng.random() < self.ueo_probability():
            return ECCOutcome.UEO
        return ECCOutcome.UER
