"""Physical-address <-> device-coordinate mapping.

Raw MCE records on real platforms carry *physical byte addresses*; the
memory controller scatters consecutive addresses across channels, bank
groups and banks (interleaving) and often XOR-hashes bank bits against row
bits to spread row-buffer conflicts.  Decoding those addresses into
(channel, ..., bank, row, column) coordinates is a prerequisite for any
spatial analysis like the paper's — get the map wrong and genuine row
clusters look scattered.

:class:`AddressMapper` implements a configurable, invertible mapping for
one HBM device: a bit-field layout (LSB-first interleave order) plus an
optional bank-XOR hash, with round-trip guarantees tested by property
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.hbm.geometry import HBMGeometry

#: Field order of a decoded coordinate tuple.
FIELDS = ("column", "channel", "pseudo_channel", "bank_group", "bank",
          "sid", "row")


def _bits_for(count: int) -> int:
    bits = 0
    while (1 << bits) < count:
        bits += 1
    if (1 << bits) != count:
        raise ValueError(f"count {count} is not a power of two")
    return bits


@dataclass(frozen=True)
class AddressLayout:
    """Bit layout of the physical address, LSB first.

    ``order`` lists the fields from least- to most-significant; typical
    controllers interleave column and channel bits low (consecutive cache
    lines hit different channels) and put the row bits on top.
    """

    order: Tuple[str, ...] = ("column", "channel", "pseudo_channel",
                              "bank_group", "bank", "sid", "row")
    #: XOR the bank bits with these row bits (bank hashing); one entry per
    #: bank bit, each a row-bit index or -1 for "no hash on this bit".
    bank_xor_row_bits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(FIELDS):
            raise ValueError(f"order must be a permutation of {FIELDS}")


class AddressMapper:
    """Invertible physical-address codec for one HBM geometry."""

    def __init__(self, geometry: HBMGeometry = HBMGeometry(),
                 layout: AddressLayout = AddressLayout()) -> None:
        self.geometry = geometry
        self.layout = layout
        self._widths: Dict[str, int] = {
            "column": _bits_for(geometry.columns),
            "channel": _bits_for(geometry.channels),
            "pseudo_channel": _bits_for(geometry.pseudo_channels),
            "bank_group": _bits_for(geometry.bank_groups),
            "bank": _bits_for(geometry.banks),
            "sid": _bits_for(geometry.sids),
            "row": _bits_for(geometry.rows),
        }
        if (self.layout.bank_xor_row_bits
                and len(self.layout.bank_xor_row_bits)
                != self._widths["bank"]):
            raise ValueError("bank_xor_row_bits must have one entry per "
                             "bank bit")
        for row_bit in self.layout.bank_xor_row_bits:
            if row_bit >= self._widths["row"]:
                raise ValueError(f"row bit {row_bit} out of range")
        # bit offset of each field within the packed address
        offset = 0
        self._offsets: Dict[str, int] = {}
        for name in self.layout.order:
            self._offsets[name] = offset
            offset += self._widths[name]
        self.address_bits = offset

    # -- hashing -----------------------------------------------------------
    def _hash_bank(self, bank: int, row: int) -> int:
        for bit, row_bit in enumerate(self.layout.bank_xor_row_bits):
            if row_bit >= 0:
                bank ^= ((row >> row_bit) & 1) << bit
        return bank

    # -- public API -----------------------------------------------------------
    def encode(self, coordinate: Dict[str, int]) -> int:
        """Device coordinate -> physical address.

        ``coordinate`` maps every name in :data:`FIELDS` to its value;
        the *stored* bank bits are the hashed ones, so encode/decode are
        exact inverses.
        """
        missing = set(FIELDS) - set(coordinate)
        if missing:
            raise ValueError(f"missing fields: {sorted(missing)}")
        values = dict(coordinate)
        for name in FIELDS:
            if not 0 <= values[name] < (1 << self._widths[name]):
                raise ValueError(f"{name}={values[name]} out of range")
        values["bank"] = self._hash_bank(values["bank"], values["row"])
        address = 0
        for name in self.layout.order:
            address |= values[name] << self._offsets[name]
        return address

    def decode(self, address: int) -> Dict[str, int]:
        """Physical address -> device coordinate (hash removed)."""
        if not 0 <= address < (1 << self.address_bits):
            raise ValueError(f"address {address} out of range "
                             f"(needs {self.address_bits} bits)")
        values: Dict[str, int] = {}
        for name in self.layout.order:
            mask = (1 << self._widths[name]) - 1
            values[name] = (address >> self._offsets[name]) & mask
        values["bank"] = self._hash_bank(values["bank"], values["row"])
        return values

    def row_stride(self) -> int:
        """Physical-address distance between consecutive rows of one bank.

        Every field below the row bits contributes its full span; this is
        the stride spatial analyses must divide out when they work on raw
        addresses.
        """
        return 1 << self._offsets["row"]

    def neighbours_in_address_space(self, address: int,
                                    row_delta: int) -> int:
        """Address of the same cell ``row_delta`` rows away (same bank).

        Raises ``ValueError`` when the neighbour row leaves the bank.
        """
        coordinate = self.decode(address)
        row = coordinate["row"] + row_delta
        if not 0 <= row < self.geometry.rows:
            raise ValueError(f"row {row} outside the bank")
        coordinate["row"] = row
        return self.encode(coordinate)


def default_hbm2e_mapper() -> AddressMapper:
    """The mapper used by the examples: low-order channel interleave and a
    two-bit bank hash against low row bits."""
    return AddressMapper(layout=AddressLayout(
        bank_xor_row_bits=(0, 1)))
