"""Hierarchical device addresses and micro-levels.

Every error event carries a :class:`DeviceAddress` locating the failing cell
in the fleet.  The paper aggregates statistics at seven "micro-levels"
(Tables I and II): NPU, HBM, SID, PS-CH, BG, Bank and Row.  The
:class:`MicroLevel` enum and :meth:`DeviceAddress.key` make those
aggregations uniform: ``address.key(MicroLevel.BANK)`` is a hashable tuple
identifying the bank that contains the cell.

Addresses also pack into a single 64-bit integer (:meth:`DeviceAddress.pack`)
so they can be logged compactly in the MCE log dialect and round-tripped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.hbm.geometry import FleetGeometry


class MicroLevel(enum.IntEnum):
    """Aggregation levels used throughout the paper's empirical study.

    Ordered from coarse to fine; iteration order matches the rows of
    Tables I and II.  ``CHANNEL`` sits between SID and PS-CH in the real
    hierarchy; the paper does not report it, but the level is supported for
    completeness.
    """

    NPU = 0
    HBM = 1
    SID = 2
    CHANNEL = 3
    PS_CH = 4
    BG = 5
    BANK = 6
    ROW = 7

    @classmethod
    def paper_levels(cls) -> Tuple["MicroLevel", ...]:
        """The seven levels the paper reports, in table order."""
        return (cls.NPU, cls.HBM, cls.SID, cls.PS_CH, cls.BG, cls.BANK, cls.ROW)

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's table rows."""
        return _LEVEL_LABELS[self]


_LEVEL_LABELS = {
    MicroLevel.NPU: "NPU",
    MicroLevel.HBM: "HBM",
    MicroLevel.SID: "SID",
    MicroLevel.CHANNEL: "CH",
    MicroLevel.PS_CH: "PS-CH",
    MicroLevel.BG: "BG",
    MicroLevel.BANK: "Bank",
    MicroLevel.ROW: "Row",
}

# Bit widths used by pack()/unpack().  Generous enough for any realistic
# fleet: 14 bits of node, 3 bits of NPU slot, 3 bits of HBM slot, then the
# in-device hierarchy, 15 bits of row and 7 bits of column = 56 bits total.
_FIELD_BITS = (
    ("node", 14),
    ("npu", 3),
    ("hbm", 3),
    ("sid", 1),
    ("channel", 3),
    ("pseudo_channel", 1),
    ("bank_group", 2),
    ("bank", 2),
    ("row", 15),
    ("column", 7),
)

PACKED_ADDRESS_BITS = sum(bits for _, bits in _FIELD_BITS)


@dataclass(frozen=True, order=True)
class DeviceAddress:
    """Full coordinate of a cell in the fleet.

    The fields follow the containment hierarchy: ``node`` and ``npu`` locate
    the accelerator, ``hbm`` the stack on that NPU, and the remaining fields
    walk down the HBM2E hierarchy to a single (row, column) cell.
    """

    node: int
    npu: int
    hbm: int
    sid: int
    channel: int
    pseudo_channel: int
    bank_group: int
    bank: int
    row: int
    column: int = 0

    def key(self, level: MicroLevel) -> tuple:
        """Hashable identifier of the enclosing unit at ``level``.

        Keys are prefix tuples, so containment is literally tuple-prefix
        containment: ``addr.key(BANK)`` is a prefix of ``addr.key(ROW)``.
        """
        full = (
            self.node,
            self.npu,
            self.hbm,
            self.sid,
            self.channel,
            self.pseudo_channel,
            self.bank_group,
            self.bank,
            self.row,
        )
        return full[: _KEY_LENGTH[level]]

    def bank_key(self) -> tuple:
        """Shorthand for ``key(MicroLevel.BANK)`` (the most used key)."""
        return self.key(MicroLevel.BANK)

    def with_cell(self, row: int, column: int) -> "DeviceAddress":
        """Return a copy of this address pointing at another cell of the
        same bank."""
        return DeviceAddress(
            node=self.node,
            npu=self.npu,
            hbm=self.hbm,
            sid=self.sid,
            channel=self.channel,
            pseudo_channel=self.pseudo_channel,
            bank_group=self.bank_group,
            bank=self.bank,
            row=row,
            column=column,
        )

    def validate(self, fleet: FleetGeometry) -> None:
        """Raise ``ValueError`` if any field exceeds the fleet geometry."""
        if not 0 <= self.node < fleet.nodes:
            raise ValueError(f"node={self.node} out of range [0, {fleet.nodes})")
        if not 0 <= self.npu < fleet.npus_per_node:
            raise ValueError(
                f"npu={self.npu} out of range [0, {fleet.npus_per_node})")
        if not 0 <= self.hbm < fleet.hbms_per_npu:
            raise ValueError(
                f"hbm={self.hbm} out of range [0, {fleet.hbms_per_npu})")
        fleet.hbm.validate_bank_coord(
            self.sid, self.channel, self.pseudo_channel, self.bank_group, self.bank)
        fleet.hbm.validate_cell(self.row, self.column)

    def pack(self) -> int:
        """Encode the address into a single non-negative integer.

        The encoding is fixed-width (see ``_FIELD_BITS``) and independent of
        fleet geometry, so packed addresses are stable log artefacts.
        """
        value = 0
        for name, bits in _FIELD_BITS:
            field = getattr(self, name)
            if not 0 <= field < (1 << bits):
                raise ValueError(
                    f"{name}={field} does not fit in {bits} bits for packing")
            value = (value << bits) | field
        return value

    @classmethod
    def unpack(cls, value: int) -> "DeviceAddress":
        """Invert :meth:`pack`."""
        if value < 0 or value >= (1 << PACKED_ADDRESS_BITS):
            raise ValueError(f"packed address {value} out of range")
        fields = {}
        for name, bits in reversed(_FIELD_BITS):
            fields[name] = value & ((1 << bits) - 1)
            value >>= bits
        return cls(**fields)


_KEY_LENGTH = {
    MicroLevel.NPU: 2,
    MicroLevel.HBM: 3,
    MicroLevel.SID: 4,
    MicroLevel.CHANNEL: 5,
    MicroLevel.PS_CH: 6,
    MicroLevel.BG: 7,
    MicroLevel.BANK: 8,
    MicroLevel.ROW: 9,
}
