"""Per-bank error bookkeeping.

A :class:`BankState` is the sparse, mutable record of everything that has
been observed inside one bank: which cells faulted, which rows carry errors
of each type, and when.  The Cordial pipeline keys all of its decisions on
this unit — pattern classification, cross-row prediction and sparing all
operate per bank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hbm.ecc import ECCOutcome


@dataclass
class BankState:
    """Observed error state of one bank.

    Attributes:
        bank_key: hierarchical tuple identifying the bank (see
            ``DeviceAddress.bank_key``).
        rows: total rows in the bank (geometry).
        columns: total columns in the bank (geometry).
    """

    bank_key: tuple
    rows: int = 32768
    columns: int = 128
    # (row, column) -> number of events observed at that cell
    cell_hits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    # error type -> ordered list of (timestamp, row)
    row_events: Dict[ECCOutcome, List[Tuple[float, int]]] = field(
        default_factory=lambda: {outcome: [] for outcome in ECCOutcome})

    def record(self, timestamp: float, row: int, column: int,
               outcome: ECCOutcome) -> None:
        """Record one error event at a cell.

        Events must arrive in non-decreasing timestamp order; this is the
        natural order of an MCE log and the invariant every downstream
        feature extractor relies on.
        """
        if not 0 <= row < self.rows:
            raise ValueError(f"row={row} out of range [0, {self.rows})")
        if not 0 <= column < self.columns:
            raise ValueError(f"column={column} out of range [0, {self.columns})")
        events = self.row_events[outcome]
        if events and timestamp < events[-1][0]:
            raise ValueError(
                "events must be recorded in non-decreasing timestamp order")
        events.append((timestamp, row))
        cell = (row, column)
        self.cell_hits[cell] = self.cell_hits.get(cell, 0) + 1

    def rows_with(self, outcome: ECCOutcome) -> Set[int]:
        """Distinct rows that saw at least one event of ``outcome``."""
        return {row for _, row in self.row_events[outcome]}

    def uer_rows_in_order(self) -> List[int]:
        """Distinct UER rows in first-occurrence order."""
        seen: Set[int] = set()
        ordered: List[int] = []
        for _, row in self.row_events[ECCOutcome.UER]:
            if row not in seen:
                seen.add(row)
                ordered.append(row)
        return ordered

    def first_event_time(self, outcome: ECCOutcome) -> Optional[float]:
        """Timestamp of the first event of ``outcome``, or ``None``."""
        events = self.row_events[outcome]
        return events[0][0] if events else None

    def event_count(self, outcome: ECCOutcome) -> int:
        """Total number of events of ``outcome`` recorded so far."""
        return len(self.row_events[outcome])

    def error_map(self) -> Dict[Tuple[int, int], int]:
        """Copy of the sparse (row, column) -> hit-count map.

        This is the data behind Figure 3(a) of the paper (bank error maps).
        """
        return dict(self.cell_hits)
