"""Patrol scrubber model.

Patrol scrubbing (Section II-B) periodically sweeps memory to find and
repair latent errors before a demand access consumes them.  The scrubber's
sweep position determines *when* a latent corruption is discovered, which
in turn decides whether an uncorrectable error surfaces as a UEO (scrub
found it) or a UER (the workload hit it first).  :class:`repro.hbm.ecc`
uses the closed-form race probability; this module provides the explicit
sweep model for callers that need discovery *times* (e.g. event
timestamping in the fleet generator).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PatrolScrubber:
    """Deterministic linear sweep over a bank's rows.

    The scrubber visits rows in order, completing a full pass over
    ``total_rows`` every ``period_s`` seconds, then wraps around.
    """

    period_s: float = 24 * 3600.0
    total_rows: int = 32768

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.total_rows <= 0:
            raise ValueError("total_rows must be positive")

    def position_at(self, t: float) -> int:
        """Row the scrubber is visiting at time ``t`` (t=0 starts row 0)."""
        phase = (t % self.period_s) / self.period_s
        return min(self.total_rows - 1, int(phase * self.total_rows))

    def next_visit(self, row: int, after: float) -> float:
        """First time strictly after ``after`` at which ``row`` is scrubbed."""
        if not 0 <= row < self.total_rows:
            raise ValueError(f"row={row} out of range [0, {self.total_rows})")
        row_phase = row / self.total_rows * self.period_s
        cycles = int(after // self.period_s)
        candidate = cycles * self.period_s + row_phase
        while candidate <= after:
            candidate += self.period_s
        return candidate

    def discovery_delay(self, row: int, corrupted_at: float) -> float:
        """Latency from corruption to scrub discovery for ``row``."""
        return self.next_visit(row, corrupted_at) - corrupted_at
