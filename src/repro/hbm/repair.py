"""Post-package repair (PPR) flow on top of row sparing.

Row sparing in deployed HBMs is realised through post-package repair:
*soft* PPR remaps a row in volatile repair registers (instant, lost on
power cycle), *hard* PPR burns the remap into fuses (permanent, but the
bank must be quiesced and the procedure takes milliseconds-seconds and can
fail).  The paper's mitigation layer assumes such a mechanism exists; this
module models its lifecycle so the examples/benches can account for repair
latency and failure, including the page-locking failure mode the paper
cites from [21].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hbm.sparing import RowSparingController, SparingExhaustedError


class RepairState(enum.Enum):
    """Lifecycle of one row repair."""

    REQUESTED = "requested"
    SOFT_REPAIRED = "soft"
    HARD_REPAIRED = "hard"
    FAILED = "failed"


@dataclass(frozen=True)
class RepairRecord:
    """One repair attempt's outcome."""

    bank_key: tuple
    row: int
    requested_at: float
    completed_at: Optional[float]
    state: RepairState


@dataclass
class PPRPolicy:
    """Timing/reliability parameters of the repair flow.

    Attributes:
        soft_latency_s: request -> soft repair active.
        hard_latency_s: soft -> fuse-blown hard repair.
        hard_failure_prob: probability a hard PPR attempt fails (bad fuse,
            interrupted copy); the row stays soft-repaired.
        soft_failure_prob: probability even the soft remap fails (row
            busy/locked), leaving the row unprotected.
    """

    soft_latency_s: float = 0.5
    hard_latency_s: float = 30.0
    hard_failure_prob: float = 0.02
    soft_failure_prob: float = 0.01

    def __post_init__(self) -> None:
        if self.soft_latency_s < 0 or self.hard_latency_s < 0:
            raise ValueError("latencies must be >= 0")
        for p in (self.hard_failure_prob, self.soft_failure_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("failure probabilities must be in [0, 1]")


class PPRManager:
    """Executes repair requests against a row-sparing budget.

    Wraps a :class:`~repro.hbm.sparing.RowSparingController`: a repair
    only consumes a spare row when the soft stage succeeds, and the
    effective isolation time includes the soft latency — a UER landing in
    the latency window is *not* preempted, matching the time-aware ICR
    semantics.
    """

    def __init__(self, policy: Optional[PPRPolicy] = None,
                 spares_per_bank: int = 64,
                 seed: Optional[int] = 0) -> None:
        self.policy = policy or PPRPolicy()
        self.controller = RowSparingController(
            spares_per_bank=spares_per_bank)
        self._rng = np.random.default_rng(seed)
        self.records: List[RepairRecord] = []

    def request_repair(self, bank_key: tuple, row: int,
                       timestamp: float) -> RepairRecord:
        """Request one row repair at ``timestamp``; returns its outcome."""
        policy = self.policy
        if self._rng.random() < policy.soft_failure_prob:
            record = RepairRecord(bank_key, row, timestamp, None,
                                  RepairState.FAILED)
            self.records.append(record)
            return record
        active_at = timestamp + policy.soft_latency_s
        try:
            newly = self.controller.spare_row(bank_key, row, active_at)
        except SparingExhaustedError:
            record = RepairRecord(bank_key, row, timestamp, None,
                                  RepairState.FAILED)
            self.records.append(record)
            return record
        if not newly:
            # already repaired earlier: report the original state
            record = RepairRecord(bank_key, row, timestamp,
                                  self.controller.isolation_time(bank_key,
                                                                 row),
                                  RepairState.SOFT_REPAIRED)
            self.records.append(record)
            return record
        if self._rng.random() < policy.hard_failure_prob:
            record = RepairRecord(bank_key, row, timestamp, active_at,
                                  RepairState.SOFT_REPAIRED)
        else:
            record = RepairRecord(
                bank_key, row, timestamp,
                active_at + policy.hard_latency_s,
                RepairState.HARD_REPAIRED)
        self.records.append(record)
        return record

    def request_block(self, bank_key: tuple, rows, timestamp: float
                      ) -> List[RepairRecord]:
        """Repair a whole predicted block; returns per-row outcomes."""
        return [self.request_repair(bank_key, row, timestamp)
                for row in rows]

    def is_protected(self, bank_key: tuple, row: int,
                     at_time: Optional[float] = None) -> bool:
        """Whether ``row`` is remapped (strictly before ``at_time``)."""
        return self.controller.is_isolated(bank_key, row, at_time=at_time)

    def summary(self) -> Dict[str, int]:
        """Counts of repair outcomes by state."""
        out: Dict[str, int] = {state.value: 0 for state in RepairState}
        for record in self.records:
            out[record.state.value] += 1
        out.pop(RepairState.REQUESTED.value, None)
        return out

    def survival_after_power_cycle(self) -> Tuple[int, int]:
        """(surviving, lost) repairs after a power cycle.

        Hard repairs persist; soft-only repairs are lost — the operational
        argument for scheduling hard PPR before maintenance reboots.
        """
        surviving = sum(1 for r in self.records
                        if r.state is RepairState.HARD_REPAIRED)
        lost = sum(1 for r in self.records
                   if r.state is RepairState.SOFT_REPAIRED)
        return surviving, lost
