"""Device-level containers: HBM stacks, NPUs and the fleet.

These are thin, lazily-populated containers over :class:`BankState`.  The
fleet is enormous (>80,000 HBMs x 1024 banks each) and almost entirely
healthy, so state is materialised only for banks that actually see errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.hbm.bank import BankState
from repro.hbm.geometry import FleetGeometry, HBMGeometry
from repro.hbm.address import DeviceAddress, MicroLevel
from repro.hbm.ecc import ECCOutcome


@dataclass
class HBMDevice:
    """One HBM stack: a sparse map of touched banks."""

    hbm_key: tuple
    geometry: HBMGeometry = field(default_factory=HBMGeometry)
    banks: Dict[tuple, BankState] = field(default_factory=dict)

    def bank(self, address: DeviceAddress) -> BankState:
        """Get (or lazily create) the bank containing ``address``."""
        key = address.bank_key()
        if key[:3] != self.hbm_key:
            raise ValueError(f"address {address} is not on HBM {self.hbm_key}")
        state = self.banks.get(key)
        if state is None:
            state = BankState(
                bank_key=key,
                rows=self.geometry.rows,
                columns=self.geometry.columns,
            )
            self.banks[key] = state
        return state

    @property
    def touched_bank_count(self) -> int:
        """Number of banks that have recorded at least one event."""
        return len(self.banks)


@dataclass
class NPUState:
    """One NPU: a sparse map of its touched HBM stacks."""

    npu_key: tuple
    geometry: HBMGeometry = field(default_factory=HBMGeometry)
    hbms: Dict[tuple, HBMDevice] = field(default_factory=dict)

    def hbm(self, address: DeviceAddress) -> HBMDevice:
        """Get (or lazily create) the HBM stack containing ``address``."""
        key = address.key(MicroLevel.HBM)
        if key[:2] != self.npu_key:
            raise ValueError(f"address {address} is not on NPU {self.npu_key}")
        device = self.hbms.get(key)
        if device is None:
            device = HBMDevice(hbm_key=key, geometry=self.geometry)
            self.hbms[key] = device
        return device


@dataclass
class FleetState:
    """Sparse state of the whole fleet, populated as errors arrive."""

    geometry: FleetGeometry = field(default_factory=FleetGeometry)
    npus: Dict[tuple, NPUState] = field(default_factory=dict)

    def record(self, timestamp: float, address: DeviceAddress,
               outcome: ECCOutcome, validate: bool = False) -> BankState:
        """Record one classified error event and return the affected bank.

        Args:
            timestamp: event time in seconds.
            address: full cell coordinate.
            outcome: ECC classification of the event.
            validate: when True, check the address against fleet geometry
                (off by default — the hot path of fleet generation).
        """
        if validate:
            address.validate(self.geometry)
        npu_key = address.key(MicroLevel.NPU)
        npu = self.npus.get(npu_key)
        if npu is None:
            npu = NPUState(npu_key=npu_key, geometry=self.geometry.hbm)
            self.npus[npu_key] = npu
        bank = npu.hbm(address).bank(address)
        bank.record(timestamp, address.row, address.column, outcome)
        return bank

    def iter_banks(self) -> Iterator[Tuple[tuple, BankState]]:
        """Iterate over every touched (bank_key, BankState) pair."""
        for npu in self.npus.values():
            for hbm in npu.hbms.values():
                for key, bank in hbm.banks.items():
                    yield key, bank

    @property
    def touched_bank_count(self) -> int:
        """Number of banks in the fleet with at least one event."""
        return sum(1 for _ in self.iter_banks())
