"""Sparing (isolation) mechanisms and their bookkeeping.

The paper's mitigation story (Sections I and IV) uses three mechanisms:

* **row sparing** — remap a failing row to one of a bank's spare rows;
  cheap, finite budget per bank.  Cordial row-spares the blocks its
  cross-row predictor flags.
* **bank sparing** — retire a whole bank; expensive, used for scattered
  patterns where row-level mitigation cannot keep up.
* **page offlining** — the OS-level fallback that unmaps the 4 KiB pages
  backed by a failing row.

All three controllers share one :class:`IsolationLedger`-style contract:
isolating a region stamps it with the isolation time, and coverage queries
are *time-aware* — a UER row only counts as covered when it was isolated
strictly before the UER occurred.  That is exactly the semantics of the
paper's Isolation Coverage Rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


class SparingExhaustedError(RuntimeError):
    """Raised when a bank has no spare resources left for a request."""


@dataclass
class RowSparingController:
    """Finite pool of spare rows per bank.

    HBM banks carry a small number of spare rows usable through
    post-package repair; we default to 64 per bank, a generous but bounded
    budget so exhaustion behaviour is exercised.
    """

    spares_per_bank: int = 64
    # bank_key -> {row -> isolation timestamp}
    _spared: Dict[tuple, Dict[int, float]] = field(default_factory=dict)

    def spare_row(self, bank_key: tuple, row: int, timestamp: float) -> bool:
        """Spare one row at ``timestamp``.

        Returns True when the row was newly spared, False when it had
        already been spared earlier (idempotent).  Raises
        :class:`SparingExhaustedError` when the bank's budget is used up.
        """
        rows = self._spared.setdefault(bank_key, {})
        if row in rows:
            return False
        if len(rows) >= self.spares_per_bank:
            raise SparingExhaustedError(
                f"bank {bank_key} has no spare rows left "
                f"({self.spares_per_bank} used)")
        rows[row] = timestamp
        return True

    def spare_rows(self, bank_key: tuple, rows: Iterable[int],
                   timestamp: float) -> int:
        """Spare many rows; stops silently when the budget runs out.

        Returns the number of rows newly spared.  Bulk isolation requests
        (e.g. a predicted 8-row block) should not abort halfway because the
        last row did not fit, hence the soft failure mode here.
        """
        spared = 0
        for row in rows:
            try:
                if self.spare_row(bank_key, row, timestamp):
                    spared += 1
            except SparingExhaustedError:
                break
        return spared

    def remaining(self, bank_key: tuple) -> int:
        """Spare rows still available in ``bank_key``."""
        return self.spares_per_bank - len(self._spared.get(bank_key, {}))

    def isolation_time(self, bank_key: tuple, row: int) -> Optional[float]:
        """When ``row`` was spared, or ``None`` if it was not."""
        return self._spared.get(bank_key, {}).get(row)

    def is_isolated(self, bank_key: tuple, row: int,
                    at_time: Optional[float] = None) -> bool:
        """Whether ``row`` is isolated (optionally: strictly before
        ``at_time``)."""
        when = self.isolation_time(bank_key, row)
        if when is None:
            return False
        return at_time is None or when < at_time

    def spared_row_count(self, bank_key: tuple) -> int:
        """Number of rows spared so far in ``bank_key``."""
        return len(self._spared.get(bank_key, {}))

    def total_spared_rows(self) -> int:
        """Fleet-wide number of spared rows (the cost side of ICR)."""
        return sum(len(rows) for rows in self._spared.values())


@dataclass
class BankSparingController:
    """Whole-bank retirement with isolation timestamps."""

    _spared: Dict[tuple, float] = field(default_factory=dict)

    def spare_bank(self, bank_key: tuple, timestamp: float) -> bool:
        """Retire a bank; returns False when already retired (idempotent)."""
        if bank_key in self._spared:
            return False
        self._spared[bank_key] = timestamp
        return True

    def isolation_time(self, bank_key: tuple) -> Optional[float]:
        """When ``bank_key`` was retired, or ``None``."""
        return self._spared.get(bank_key)

    def is_isolated(self, bank_key: tuple,
                    at_time: Optional[float] = None) -> bool:
        """Whether the bank is retired (optionally strictly before
        ``at_time``)."""
        when = self._spared.get(bank_key)
        if when is None:
            return False
        return at_time is None or when < at_time

    def spared_bank_count(self) -> int:
        """Number of banks retired fleet-wide."""
        return len(self._spared)


@dataclass
class PageOfflineManager:
    """OS-level page offlining mapped onto HBM rows.

    A row of ``row_bytes`` backs ``row_bytes / page_bytes`` pages (or a
    fraction of one page when rows are smaller than pages).  Offlining a
    row means offlining every page it backs; the manager tracks offline
    pages per bank and answers the same time-aware coverage queries as the
    hardware controllers.  Following the paper's citation of page-offline
    pitfalls, an offline request can fail when the page is "locked"
    (busy copying); callers inject the failure decision.
    """

    page_bytes: int = 4096
    row_bytes: int = 1024
    _offline: Dict[Tuple[tuple, int], float] = field(default_factory=dict)
    failed_requests: int = 0

    def pages_for_row(self, row: int) -> List[int]:
        """Page indices (within the bank's linear space) backing ``row``."""
        if self.row_bytes >= self.page_bytes:
            pages_per_row = self.row_bytes // self.page_bytes
            first = row * pages_per_row
            return list(range(first, first + pages_per_row))
        rows_per_page = self.page_bytes // self.row_bytes
        return [row // rows_per_page]

    def offline_row(self, bank_key: tuple, row: int, timestamp: float,
                    locked: bool = False) -> bool:
        """Offline the pages backing ``row``.

        Args:
            locked: when True the request fails (page locked mid-copy),
                modelling the unsuccessful recoveries the paper cites.
        """
        if locked:
            self.failed_requests += 1
            return False
        for page in self.pages_for_row(row):
            self._offline.setdefault((bank_key, page), timestamp)
        return True

    def is_row_offline(self, bank_key: tuple, row: int,
                       at_time: Optional[float] = None) -> bool:
        """Whether every page backing ``row`` is offline (before
        ``at_time``)."""
        for page in self.pages_for_row(row):
            when = self._offline.get((bank_key, page))
            if when is None or (at_time is not None and when >= at_time):
                return False
        return True

    def offline_page_count(self) -> int:
        """Number of distinct offline pages fleet-wide."""
        return len(self._offline)


def covered_rows(row_ctrl: RowSparingController,
                 bank_ctrl: BankSparingController,
                 bank_key: tuple,
                 uer_rows: Iterable[Tuple[int, float]]) -> Set[int]:
    """Rows whose UER was preempted by row- or bank-level isolation.

    Args:
        uer_rows: iterable of ``(row, first_uer_timestamp)`` pairs.

    A row counts as covered when either the row itself or the whole bank
    was isolated strictly before its first UER — the numerator of the
    paper's Isolation Coverage Rate.
    """
    covered: Set[int] = set()
    for row, when in uer_rows:
        if bank_ctrl.is_isolated(bank_key, at_time=when):
            covered.add(row)
        elif row_ctrl.is_isolated(bank_key, row, at_time=when):
            covered.add(row)
    return covered
