"""cordial-repro: a from-scratch reproduction of Cordial (DSN-S 2025).

Cordial is a cross-row failure-prediction method for High Bandwidth
Memory: classify a failing bank's pattern from its first three
uncorrectable errors, then predict which 8-row blocks around the last
failure will fail next and spare them preemptively.

Subpackages, bottom-up (see docs/ARCHITECTURE.md):

* :mod:`repro.hbm` — the HBM2E hardware model (hierarchy, ECC, sparing);
* :mod:`repro.telemetry` — MCE logs, the indexed error store, the
  streaming BMC collector;
* :mod:`repro.faults` — physical fault models and fleet placement;
* :mod:`repro.datasets` — the calibrated synthetic fleet generator;
* :mod:`repro.ml` — tree-based learning implemented on numpy alone;
* :mod:`repro.core` — the Cordial method, baselines and operations layer;
* :mod:`repro.analysis` — the paper's empirical study;
* :mod:`repro.experiments` — one entry point per table/figure.

Console scripts: ``cordial-repro`` (reproduce the paper's evaluation) and
``repro-cli`` (the operator workflow over MCE log files).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
