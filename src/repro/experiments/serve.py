"""Streaming serve-replay harness: drive ``CordialService`` over a fleet.

``cordial-repro serve-replay`` generates a fleet, trains a pipeline on
the 70 % bank split, then streams the 30 % test split through a
:class:`~repro.core.online.CordialService` event by event — optionally
shuffled within a skew bound, and optionally checkpoint/restored halfway
— and dumps a metrics JSON report.  The report's trigger and decision
counts match ``Cordial.evaluate`` on the same data (locked down by
``tests/test_serving_equivalence.py``), so the serving path can be
smoke-checked in CI without a separate ground-truth harness.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.online import CordialService, Decision
from repro.core.pipeline import Cordial
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups
from repro.obs import Observability, build_provenance
from repro.obs.tracer import resolve_clock
from repro.telemetry.events import ErrorRecord
from repro.telemetry.metrics import MetricsRegistry

#: Split seed matching the test-suite convention (`tests/conftest.py`).
SPLIT_SEED = 7


def bounded_shuffle(records: Sequence[ErrorRecord], max_skew: float,
                    seed: int = 0) -> List[ErrorRecord]:
    """Shuffle a time-sorted stream so displacement stays within the skew.

    Each record's *arrival* position is perturbed by sorting on
    ``timestamp + jitter`` with ``|jitter| < max_skew / 2``, so no event
    arrives after an event more than ``max_skew`` newer — the exact
    disorder the collector's reorder buffer guarantees to absorb.
    Timestamps themselves are untouched.

    Non-finite timestamps are rejected: NaN compares false against
    everything, so a single poisoned value would silently scramble the
    ``argsort`` ordering far beyond the skew bound.  The strict MCE
    parser already refuses them at ingest; a shuffle harness fed one
    got a malformed stream, not a shuffle request.
    """
    if max_skew <= 0:
        return list(records)
    timestamps = np.asarray([r.timestamp for r in records], dtype=float)
    if timestamps.size and not np.isfinite(timestamps).all():
        bad = int(np.count_nonzero(~np.isfinite(timestamps)))
        raise ValueError(
            f"bounded_shuffle: {bad} record(s) carry non-finite "
            "timestamps, which would silently poison the argsort "
            "ordering; reject them upstream (the MCE parser does)")
    rng = np.random.default_rng(seed)
    half = 0.49 * max_skew
    jitter = rng.uniform(-half, half, size=len(records))
    order = np.argsort(timestamps + jitter, kind="stable")
    return [records[i] for i in order]


def serve_stream(service: CordialService,
                 records: Sequence[ErrorRecord],
                 checkpoint_path: Optional[str] = None,
                 checkpoint_at: Optional[int] = None,
                 ) -> Tuple[CordialService, List[Decision]]:
    """Feed ``records`` through ``service`` (ingest + final flush).

    When both ``checkpoint_path`` and ``checkpoint_at`` are given, the
    service is snapshotted after ``checkpoint_at`` events, *restored from
    that file into a fresh service*, and the stream continues on the
    restored instance — exercising the crash/restart path for real.

    Returns ``(service, decisions)`` — the service actually holding the
    final state (the restored one when a checkpoint was taken).

    Raises ``ValueError`` when ``checkpoint_at`` lies outside the
    stream: the restart path would silently never run, which is a
    misconfiguration (the checkpoint you asked for does not exist), not
    a degenerate no-op.
    """
    if checkpoint_path is not None and checkpoint_at is not None:
        if not 1 <= checkpoint_at <= len(records):
            raise ValueError(
                f"checkpoint_at={checkpoint_at} outside the stream "
                f"(1..{len(records)}); the checkpoint would never fire")
    decisions: List[Decision] = []
    for index, record in enumerate(records):
        decisions.extend(service.ingest(record))
        if checkpoint_path is not None and checkpoint_at == index + 1:
            from repro.core.persistence import (load_service_checkpoint,
                                                save_service_checkpoint)
            # The live obs bundle survives the restart: the journal file
            # keeps appending and the audit trail resumes from the
            # checkpointed records (the ``obs`` slice of the document).
            obs = service.obs
            if obs is not None:
                obs.journal.checkpoint("save", at_event=index + 1)
            save_service_checkpoint(service, checkpoint_path)
            service = load_service_checkpoint(checkpoint_path, obs=obs)
            if obs is not None:
                obs.journal.checkpoint("restore", at_event=index + 1)
    decisions.extend(service.flush())
    return service, decisions


def build_report(service: CordialService, decisions: Sequence[Decision],
                 uer_rows_by_bank: Dict[tuple, Sequence[Tuple[float, int]]],
                 config: Optional[dict] = None,
                 timing: Optional[dict] = None) -> dict:
    """Assemble the serve-replay metrics report (JSON-ready).

    Args:
        timing: optional wall/CPU duration block (see
            :class:`TimingProbe`), included verbatim under
            ``"timing"``.
    """
    icr = service.replay.result(uer_rows_by_bank)
    actions = dict(service.stats.decisions_by_action)
    dead = service.collector.dead_letter_counts
    trigger_decisions = [d for d in decisions if not d.is_reprediction]
    report = {
        "config": dict(config or {}),
        "summary": {
            "events_ingested": service.stats.events_ingested,
            # Sorted like decisions_by_action below: quarantine order
            # varies run to run, report bytes must not.
            "events_dead_lettered": {k: dead[k] for k in sorted(dead)},
            "triggers_fired": service.stats.triggers_fired,
            "repredictions": service.stats.repredictions,
            "decisions_total": len(decisions),
            "decisions_by_action": {k: actions[k] for k in sorted(actions)},
            "trigger_decisions": len(trigger_decisions),
            "bank_spares": sum(1 for d in trigger_decisions
                               if d.action == "bank-spare"),
            "row_spare_triggers": sum(1 for d in trigger_decisions
                                      if d.action == "row-spare"),
            "spared_rows": service.spared_rows,
            "spared_banks": service.spared_banks,
            "sparing_requests_truncated": service.replay.truncated_requests,
            "sparing_rows_truncated": service.replay.truncated_rows,
            "sparing_duplicate_rows": service.replay.duplicate_rows,
            "icr": icr.icr,
            "icr_row_sparing_only": icr.icr_row_sparing_only,
            "covered_rows": icr.covered_rows,
            "total_uer_rows": icr.total_rows,
        },
        "metrics": service.metrics.as_dict(),
    }
    if timing is not None:
        report["timing"] = dict(timing)
    return report


class TimingProbe:
    """Wall/CPU stopwatch for one serving stretch.

    Wall time reads the *trace clock* — the tracer's clock when an
    :class:`~repro.obs.Observability` bundle is given, otherwise
    :func:`repro.obs.tracer.resolve_clock` (which honours
    ``REPRO_FAKE_CLOCK``, making the wall figures reproducible in
    tests); CPU time always reads :func:`time.process_time`.
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._clock = (obs.tracer.clock if obs is not None
                       else resolve_clock(None))
        self._wall_start = self._clock()
        self._cpu_start = time.process_time()

    def finish(self, events: int) -> dict:
        """The ``timing`` report block after ``events`` stream events."""
        wall = self._clock() - self._wall_start
        cpu = time.process_time() - self._cpu_start
        return {
            "wall_seconds": wall,
            "cpu_seconds": cpu,
            "events": int(events),
            "events_per_second": events / wall if wall > 0 else 0.0,
        }


def prepare_serving_run(scale: float = 0.12, seed: int = 42,
                        model_name: str = "LightGBM", jobs: int = 1,
                        ) -> Tuple[Cordial, List[ErrorRecord], Dict, dict]:
    """Generate a fleet, train a pipeline, and carve out the test stream.

    The shared front half of every serving harness (serve-replay, the
    chaos campaign): returns ``(cordial, stream, truth, meta)`` where
    ``stream`` is the time-sorted test-split event stream, ``truth`` is
    the per-bank ``(first_uer_time, row)`` ground truth for ICR scoring,
    and ``meta`` carries split bookkeeping for reports.
    """
    dataset = generate_fleet_dataset(FleetGenConfig(scale=scale), seed=seed,
                                     jobs=jobs)
    train_banks, test_banks = train_test_split_groups(
        dataset.uer_banks, test_fraction=0.3, seed=SPLIT_SEED)
    cordial = Cordial(model_name=model_name, random_state=0, n_jobs=jobs)
    cordial.fit(dataset, train_banks)

    test_set = set(test_banks)
    stream = [r for r in dataset.store if r.bank_key in test_set]
    truth = {bank: dataset.bank_truth[bank].uer_row_sequence
             for bank in test_banks
             if dataset.bank_truth[bank].uer_row_sequence}
    meta = {"test_banks": len(test_banks)}
    return cordial, stream, truth, meta


def run_serve_replay(scale: float = 0.12, seed: int = 42,
                     model_name: str = "LightGBM", max_skew: float = 0.0,
                     shuffle: bool = False, shuffle_seed: int = 0,
                     spares_per_bank: int = 64, jobs: int = 1,
                     checkpoint_path: Optional[str] = None,
                     checkpoint_at: Optional[int] = None,
                     shards: Optional[int] = None,
                     obs_dir: Optional[str] = None,
                     audit_attributions: bool = False,
                     supervise: bool = False, max_restarts: int = 3,
                     batch_timeout: float = 30.0, poison_threshold: int = 2,
                     snapshot_every: int = 8) -> dict:
    """Generate, train, stream, and report — the full serve-replay run.

    Args:
        shards: when given, serve through the sharded fleet engine
            (``repro.serving``) with this many bank-key shards and
            ``jobs`` worker processes; decisions, ICR, and the merged
            metrics document are identical for any shard count (only
            the timing block differs).  ``checkpoint_path`` then names
            a fleet checkpoint *directory* (manifest + per-shard
            files), and ``obs_dir`` grows per-shard subdirectories.
        supervise: run the fleet under a
            :class:`~repro.serving.supervisor.ShardSupervisor` (requires
            ``shards``): worker failures are detected, workers restarted
            deterministically, poison records quarantined, and exhausted
            shards failed over to in-process execution — with output
            still byte-identical.  ``max_restarts`` / ``batch_timeout``
            / ``poison_threshold`` / ``snapshot_every`` tune the policy;
            the report gains a ``supervision`` counters block.
        obs_dir: when given, attach a full observability bundle and
            write its artifacts (journal, trace, audit trail, metrics,
            Prometheus exposition, summary) into this directory; the
            decisions and ICR stay byte-identical to an unobserved run.
        audit_attributions: record per-feature attributions for every
            flagged block in the audit trail (slow; implies ``obs_dir``).
    """
    if supervise and shards is None:
        raise ValueError("supervision requires a sharded fleet "
                         "(--supervise needs --shards)")
    cordial, stream, truth, meta = prepare_serving_run(
        scale=scale, seed=seed, model_name=model_name, jobs=jobs)
    if shuffle:
        stream = bounded_shuffle(stream, max_skew, seed=shuffle_seed)
    if checkpoint_path is not None and checkpoint_at is None:
        checkpoint_at = max(1, len(stream) // 2)

    config = {
        "scale": scale,
        "seed": seed,
        "model_name": model_name,
        "max_skew": max_skew,
        "shuffle": shuffle,
        "shuffle_seed": shuffle_seed,
        "spares_per_bank": spares_per_bank,
        "test_banks": meta["test_banks"],
        "stream_events": len(stream),
        "checkpointed_at": checkpoint_at if checkpoint_path else None,
    }
    if shards is not None:
        config["shards"] = shards
        supervisor = None
        if supervise:
            from repro.serving import SupervisorConfig

            supervisor = SupervisorConfig(
                max_restarts=max_restarts, batch_timeout=batch_timeout,
                poison_threshold=poison_threshold,
                snapshot_every=snapshot_every)
            config["supervise"] = {
                "max_restarts": max_restarts,
                "batch_timeout": batch_timeout,
                "poison_threshold": poison_threshold,
                "snapshot_every": snapshot_every,
            }
        return _run_serve_replay_sharded(
            cordial, stream, truth, config, shards=shards, jobs=jobs,
            max_skew=max_skew, spares_per_bank=spares_per_bank,
            checkpoint_path=checkpoint_path, checkpoint_at=checkpoint_at,
            obs_dir=obs_dir, audit_attributions=audit_attributions,
            seed=seed, shuffle_seed=shuffle_seed, supervisor=supervisor)
    metrics = MetricsRegistry()
    obs = None
    if obs_dir is not None:
        obs = Observability.create(
            obs_dir, metrics=metrics,
            provenance=build_provenance(
                seeds={"generator": seed, "shuffle": shuffle_seed,
                       "split": SPLIT_SEED},
                config=config),
            attributions=audit_attributions)
    service = CordialService(cordial, spares_per_bank=spares_per_bank,
                             max_skew=max_skew, metrics=metrics, obs=obs)

    probe = TimingProbe(obs)
    service, decisions = serve_stream(service, stream,
                                      checkpoint_path=checkpoint_path,
                                      checkpoint_at=checkpoint_at)
    timing = probe.finish(len(stream))

    report = build_report(service, decisions, truth, config=config,
                          timing=timing)
    if obs is not None:
        artifacts = obs.export(obs_dir, metrics=service.metrics)
        report["obs"] = {"artifacts": artifacts, "summary": obs.summary()}
    return report


def _run_serve_replay_sharded(cordial, stream, truth, config, *,
                              shards: int, jobs: int, max_skew: float,
                              spares_per_bank: int,
                              checkpoint_path: Optional[str],
                              checkpoint_at: Optional[int],
                              obs_dir: Optional[str],
                              audit_attributions: bool,
                              seed: int, shuffle_seed: int,
                              supervisor=None) -> dict:
    """The ``--shards`` serve-replay path: fleet engine + merged report.

    The merged service is a real :class:`CordialService`, so
    :func:`build_report` runs on it unchanged; only the metrics block is
    taken from the fleet merge (counters only — gauges and histograms
    are per-shard wall-clock series with no shard-count-invariant
    meaning), which is what makes the report byte-comparable across
    shard counts modulo the timing block.
    """
    from repro.serving import ShardedCordialEngine, serve_stream_sharded

    provenance = None
    if obs_dir is not None:
        provenance = build_provenance(
            seeds={"generator": seed, "shuffle": shuffle_seed,
                   "split": SPLIT_SEED},
            config=config)
    engine = ShardedCordialEngine(
        cordial, n_shards=shards, n_jobs=jobs,
        spares_per_bank=spares_per_bank, max_skew=max_skew,
        obs_dir=obs_dir, obs_provenance=provenance,
        obs_attributions=audit_attributions, supervisor=supervisor)
    probe = TimingProbe(None)
    try:
        engine, outcome = serve_stream_sharded(
            engine, stream, checkpoint_dir=checkpoint_path,
            checkpoint_at=checkpoint_at if checkpoint_path else None)
    finally:
        engine.close()
    timing = probe.finish(len(stream))

    report = build_report(outcome.service, outcome.decisions, truth,
                          config=config, timing=timing)
    report["metrics"] = outcome.metrics
    if engine.supervisor_metrics is not None:
        # Coordinator-side supervision counters live outside the merged
        # registry so the merged metrics stay byte-identical under
        # faults; the report carries them as their own block.
        report["supervision"] = engine.supervisor_metrics.as_dict()
    if outcome.obs is not None:
        report["obs"] = outcome.obs
    return report
