"""CLI driving every experiment: ``cordial-repro [--scale S] [--seed N]``.

Runs E1-E7 in order, prints each paper-vs-measured table, and (with
``--output``) writes a combined report suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import fig3, fig4, table1, table2, table3, table4
from repro.experiments.common import ExperimentContext


def run_all(context: ExperimentContext, include_models: bool = True,
            include_examples: bool = False) -> str:
    """Run every experiment and return the combined report text.

    Args:
        include_models: also run the (expensive) Table III/IV model
            training; the analysis-only experiments always run.
        include_examples: append the ASCII Figure 3(a) maps.
    """
    sections: List[str] = []

    def section(title: str, body: str, elapsed: float) -> None:
        sections.append(f"== {title} ({elapsed:.1f}s) ==\n{body}\n")

    start = time.time()
    result1 = table1.run(context)
    section("E1", result1.format(), time.time() - start)

    start = time.time()
    result2 = table2.run(context)
    section("E2", result2.format(), time.time() - start)

    start = time.time()
    result_fig3 = fig3.run(context)
    body = result_fig3.format()
    if include_examples:
        body += "\n" + result_fig3.format_examples()
    section("E5/E6", body, time.time() - start)

    start = time.time()
    result_fig4 = fig4.run(context)
    section("E7", result_fig4.format(), time.time() - start)

    if include_models:
        start = time.time()
        result3 = table3.run(context)
        section("E3", result3.format(), time.time() - start)

        start = time.time()
        result4 = table4.run(context)
        section("E4", result4.format(), time.time() - start)

        sections.append(
            "Headline shape checks:\n"
            f"  best pattern model: {result3.best_model()} "
            "(paper: Random Forest)\n"
            f"  Cordial beats baseline on F1+ICR: "
            f"{result4.cordial_beats_baseline()}\n"
            f"  F1 improvement over baseline: "
            f"{result4.f1_improvement():.1%} (paper: 90.7%)\n"
            f"  ICR improvement over baseline: "
            f"{result4.icr_improvement():.1%} (paper: 47.1%)\n")
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cordial-repro`` console script."""
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the Cordial paper "
                    "on a calibrated synthetic fleet.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fleet scale (1.0 = paper magnitude)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed")
    parser.add_argument("--fast", action="store_true",
                        help="skip the model-training experiments (E3/E4)")
    parser.add_argument("--examples", action="store_true",
                        help="include ASCII Figure 3(a) bank maps")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    context = ExperimentContext(scale=args.scale, seed=args.seed)
    report = run_all(context, include_models=not args.fast,
                     include_examples=args.examples)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
