"""CLI driving every experiment: ``cordial-repro [--scale S] [--seed N]
[--jobs N]``.

Runs E1-E7, prints each paper-vs-measured table, and (with ``--output``)
writes a combined report suitable for EXPERIMENTS.md.  With ``--jobs N``
the independent experiments run concurrently on a DAG executor (the
analysis experiments E1/E2/E5-E6/E7 have no cross-dependencies; E4 reuses
the models E3 trains) and dataset generation itself is sharded over worker
processes.  Report content is identical for every ``jobs`` value — only
the elapsed-time annotations differ.

``cordial-repro serve-replay`` instead exercises the *online* path: it
streams a generated fleet's test split through ``CordialService`` (with
optional bounded shuffling and a mid-stream checkpoint/restore) and dumps
a metrics JSON report — the serving smoke check CI archives as an
artifact.

``cordial-repro chaos`` goes further: it runs a seeded fault-injection
campaign (``repro.chaos``) against the same serving path — stream
perturbation operators plus kill/restore and checkpoint-tampering
faults — and exits non-zero if any invariant of the oracle is violated.

Both serving subcommands take ``--obs DIR`` to capture the run's full
observability record (journal, trace, audit trail, Prometheus metrics —
see ``docs/OBSERVABILITY.md``); ``cordial-repro obs-report DIR``
summarises such a directory after the fact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import fig3, fig4, table1, table2, table3, table4
from repro.experiments.common import ExperimentContext
from repro.experiments.dag import DagTask, execute_dag

#: Section order of the combined report (fixed regardless of completion
#: order under parallel execution).
SECTION_ORDER = ("E1", "E2", "E5/E6", "E7", "E3", "E4")


def _positive_int(text: str) -> int:
    """Argparse type for knobs that must be >= 1 (shards, jobs, offsets)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _experiment_tasks(context: ExperimentContext, include_models: bool,
                      include_examples: bool) -> List[DagTask]:
    """The experiment DAG: analysis tasks are independent; E4 needs E3."""

    def run_fig3() -> object:
        result = fig3.run(context)
        body = result.format()
        if include_examples:
            body += "\n" + result.format_examples()
        return (result, body)

    tasks = [
        DagTask("E1", lambda: table1.run(context)),
        DagTask("E2", lambda: table2.run(context)),
        DagTask("E5/E6", run_fig3),
        DagTask("E7", lambda: fig4.run(context)),
    ]
    if include_models:
        tasks.append(DagTask("E3", lambda: table3.run(context)))
        tasks.append(DagTask("E4", lambda: table4.run(context),
                             deps=("E3",)))
    return tasks


def run_all(context: ExperimentContext, include_models: bool = True,
            include_examples: bool = False,
            jobs: Optional[int] = None) -> str:
    """Run every experiment and return the combined report text.

    Args:
        include_models: also run the (expensive) Table III/IV model
            training; the analysis-only experiments always run.
        include_examples: append the ASCII Figure 3(a) maps.
        jobs: concurrency of the experiment DAG (``None`` inherits
            ``context.jobs``).  Sections are assembled in the fixed
            ``SECTION_ORDER``, so the report matches the sequential run
            modulo elapsed-time strings.
    """
    jobs = context.jobs if jobs is None else jobs
    # Materialise the shared inputs once, before any concurrency.
    _ = context.dataset
    if include_models:
        _ = context.split

    tasks = _experiment_tasks(context, include_models, include_examples)
    results = execute_dag(tasks, jobs=jobs)

    sections: List[str] = []
    for name in SECTION_ORDER:
        if name not in results:
            continue
        result = results[name]
        if name == "E5/E6":
            body = result.value[1]
        else:
            body = result.value.format()
        sections.append(f"== {name} ({result.elapsed:.1f}s) ==\n{body}\n")

    if include_models:
        result3 = results["E3"].value
        result4 = results["E4"].value
        sections.append(
            "Headline shape checks:\n"
            f"  best pattern model: {result3.best_model()} "
            "(paper: Random Forest)\n"
            f"  Cordial beats baseline on F1+ICR: "
            f"{result4.cordial_beats_baseline()}\n"
            f"  F1 improvement over baseline: "
            f"{result4.f1_improvement():.1%} (paper: 90.7%)\n"
            f"  ICR improvement over baseline: "
            f"{result4.icr_improvement():.1%} (paper: 47.1%)\n")
    return "\n".join(sections)


def cmd_serve_replay(args: argparse.Namespace) -> int:
    """Stream a generated fleet through the online service; dump metrics."""
    from repro.experiments.serve import run_serve_replay

    if args.supervise and args.shards is None:
        raise SystemExit("--supervise needs --shards (supervision is a "
                         "fleet property)")
    report = run_serve_replay(
        scale=args.scale, seed=args.seed, model_name=args.model,
        max_skew=args.max_skew, shuffle=args.shuffle,
        shuffle_seed=args.shuffle_seed, jobs=args.jobs,
        checkpoint_path=args.checkpoint, checkpoint_at=args.checkpoint_at,
        shards=args.shards, obs_dir=args.obs,
        audit_attributions=args.audit_attributions,
        supervise=args.supervise, max_restarts=args.max_restarts,
        batch_timeout=args.batch_timeout,
        poison_threshold=args.poison_threshold,
        snapshot_every=args.snapshot_every)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary = report["summary"]
    timing = report["timing"]
    print(f"served {summary['events_ingested']:,} events: "
          f"{summary['triggers_fired']} triggers, "
          f"{summary['repredictions']} repredictions, "
          f"{summary['decisions_total']} decisions, "
          f"ICR {summary['icr']:.2%} "
          f"(dead-lettered: {summary['events_dead_lettered'] or 0})")
    print(f"  wall {timing['wall_seconds']:.2f}s, "
          f"cpu {timing['cpu_seconds']:.2f}s, "
          f"{timing['events_per_second']:,.0f} events/s")
    if args.obs is not None:
        print(f"observability artifacts written to {args.obs}")
    print(f"metrics report written to {args.output}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos campaign against the serving path."""
    from repro.chaos import ChaosPlan, default_plan, run_chaos_campaign

    if args.plan is not None:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = ChaosPlan.from_dict(json.load(handle))
    else:
        plan = default_plan(kills_per_run=args.kills_per_run,
                            intensity=args.intensity)
    if args.worker_faults_per_run or args.poison_per_run:
        import dataclasses

        if args.shards is None:
            raise SystemExit("--worker-faults-per-run/--poison-per-run "
                             "need --shards (supervision is a fleet "
                             "property)")
        plan = dataclasses.replace(
            plan, worker_faults_per_run=args.worker_faults_per_run,
            poison_per_run=args.poison_per_run)
    report = run_chaos_campaign(
        scale=args.scale, seed=args.seed, model_name=args.model,
        plan=plan, runs=args.runs, campaign_seed=args.campaign_seed,
        jobs=args.jobs, max_events=args.max_events, obs_dir=args.obs,
        shards=args.shards, engine_jobs=args.engine_jobs)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    bad_runs = sum(1 for run in report["runs"] if not run["ok"])
    print(f"chaos campaign: {len(report['runs'])} runs over "
          f"{report['config']['stream_events']:,} events "
          f"({len(plan.operators)} operators, "
          f"{plan.kills_per_run} kills/run)")
    if plan.worker_faults_per_run or plan.poison_per_run:
        print(f"  supervised fleet: {plan.worker_faults_per_run} worker "
              f"faults/run, {plan.poison_per_run} poison records/run "
              f"(every run checked byte-identical to its twin)")
    print(f"  clean ICR {report['clean']['summary']['icr']:.2%}, "
          f"campaign digest {report['campaign_digest'][:16]}...")
    if report["dead_letters_total"]:
        rendered = ", ".join(f"{k}={v}" for k, v in
                             sorted(report["dead_letters_total"].items()))
        print(f"  dead letters across runs: {rendered}")
    if report["ok"]:
        print("  all invariants held")
    else:
        print(f"  INVARIANT VIOLATIONS: {report['violations_total']} "
              f"across {bad_runs} runs")
        for run in report["runs"]:
            for violation in run["violations"]:
                print(f"    run {run['run']}: "
                      f"[{violation['invariant']}] {violation['detail']}")
    if args.obs is not None:
        print(f"observability artifacts written to {args.obs}")
    print(f"chaos report written to {args.output}")
    return 0 if report["ok"] else 1


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Summarise the artifacts of an ``--obs`` output directory."""
    import os

    from repro.obs import (AUDIT_FILE, JOURNAL_FILE, SUMMARY_FILE,
                           TRACE_FILE, AuditLog, read_journal)

    directory = args.dir
    out = {}

    journal_path = os.path.join(directory, JOURNAL_FILE)
    if os.path.exists(journal_path):
        header, events = read_journal(journal_path)
        provenance = header.get("provenance", {})
        counts = {}
        for event in events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        out["journal"] = {
            "events": len(events),
            "counts_by_type": {k: counts[k] for k in sorted(counts)},
            "git_sha": provenance.get("git_sha"),
            "config_digest": provenance.get("config_digest"),
            "seeds": provenance.get("seeds", {}),
        }

    audit_path = os.path.join(directory, AUDIT_FILE)
    if os.path.exists(audit_path):
        audit = AuditLog.read_jsonl(audit_path)
        out["audit"] = audit.summary()
        if args.bank is not None and args.row is not None:
            bank_key = tuple(int(b) for b in args.bank.split(","))
            decisions = audit.explain(bank_key, args.row)
            out["explain"] = {
                "bank_key": list(bank_key), "row": args.row,
                "decisions": decisions}

    summary_path = os.path.join(directory, SUMMARY_FILE)
    if os.path.exists(summary_path):
        with open(summary_path, "r", encoding="utf-8") as handle:
            out["run_summary"] = json.load(handle)

    trace_path = os.path.join(directory, TRACE_FILE)
    if os.path.exists(trace_path):
        with open(trace_path, "r", encoding="utf-8") as handle:
            out["trace_events"] = len(json.load(handle)["traceEvents"])

    if not out:
        print(f"no observability artifacts found under {directory}",
              file=sys.stderr)
        return 1
    if args.json:
        json.dump(out, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    if "journal" in out:
        journal = out["journal"]
        print(f"journal: {journal['events']} events")
        for kind, count in journal["counts_by_type"].items():
            print(f"  {kind}: {count}")
        print(f"  provenance: git {journal['git_sha'] or 'unknown'}, "
              f"config digest {(journal['config_digest'] or '')[:16]}, "
              f"seeds {journal['seeds']}")
    if "audit" in out:
        audit_summary = out["audit"]
        print(f"audit: {audit_summary['records']} decisions "
              f"(by kind: {audit_summary['by_kind']}, "
              f"by action: {audit_summary['by_action']})")
    if "trace_events" in out:
        print(f"trace: {out['trace_events']} spans")
    if "explain" in out:
        explained = out["explain"]
        print(f"decisions touching bank {explained['bank_key']} "
              f"row {explained['row']}: {len(explained['decisions'])}")
        for decision in explained["decisions"]:
            rows = decision["rows_requested"]
            print(f"  [{decision['index']}] t={decision['timestamp']:.0f} "
                  f"{decision['kind']}/{decision['action']} "
                  f"pattern={decision['pattern']} "
                  f"requested {len(rows)} rows, "
                  f"newly spared {decision['newly_spared']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``cordial-repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the Cordial paper "
                    "on a calibrated synthetic fleet.")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fleet scale (1.0 = paper magnitude)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker parallelism for dataset generation and "
                             "the experiment DAG (results are identical for "
                             "any value)")
    parser.add_argument("--fast", action="store_true",
                        help="skip the model-training experiments (E3/E4)")
    parser.add_argument("--examples", action="store_true",
                        help="include ASCII Figure 3(a) bank maps")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")

    sub = parser.add_subparsers(dest="command")
    p = sub.add_parser(
        "serve-replay",
        help="stream a generated fleet through the online CordialService "
             "and dump a metrics JSON report")
    p.add_argument("--scale", type=float, default=0.12,
                   help="fleet scale of the served dataset")
    p.add_argument("--seed", type=int, default=42, help="generator seed")
    p.add_argument("--model", default="LightGBM",
                   choices=["Random Forest", "XGBoost", "LightGBM"])
    p.add_argument("--max-skew", type=float, default=0.0, dest="max_skew",
                   help="reorder-buffer window in stream seconds")
    p.add_argument("--shuffle", action="store_true",
                   help="shuffle the stream within --max-skew before "
                        "serving (exercises the reorder buffer)")
    p.add_argument("--shuffle-seed", type=int, default=0,
                   dest="shuffle_seed")
    p.add_argument("--checkpoint", type=str, default=None,
                   help="checkpoint/restore the service mid-stream "
                        "through this file (a directory with --shards; "
                        "exercises restart)")
    p.add_argument("--checkpoint-at", type=_positive_int, default=None,
                   dest="checkpoint_at",
                   help="take the --checkpoint snapshot after this many "
                        "events (default: mid-stream; must lie within "
                        "the stream)")
    p.add_argument("--shards", type=_positive_int, default=None,
                   help="serve through the sharded fleet engine with "
                        "this many bank-key shards (decisions/ICR/"
                        "metrics are identical for any value; --jobs "
                        "sets the worker processes)")
    p.add_argument("--jobs", type=_positive_int, default=1)
    p.add_argument("--output", type=str, default="serve_metrics.json",
                   help="where to write the metrics JSON report")
    p.add_argument("--obs", type=str, default=None, metavar="DIR",
                   help="write observability artifacts (run journal, "
                        "trace, audit trail, Prometheus metrics) into "
                        "this directory")
    p.add_argument("--supervise", action="store_true",
                   help="run the fleet under the shard supervisor "
                        "(requires --shards): crash detection, "
                        "deterministic restart, poison quarantine, "
                        "degraded failover — output stays byte-identical")
    p.add_argument("--max-restarts", type=int, default=3,
                   dest="max_restarts",
                   help="per-worker restart budget before degraded "
                        "failover (with --supervise)")
    p.add_argument("--batch-timeout", type=float, default=30.0,
                   dest="batch_timeout",
                   help="seconds a worker may go silent before it is "
                        "declared hung (with --supervise)")
    p.add_argument("--poison-threshold", type=_positive_int, default=2,
                   dest="poison_threshold",
                   help="kills by the same batch before the supervisor "
                        "bisects for a poison record (with --supervise)")
    p.add_argument("--snapshot-every", type=_positive_int, default=8,
                   dest="snapshot_every",
                   help="batches between supervisor replay snapshots "
                        "(with --supervise)")
    p.add_argument("--audit-attributions", action="store_true",
                   dest="audit_attributions",
                   help="record per-feature attributions for every "
                        "flagged block in the audit trail (slow)")
    p.set_defaults(func=cmd_serve_replay)

    c = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign against the online "
             "service and validate the invariant oracle")
    c.add_argument("--scale", type=float, default=0.08,
                   help="fleet scale of the served dataset")
    c.add_argument("--seed", type=int, default=11, help="generator seed")
    c.add_argument("--model", default="LightGBM",
                   choices=["Random Forest", "XGBoost", "LightGBM"])
    c.add_argument("--runs", type=int, default=20,
                   help="chaos runs in the campaign")
    c.add_argument("--campaign-seed", type=int, default=0,
                   dest="campaign_seed",
                   help="root seed of the campaign's SeedSequence tree")
    c.add_argument("--plan", type=str, default=None,
                   help="JSON plan file (ChaosPlan.to_dict layout); "
                        "default: the house plan with all six operators")
    c.add_argument("--kills-per-run", type=int, default=2,
                   dest="kills_per_run",
                   help="kill/restore faults per run (default plan only)")
    c.add_argument("--intensity", type=float, default=1.0,
                   help="scale every operator rate at once "
                        "(default plan only)")
    c.add_argument("--max-events", type=int, default=None,
                   dest="max_events",
                   help="truncate the test stream (smoke runs)")
    c.add_argument("--shards", type=_positive_int, default=None,
                   help="serve every chaos run through the sharded fleet "
                        "engine with this many shards (kill points then "
                        "restart the whole fleet)")
    c.add_argument("--jobs", type=int, default=1)
    c.add_argument("--engine-jobs", type=_positive_int, default=1,
                   dest="engine_jobs",
                   help="worker processes per sharded chaos engine "
                        "(1 = in-process workers; with --shards)")
    c.add_argument("--worker-faults-per-run", type=int, default=0,
                   dest="worker_faults_per_run",
                   help="per-shard worker faults (crash/hang/garbage) "
                        "injected per run; engages the shard supervisor "
                        "and the byte-identical twin check "
                        "(requires --shards)")
    c.add_argument("--poison-per-run", type=int, default=0,
                   dest="poison_per_run",
                   help="poison records planted per run, each bisected "
                        "out and quarantined by the supervisor "
                        "(requires --shards)")
    c.add_argument("--output", type=str, default="chaos_report.json",
                   help="where to write the campaign JSON report")
    c.add_argument("--obs", type=str, default=None, metavar="DIR",
                   help="observe the clean baseline serve and write its "
                        "journal/trace/audit artifacts into this "
                        "directory (the campaign report is unchanged)")
    c.set_defaults(func=cmd_chaos)

    o = sub.add_parser(
        "obs-report",
        help="summarise the artifacts of an --obs output directory "
             "(journal counts, provenance, audit roll-up; optionally "
             "explain one bank/row)")
    o.add_argument("dir", help="an --obs output directory")
    o.add_argument("--bank", type=str, default=None,
                   help="comma-separated bank key to explain "
                        "(e.g. 0,0,1,0,2,0,3,1)")
    o.add_argument("--row", type=int, default=None,
                   help="row to explain (with --bank)")
    o.add_argument("--json", action="store_true",
                   help="emit the summary as JSON instead of text")
    o.set_defaults(func=cmd_obs_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cordial-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is not None:
        return args.func(args)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    context = ExperimentContext(scale=args.scale, seed=args.seed,
                                jobs=args.jobs)
    report = run_all(context, include_models=not args.fast,
                     include_examples=args.examples)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
