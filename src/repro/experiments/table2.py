"""Experiment E2 — Table II: summary of the (synthetic) industrial dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.summary import compute_dataset_summary
from repro.experiments.common import ExperimentContext
from repro.hbm.address import MicroLevel


@dataclass
class Table2Result:
    """Measured entity counts next to the paper's Table II.

    ``scale`` is carried so sub-scale runs can compare against
    proportionally scaled paper counts.
    """

    rows: Dict[str, Tuple[int, int, int, int]]
    paper: Dict[str, Tuple[int, int, int, int]]
    scale: float

    def format(self) -> str:
        """Render measured-vs-paper in the paper's Table II layout."""
        lines = [
            f"Table II — Dataset summary (scale={self.scale:g}; paper "
            "counts scaled to match)",
            f"{'Level':<8}{'With CE':>16}{'With UEO':>16}{'With UER':>16}"
            f"{'Total':>16}",
        ]
        for level, measured in self.rows.items():
            paper = [round(v * self.scale) for v in self.paper[level]]
            cells = [f"{m}/{p}" for m, p in zip(measured, paper)]
            lines.append(f"{level:<8}{cells[0]:>16}{cells[1]:>16}"
                         f"{cells[2]:>16}{cells[3]:>16}")
        lines.append("(each cell: measured/paper)")
        return "\n".join(lines)

    def max_relative_error(self, levels=("Bank", "Row")) -> float:
        """Largest relative count deviation vs the (scaled) paper values.

        Defaults to the Bank and Row levels: fault counts scale linearly
        there, whereas distinct-unit counts at NPU/HBM/... scale
        sub-linearly (the birthday effect), so scaled-paper comparison at
        coarse levels is only meaningful at ``scale == 1``.
        """
        worst = 0.0
        for level in levels:
            for m, p in zip(self.rows[level], self.paper[level]):
                expected = p * self.scale
                if expected > 0:
                    worst = max(worst, abs(m - expected) / expected)
        return worst


def run(context: ExperimentContext) -> Table2Result:
    """Compute Table II on the context's fleet."""
    summary = compute_dataset_summary(context.dataset.store)
    rows = {}
    for level in MicroLevel.paper_levels():
        entry = summary[level]
        rows[level.label] = (entry.with_ce, entry.with_ueo, entry.with_uer,
                             entry.total)
    return Table2Result(rows=rows, paper=context.targets.table2_counts,
                        scale=context.scale)
