"""Experiment E1 — Table I: in-row predictable ratio of UERs per micro-level."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.sudden import compute_sudden_uer_table
from repro.experiments.common import ExperimentContext
from repro.hbm.address import MicroLevel


@dataclass
class Table1Result:
    """Measured sudden/non-sudden counts next to the paper's Table I."""

    rows: Dict[str, Tuple[int, int, float]]  # level -> (sudden, non, ratio)
    paper: Dict[str, float]

    def format(self) -> str:
        """Render measured-vs-paper in the paper's Table I layout."""
        lines = [
            "Table I — In-row predictable ratio of UERs",
            f"{'Micro-level':<12}{'Sudden':>9}{'Non-sudden':>12}"
            f"{'Ratio':>9}{'Paper':>9}",
        ]
        for level, (sudden, non_sudden, ratio) in self.rows.items():
            lines.append(f"{level:<12}{sudden:>9}{non_sudden:>12}"
                         f"{ratio:>8.2%}{self.paper[level]:>8.2%}")
        return "\n".join(lines)

    def max_abs_error(self) -> float:
        """Largest per-level deviation from the paper's ratios."""
        return max(abs(ratio - self.paper[level])
                   for level, (_, _, ratio) in self.rows.items())

    def is_monotone_decreasing(self) -> bool:
        """The paper's headline shape: predictability falls towards rows."""
        ratios = [ratio for _, _, ratio in self.rows.values()]
        return all(a >= b - 0.05 for a, b in zip(ratios, ratios[1:]))


def run(context: ExperimentContext) -> Table1Result:
    """Compute Table I on the context's fleet."""
    table = compute_sudden_uer_table(context.dataset.store)
    rows = {}
    for level in MicroLevel.paper_levels():
        stats = table[level]
        rows[level.label] = (stats.sudden, stats.non_sudden,
                             stats.predictable_ratio)
    return Table1Result(rows=rows, paper=context.targets.predictable_ratio)
