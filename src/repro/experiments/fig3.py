"""Experiment E5/E6 — Figure 3: failure-pattern examples and distribution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.patterns_dist import (ascii_bank_map,
                                          compute_pattern_distribution,
                                          example_bank_maps,
                                          format_distribution)
from repro.experiments.common import ExperimentContext


@dataclass
class Fig3Result:
    """Pattern distribution (3b) and example bank maps (3a)."""

    distribution: Dict[str, float]
    paper: Dict[str, float]
    examples: Dict[str, List[Tuple[int, int, str]]]

    def format(self) -> str:
        """Render the Figure 3(b) slices, measured vs paper."""
        return ("Figure 3(b) — Bank failure-pattern distribution\n"
                + format_distribution(self.distribution, self.paper))

    def format_examples(self, width: int = 64, height: int = 20) -> str:
        """ASCII renderings of the Figure 3(a) example maps."""
        sections = []
        for label, points in self.examples.items():
            sections.append(f"--- {label} ({len(points)} events) ---")
            sections.append(ascii_bank_map(points, height=height,
                                           width=width))
        return "\n".join(sections)

    def max_abs_error(self) -> float:
        """Largest slice deviation from the paper's distribution."""
        return max(abs(self.distribution.get(label, 0.0) - value)
                   for label, value in self.paper.items())

    def aggregation_share(self) -> float:
        """Share of aggregation patterns (paper: 78.1 %-80.2 %, depending
        on the Fig. 3(b) reading — see DESIGN.md)."""
        return (self.distribution["Single-row Clustering"]
                + self.distribution["Double-row Clustering"]
                + self.distribution["Half Total-row Clustering"])


def run(context: ExperimentContext) -> Fig3Result:
    """Compute the Figure 3 artefacts on the context's fleet."""
    return Fig3Result(
        distribution=compute_pattern_distribution(context.dataset),
        paper=context.targets.fig3b_slices,
        examples=example_bank_maps(context.dataset),
    )
