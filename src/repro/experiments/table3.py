"""Experiment E3 — Table III: failure-pattern classification performance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import PAPER_MODEL_ORDER, ExperimentContext
from repro.faults.types import FailurePattern

#: Paper's Table III (precision, recall, F1) per model per pattern row.
PAPER_TABLE3: Dict[str, Dict[str, Tuple[float, float, float]]] = {
    "LightGBM": {
        "Double-row Clustering": (0.600, 0.474, 0.529),
        "Single-row Clustering": (0.921, 0.972, 0.946),
        "Scattered Pattern": (0.672, 0.629, 0.650),
        "Weighted Average": (0.833, 0.844, 0.837),
    },
    "XGBoost": {
        "Double-row Clustering": (0.611, 0.289, 0.393),
        "Single-row Clustering": (0.881, 1.000, 0.937),
        "Scattered Pattern": (0.698, 0.597, 0.643),
        "Weighted Average": (0.803, 0.835, 0.813),
    },
    "Random Forest": {
        "Double-row Clustering": (0.633, 0.500, 0.559),
        "Single-row Clustering": (0.921, 0.981, 0.950),
        "Scattered Pattern": (0.696, 0.629, 0.661),
        "Weighted Average": (0.842, 0.859, 0.854),
    },
}

_ROW_OF_PATTERN = {
    FailurePattern.DOUBLE_ROW: "Double-row Clustering",
    FailurePattern.SINGLE_ROW: "Single-row Clustering",
    FailurePattern.SCATTERED: "Scattered Pattern",
}


@dataclass
class Table3Result:
    """Measured pattern-classification scores next to the paper's."""

    # model -> row label -> (precision, recall, f1)
    scores: Dict[str, Dict[str, Tuple[float, float, float]]]
    paper: Dict[str, Dict[str, Tuple[float, float, float]]]

    def format(self) -> str:
        """Render measured-vs-paper in the paper's Table III layout."""
        lines = ["Table III — Failure-pattern classification "
                 "(measured | paper)"]
        for model in PAPER_MODEL_ORDER:
            lines.append(f"  {model}:")
            for row_label, (p, r, f1) in self.scores[model].items():
                pp, pr, pf = self.paper[model][row_label]
                lines.append(
                    f"    {row_label:<24} P={p:.3f}|{pp:.3f} "
                    f"R={r:.3f}|{pr:.3f} F1={f1:.3f}|{pf:.3f}")
        return "\n".join(lines)

    def weighted_f1(self, model: str) -> float:
        """Measured weighted-average F1 of one model."""
        return self.scores[model]["Weighted Average"][2]

    def best_model(self) -> str:
        """Model with the highest measured weighted F1 (paper: RF)."""
        return max(PAPER_MODEL_ORDER, key=self.weighted_f1)

    def single_row_is_best_classified(self, model: str) -> bool:
        """Paper's shape claim: single-row has the highest per-class F1."""
        rows = self.scores[model]
        single = rows["Single-row Clustering"][2]
        return all(single >= rows[label][2]
                   for label in ("Double-row Clustering",
                                 "Scattered Pattern"))


def run(context: ExperimentContext) -> Table3Result:
    """Train/evaluate all three model families on pattern classification."""
    scores: Dict[str, Dict[str, Tuple[float, float, float]]] = {}
    for model_name in PAPER_MODEL_ORDER:
        evaluation = context.evaluation(model_name)
        rows: Dict[str, Tuple[float, float, float]] = {}
        for pattern, label in _ROW_OF_PATTERN.items():
            s = evaluation.pattern_scores[pattern]
            rows[label] = (s.precision, s.recall, s.f1)
        w = evaluation.pattern_weighted
        rows["Weighted Average"] = (w.precision, w.recall, w.f1)
        scores[model_name] = rows
    return Table3Result(scores=scores, paper=PAPER_TABLE3)
