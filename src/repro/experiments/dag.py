"""A small DAG-aware parallel task executor for the experiment harness.

Experiments form a dependency graph: the analysis experiments (E1, E2,
E5/E6, E7) are independent of each other, while E4 reuses the models E3
trains.  ``execute_dag`` runs every task whose dependencies are satisfied
concurrently on a thread pool (the heavy numeric work releases the GIL in
numpy kernels; correctness never depends on the interleaving because
results are keyed by task name and assembled by the caller in a fixed
order).

``jobs=1`` degrades to a plain sequential topological run in declaration
order, which keeps the report byte-identical to the historical sequential
runner modulo elapsed-time strings.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DagTask:
    """One named unit of work with optional dependencies."""

    name: str
    run: Callable[[], object]
    deps: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TaskResult:
    """Return value and wall-clock duration of one executed task."""

    value: object
    elapsed: float


def _validate(tasks: Sequence[DagTask]) -> None:
    names = [task.name for task in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate task names in {names}")
    known = set(names)
    for task in tasks:
        for dep in task.deps:
            if dep not in known:
                raise ValueError(f"task {task.name!r} depends on unknown "
                                 f"task {dep!r}")
    # Cycle check: repeatedly peel tasks whose deps are all peeled.
    remaining = {task.name: set(task.deps) for task in tasks}
    while remaining:
        ready = [name for name, deps in remaining.items() if not deps]
        if not ready:
            raise ValueError(f"dependency cycle among {sorted(remaining)}")
        for name in ready:
            del remaining[name]
        for deps in remaining.values():
            deps.difference_update(ready)


def _timed(task: DagTask) -> TaskResult:
    start = time.time()
    value = task.run()
    return TaskResult(value=value, elapsed=time.time() - start)


def execute_dag(tasks: Sequence[DagTask], jobs: int = 1
                ) -> Dict[str, TaskResult]:
    """Execute every task, respecting dependencies; return results by name.

    With ``jobs > 1``, independent tasks run concurrently on at most
    ``jobs`` threads.  The first task failure propagates after in-flight
    tasks finish; not-yet-started tasks are abandoned.
    """
    _validate(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    results: Dict[str, TaskResult] = {}

    if jobs == 1:
        pending: List[DagTask] = list(tasks)
        while pending:
            for i, task in enumerate(pending):
                if all(dep in results for dep in task.deps):
                    results[task.name] = _timed(pending.pop(i))
                    break
        return results

    pending = list(tasks)
    running = {}
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        while pending or running:
            startable = [task for task in pending
                         if all(dep in results for dep in task.deps)]
            for task in startable:
                pending.remove(task)
                running[pool.submit(_timed, task)] = task.name
            done, _ = wait(running, return_when=FIRST_COMPLETED)
            for future in done:
                name = running.pop(future)
                results[name] = future.result()  # re-raises task errors
    return results
