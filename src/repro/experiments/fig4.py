"""Experiment E7 — Figure 4: chi-square significance of cross-row locality."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.locality import (LocalityCurve, compute_locality_chisquare,
                                     format_locality_curve)
from repro.experiments.common import ExperimentContext


@dataclass
class Fig4Result:
    """The measured chi-square-vs-threshold curve."""

    curve: LocalityCurve
    paper_peak: int

    def format(self) -> str:
        """Render the Figure 4 series with the measured peak marked."""
        return (f"Figure 4 — Cross-row locality (paper peak at "
                f"{self.paper_peak} rows)\n"
                + format_locality_curve(self.curve))

    def peak_matches_paper(self) -> bool:
        """Whether the measured peak lands on the paper's 128-row
        threshold."""
        return self.curve.peak_threshold == self.paper_peak


def run(context: ExperimentContext) -> Fig4Result:
    """Compute the locality curve on the context's fleet."""
    curve = compute_locality_chisquare(
        context.dataset.store,
        thresholds=context.targets.locality_thresholds,
        total_rows=context.dataset.config.fleet.hbm.rows)
    return Fig4Result(curve=curve,
                      paper_peak=context.targets.locality_peak_threshold)
