"""Experiment E4 — Table IV: cross-row prediction performance and ICR."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import PAPER_MODEL_ORDER, ExperimentContext

#: Table IV method labels, in paper order.
METHOD_ORDER = ("Neighbor Rows", "Cordial-LGBM", "Cordial-XGB", "Cordial-RF")

_MODEL_OF_METHOD = {
    "Cordial-LGBM": "LightGBM",
    "Cordial-XGB": "XGBoost",
    "Cordial-RF": "Random Forest",
}


@dataclass
class Table4Result:
    """Measured prediction/ICR scores next to the paper's Table IV."""

    # method -> (precision, recall, f1, icr)
    rows: Dict[str, Tuple[float, float, float, float]]
    paper: Dict[str, Tuple[float, float, float, float]]

    def format(self) -> str:
        """Render measured-vs-paper in the paper's Table IV layout."""
        lines = [
            "Table IV — Cross-row failure prediction (measured | paper)",
            f"{'Method':<16}{'Precision':>16}{'Recall':>16}"
            f"{'F1':>16}{'ICR':>18}",
        ]
        for method in METHOD_ORDER:
            p, r, f1, icr = self.rows[method]
            pp, pr, pf, picr = self.paper[method]
            lines.append(
                f"{method:<16}{f'{p:.3f}|{pp:.3f}':>16}"
                f"{f'{r:.3f}|{pr:.3f}':>16}"
                f"{f'{f1:.3f}|{pf:.3f}':>16}"
                f"{f'{icr:.2%}|{picr:.2%}':>18}")
        return "\n".join(lines)

    def f1(self, method: str) -> float:
        """Measured block F1 of one method."""
        return self.rows[method][2]

    def icr(self, method: str) -> float:
        """Measured ICR of one method."""
        return self.rows[method][3]

    def cordial_beats_baseline(self) -> bool:
        """Paper's headline: every Cordial variant beats Neighbor Rows on
        both F1 and ICR."""
        base_f1 = self.f1("Neighbor Rows")
        base_icr = self.icr("Neighbor Rows")
        return all(self.f1(m) > base_f1 and self.icr(m) > base_icr
                   for m in METHOD_ORDER[1:])

    def f1_improvement(self) -> float:
        """Relative F1 improvement of the best Cordial variant over the
        baseline (paper: up to 90.7 %)."""
        base = self.f1("Neighbor Rows")
        best = max(self.f1(m) for m in METHOD_ORDER[1:])
        return (best - base) / base if base > 0 else float("inf")

    def icr_improvement(self) -> float:
        """Relative ICR improvement of the best Cordial variant (paper:
        47.1 %)."""
        base = self.icr("Neighbor Rows")
        best = max(self.icr(m) for m in METHOD_ORDER[1:])
        return (best - base) / base if base > 0 else float("inf")


def run(context: ExperimentContext) -> Table4Result:
    """Evaluate the baseline and all three Cordial variants."""
    rows: Dict[str, Tuple[float, float, float, float]] = {}
    baseline = context.baseline_evaluation()
    rows["Neighbor Rows"] = (baseline.block_scores.precision,
                             baseline.block_scores.recall,
                             baseline.block_scores.f1,
                             baseline.icr.icr)
    for method, model_name in _MODEL_OF_METHOD.items():
        evaluation = context.evaluation(model_name)
        rows[method] = (evaluation.block_scores.precision,
                        evaluation.block_scores.recall,
                        evaluation.block_scores.f1,
                        evaluation.icr.icr)
    return Table4Result(rows=rows, paper=context.targets.table4)
