"""Shared context for the experiment harness.

Generating the fleet and training the three Cordial variants are the
expensive steps and several tables reuse them, so the context caches both
keyed on ``(scale, seed)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import Cordial, CordialEvaluation, evaluate_neighbor_baseline
from repro.datasets import (CalibrationTargets, FleetDataset, FleetGenConfig,
                            generate_fleet_dataset)
from repro.ml.selection import train_test_split_groups

#: Table III/IV model order as printed in the paper.
PAPER_MODEL_ORDER = ("LightGBM", "XGBoost", "Random Forest")


@dataclass
class ExperimentContext:
    """Dataset + split + fitted models, shared across experiments.

    Args:
        scale: fleet scale (1.0 = the paper's magnitude; tests/benches can
            reduce it).
        seed: generator seed.
        split_seed: seed of the 7:3 bank split (Section V-A).
        jobs: worker processes for dataset generation, model training
            (forwarded to every :class:`Cordial` as ``n_jobs``) and the
            default concurrency of
            :func:`repro.experiments.runner.run_all`.
            Never changes any result — only wall-clock time.
    """

    scale: float = 1.0
    seed: int = 0
    split_seed: int = 7
    jobs: int = 1
    targets: CalibrationTargets = field(default_factory=CalibrationTargets)
    _dataset: Optional[FleetDataset] = None
    _split: Optional[Tuple[List[tuple], List[tuple]]] = None
    _models: Dict[str, Cordial] = field(default_factory=dict)
    _evaluations: Dict[str, CordialEvaluation] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    @property
    def dataset(self) -> FleetDataset:
        """The generated fleet (cached)."""
        with self._lock:
            if self._dataset is None:
                config = FleetGenConfig(scale=self.scale)
                self._dataset = generate_fleet_dataset(config, seed=self.seed,
                                                       jobs=self.jobs)
            return self._dataset

    @property
    def split(self) -> Tuple[List[tuple], List[tuple]]:
        """(train_banks, test_banks), 7:3 by bank."""
        with self._lock:
            if self._split is None:
                self._split = train_test_split_groups(
                    self.dataset.uer_banks, test_fraction=0.3,
                    seed=self.split_seed)
            return self._split

    def model(self, model_name: str) -> Cordial:
        """A fitted Cordial variant (cached per model family)."""
        with self._lock:
            if model_name not in self._models:
                cordial = Cordial(model_name=model_name,
                                  random_state=self.seed,
                                  n_jobs=self.jobs)
                cordial.fit(self.dataset, self.split[0])
                self._models[model_name] = cordial
            return self._models[model_name]

    def evaluation(self, model_name: str) -> CordialEvaluation:
        """Cached test-split evaluation of one Cordial variant."""
        with self._lock:
            if model_name not in self._evaluations:
                self._evaluations[model_name] = self.model(
                    model_name).evaluate(self.dataset, self.split[1])
            return self._evaluations[model_name]

    def baseline_evaluation(self) -> CordialEvaluation:
        """Cached Neighbor-Rows baseline evaluation."""
        with self._lock:
            if "__baseline__" not in self._evaluations:
                self._evaluations["__baseline__"] = evaluate_neighbor_baseline(
                    self.dataset, self.split[1])
            return self._evaluations["__baseline__"]
