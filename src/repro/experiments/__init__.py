"""One entry point per table and figure of the paper's evaluation.

Each module exposes ``run(...)`` returning a structured result object with
a ``format()`` method that prints the paper-vs-measured comparison; the
:mod:`repro.experiments.runner` CLI drives all of them and regenerates the
data behind EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentContext
from repro.experiments import (fig3, fig4, table1, table2, table3, table4)

__all__ = [
    "ExperimentContext",
    "table1",
    "table2",
    "table3",
    "table4",
    "fig3",
    "fig4",
]
