"""Fault models: how physical HBM defects turn into error-event streams.

Each fault type corresponds to one of the paper's bank-level failure
patterns (Section III-B): sub-wordline-driver faults produce single-row
clustering, coupled/mirrored SWD faults produce double-row clustering
(with the half-total-row address-bit variant), TSV faults produce
scattered errors, column-driver faults produce whole-column errors, and
isolated cell faults produce the background of correctable-only noise.
"""

from repro.faults.types import FailurePattern, FaultType, PATTERN_OF_FAULT
from repro.faults.processes import FaultProcessParams, PlannedEvent, FaultRealization
from repro.faults.injector import FaultInjector, PlantedFault
from repro.faults.disturbance import (DisturbanceParams, RowHammerProcess,
                                      mitigation_refresh_rate)
from repro.faults.scenarios import SCENARIOS, list_scenarios

__all__ = [
    "FailurePattern",
    "FaultType",
    "PATTERN_OF_FAULT",
    "FaultProcessParams",
    "PlannedEvent",
    "FaultRealization",
    "FaultInjector",
    "PlantedFault",
    "DisturbanceParams",
    "RowHammerProcess",
    "mitigation_refresh_rate",
    "SCENARIOS",
    "list_scenarios",
]
