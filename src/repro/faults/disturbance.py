"""Read-disturbance (RowHammer / RowPress) fault extension.

The paper's related work notes that HBM "shares similar reliability
degradation caused by read disturbance vulnerability (e.g., RowHammer and
RowPress) with DRAM" [25] but Cordial's taxonomy does not include it.
This extension models the mechanism so its interaction with Cordial can
be studied (benchmark ``test_ext_rowhammer.py``):

* an *aggressor* row is activated at a high rate by the workload;
* its immediate physical neighbours (±1, weaker at ±2 — "blast radius")
  accumulate disturbance; once a victim's accumulated activations exceed
  its flip threshold, it starts producing errors — first CEs, then UCEs;
* the resulting bank signature is an **ultra-tight cluster** (2-5 rows
  within ±2 of the aggressor), spatially unlike the paper's SWD clusters
  (tens-to-hundreds of rows) but close enough to be classified as
  single-row clustering by Cordial — which is the right operational
  outcome, because the victims *are* row-sparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.processes import DAY_S, FaultProcessParams, PlannedEvent
from repro.faults.types import FailurePattern, FaultType
from repro.telemetry.events import ErrorType


@dataclass(frozen=True)
class DisturbanceParams:
    """Parameters of the read-disturbance process.

    Attributes:
        hammer_rate_per_day: aggressor activations per day (abstracted —
            real attacks hammer in minutes; fleet-level wear is slower).
        flip_threshold_mean: activations a victim absorbs before flipping
            (log-normal across cells, HBM2 thresholds are low [25]).
        blast_radius_decay: fraction of disturbance reaching distance-2
            victims relative to distance-1.
        ce_per_uce: correctable flips seen per uncorrectable one (victims
            degrade gradually).
    """

    hammer_rate_per_day: float = 40_000.0
    flip_threshold_mean: float = 1.2e6
    flip_threshold_sigma: float = 0.5
    blast_radius_decay: float = 0.25
    ce_per_uce: float = 4.0

    def __post_init__(self) -> None:
        if self.hammer_rate_per_day <= 0:
            raise ValueError("hammer_rate_per_day must be positive")
        if self.flip_threshold_mean <= 0:
            raise ValueError("flip_threshold_mean must be positive")
        if not 0.0 < self.blast_radius_decay <= 1.0:
            raise ValueError("blast_radius_decay must be in (0, 1]")
        if self.ce_per_uce < 0:
            raise ValueError("ce_per_uce must be >= 0")


@dataclass
class RowHammerRealization:
    """A realised read-disturbance episode in one bank.

    Mirrors :class:`~repro.faults.processes.FaultRealization` closely
    enough for the generator/bench tooling (events + UER row sequence),
    plus the aggressor row for analysis.
    """

    aggressor_row: int
    victim_rows: Tuple[int, ...]
    events: List[PlannedEvent]
    uer_row_sequence: List[Tuple[float, int]]

    #: read-disturbance victims cluster like (very tight) single-row faults
    pattern: FailurePattern = FailurePattern.SINGLE_ROW

    @property
    def has_uer(self) -> bool:
        """Whether any victim reached an uncorrectable flip in-window."""
        return bool(self.uer_row_sequence)


class RowHammerProcess:
    """Realises read-disturbance episodes."""

    def __init__(self, params: Optional[DisturbanceParams] = None,
                 process_params: Optional[FaultProcessParams] = None) -> None:
        self.params = params or DisturbanceParams()
        self.process_params = process_params or FaultProcessParams()

    def realize(self, rng: np.random.Generator,
                hammer_start: Optional[float] = None
                ) -> RowHammerRealization:
        """Realise one episode: aggressor, victims, and their error stream."""
        params = self.params
        rows = self.process_params.rows
        columns = self.process_params.columns
        window_s = self.process_params.window_s
        aggressor = int(rng.integers(2, rows - 2))
        if hammer_start is None:
            hammer_start = float(rng.uniform(0, 0.7 * window_s))

        victims: List[Tuple[int, float]] = []  # (row, disturbance share)
        for offset, share in ((-1, 1.0), (1, 1.0),
                              (-2, params.blast_radius_decay),
                              (2, params.blast_radius_decay)):
            victims.append((aggressor + offset, share))

        events: List[PlannedEvent] = []
        uer_sequence: List[Tuple[float, int]] = []
        rate_s = params.hammer_rate_per_day / DAY_S
        for row, share in victims:
            threshold = float(rng.lognormal(
                np.log(params.flip_threshold_mean),
                params.flip_threshold_sigma))
            time_to_flip = threshold / (rate_s * share)
            uce_time = hammer_start + time_to_flip
            if uce_time > window_s:
                continue
            column = int(rng.integers(0, columns))
            # gradual degradation: CEs precede the UCE
            n_ce = int(rng.poisson(params.ce_per_uce))
            for _ in range(n_ce):
                t = float(rng.uniform(hammer_start + 0.5 * time_to_flip,
                                      uce_time))
                events.append(PlannedEvent(time=t, row=row, column=column,
                                           kind=ErrorType.CE))
            events.append(PlannedEvent(time=uce_time, row=row,
                                       column=column, kind=ErrorType.UER))
            uer_sequence.append((uce_time, row))

        events.sort(key=lambda e: e.time)
        uer_sequence.sort(key=lambda item: item[0])
        return RowHammerRealization(
            aggressor_row=aggressor,
            victim_rows=tuple(row for row, _ in victims),
            events=events,
            uer_row_sequence=uer_sequence,
        )

    def victims_within_blast_radius(self, aggressor: int) -> List[int]:
        """Rows a hammer on ``aggressor`` can disturb."""
        rows = self.process_params.rows
        return [aggressor + offset for offset in (-2, -1, 1, 2)
                if 0 <= aggressor + offset < rows]


def mitigation_refresh_rate(params: DisturbanceParams,
                            safety_factor: float = 2.0) -> float:
    """Targeted-refresh rate (per day) that outpaces the hammer.

    A victim is safe when its neighbourhood is refreshed before the
    threshold accumulates: ``rate >= safety * hammer_rate / threshold``.
    """
    if safety_factor <= 0:
        raise ValueError("safety_factor must be positive")
    return (safety_factor * params.hammer_rate_per_day
            / params.flip_threshold_mean)
