"""Stochastic error processes of planted faults.

A fault planted in a bank *realises* into a stream of CE / UEO / UER
events over the observation window.  The spatial kernels and temporal
processes here are the calibration surface of the whole reproduction —
their parameters are chosen so the synthetic fleet matches every
distributional statistic the paper publishes:

* Aggregation faults (SWD / double-SWD / half-total) damage a set of
  discrete **weak segments** — a few adjacent rows each, one per failing
  sub-wordline-driver section — spread over a cluster extent of 48-160
  rows.  Consecutive UERs hop *between* segments, which yields the
  chi-square locality peak at a 128-row threshold (Fig. 4), while future
  UERs preferentially strike segments that already errored, which is what
  makes the paper's 8-row prediction blocks learnable (Table IV).
* Most faults emit their first UER with *no* prior CE/UEO in the bank —
  the precursor decision is made per *device* (see
  :class:`repro.faults.injector.FaultInjector`), which keeps the
  bank-level sudden ratio of Table I flat across micro-levels except for
  the co-location effects modelled separately.
* Table II implies that most UER banks carry no CEs at all (9318 total
  banks vs 8557 with CE, with 1074 UER banks), so the post-onset CE
  stream is itself conditional (``ce_stream_prob``).
* UEO volume is concentrated in scattered/column faults, matching the
  537 banks-with-UEO vs 4888 rows-with-UEO structure of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.types import FailurePattern, FaultType, PATTERN_OF_FAULT
from repro.telemetry.events import ErrorType

DAY_S = 86400.0


@dataclass(frozen=True)
class FaultProcessParams:
    """Tunable parameters of every fault error process.

    The defaults are the calibrated values; the calibration tests assert
    the resulting fleet statistics stay inside the paper's bands.
    """

    window_days: float = 180.0
    rows: int = 32768
    columns: int = 128

    # --- UER row counts per fault (before window censoring) ---------------
    uer_rows_geom_p: Dict[str, float] = field(default_factory=lambda: {
        FaultType.SWD_FAULT.value: 0.28,
        FaultType.DOUBLE_SWD_FAULT.value: 0.26,
        FaultType.HALF_TOTAL_FAULT.value: 0.26,
        FaultType.TSV_FAULT.value: 0.26,
        FaultType.COLUMN_DRIVER_FAULT.value: 0.22,
    })
    uer_rows_min: Dict[str, int] = field(default_factory=lambda: {
        FaultType.SWD_FAULT.value: 2,
        FaultType.DOUBLE_SWD_FAULT.value: 2,
        FaultType.HALF_TOTAL_FAULT.value: 2,
        FaultType.TSV_FAULT.value: 3,
        FaultType.COLUMN_DRIVER_FAULT.value: 4,
    })

    # --- spatial kernels ----------------------------------------------------
    double_interval_range: Tuple[int, int] = (1024, 8192)
    pitch_range: Tuple[int, int] = (24, 96)
    lattice_positions_range: Tuple[int, int] = (5, 12)
    deterministic_walk_frac: float = 0.45
    walk_jitter: int = 1
    momentum_prob: float = 0.85
    double_hop_prob: float = 0.10
    walk_restart_prob: float = 0.05
    adjacent_recurrence_prob: float = 0.09
    noise_near_weak_prob: float = 0.60
    outlier_row_prob: float = 0.03
    tsv_region_log_range: Tuple[float, float] = (512.0, 32768.0)

    # --- temporal process ---------------------------------------------------
    uer_gap_days_range: Tuple[float, float] = (0.2, 10.0)
    onset_latest_fraction: float = 0.9

    # --- precursors (sudden-vs-non-sudden control) ---------------------------
    precursor_prob: float = 0.315
    precursor_count_mean: float = 2.0
    precursor_in_row_frac: float = 0.70
    precursor_ueo_prob: float = 0.15
    precursor_span_days: float = 0.2

    # --- post-onset CE stream -------------------------------------------------
    ce_stream_prob: Dict[str, float] = field(default_factory=lambda: {
        FaultType.SWD_FAULT.value: 0.32,
        FaultType.DOUBLE_SWD_FAULT.value: 0.32,
        FaultType.HALF_TOTAL_FAULT.value: 0.32,
        FaultType.TSV_FAULT.value: 0.80,
        FaultType.COLUMN_DRIVER_FAULT.value: 0.90,
    })
    ce_count_mean: Dict[str, float] = field(default_factory=lambda: {
        FaultType.SWD_FAULT.value: 12.0,
        FaultType.DOUBLE_SWD_FAULT.value: 12.0,
        FaultType.HALF_TOTAL_FAULT.value: 12.0,
        FaultType.TSV_FAULT.value: 18.0,
        FaultType.COLUMN_DRIVER_FAULT.value: 25.0,
    })

    # --- UEO stream -------------------------------------------------------------
    ueo_count_mean: Dict[str, float] = field(default_factory=lambda: {
        FaultType.SWD_FAULT.value: 0.22,
        FaultType.DOUBLE_SWD_FAULT.value: 0.80,
        FaultType.HALF_TOTAL_FAULT.value: 0.80,
        FaultType.TSV_FAULT.value: 18.0,
        FaultType.COLUMN_DRIVER_FAULT.value: 26.0,
    })

    # --- CE-only background faults ------------------------------------------------
    cell_fault_rows_mean: float = 5.4
    cell_fault_events_per_row: float = 1.6

    @property
    def window_s(self) -> float:
        """Observation window length in seconds."""
        return self.window_days * DAY_S


@dataclass(frozen=True)
class PlannedEvent:
    """One event of a fault realisation (bank-relative coordinates)."""

    time: float
    row: int
    column: int
    kind: ErrorType


@dataclass
class FaultRealization:
    """A fault's full event stream plus the ground truth around it.

    Attributes:
        fault_type: mechanism that was planted.
        pattern: Cordial class of the mechanism (``None`` for CE-only
            cell faults).
        anchor_rows: cluster centres (empty for scattered mechanisms).
        cluster_width: half-width of the row kernels (0 when N/A).
        events: all realised events, time-sorted.
        uer_row_sequence: ``(first_time, row)`` of each distinct UER row in
            occurrence order — the ground truth cross-row prediction and the
            ICR replay evaluate against.
    """

    fault_type: FaultType
    pattern: Optional[FailurePattern]
    anchor_rows: Tuple[int, ...]
    cluster_width: int
    events: List[PlannedEvent]
    uer_row_sequence: List[Tuple[float, int]]

    @property
    def has_uer(self) -> bool:
        """Whether any UER materialised inside the window."""
        return bool(self.uer_row_sequence)


def _clip_row(row: float, rows: int) -> int:
    return int(min(max(row, 0), rows - 1))


def _draw_uer_row_count(fault_type: FaultType, params: FaultProcessParams,
                        rng: np.random.Generator) -> int:
    p = params.uer_rows_geom_p[fault_type.value]
    minimum = params.uer_rows_min[fault_type.value]
    return minimum + int(rng.geometric(p)) - 1


# ---------------------------------------------------------------------------
# Row kernels
# ---------------------------------------------------------------------------

class RowKernel:
    """Where a fault's error rows come from.

    ``plan_uer_rows`` produces the fault's distinct UER row sequence;
    ``noise_row`` produces a row for a CE/UEO/precursor event.
    """

    anchors: Tuple[int, ...] = ()
    width: int = 0

    def plan_uer_rows(self, count: int,
                      rng: np.random.Generator) -> List[int]:
        raise NotImplementedError

    def noise_row(self, rng: np.random.Generator) -> int:
        raise NotImplementedError


class PitchWalkKernel(RowKernel):
    """Lattice-walk cluster kernel of aggregation faults.

    A failing sub-wordline driver degrades a *lattice* of weak row
    positions spaced one physical stride (the pitch, 24-96 rows) apart —
    ``anchor + i * pitch`` for a handful of indices.  Successive UER rows
    walk along the lattice indices with strong directional momentum,
    reflecting at the lattice ends, with +/-1-row jitter; occasionally a
    UER recurs right next to the previous row (``adjacent_recurrence_prob``
    — the only part a +/-4-row neighbourhood policy catches), restarts at
    a random lattice position, or strikes an outlier row.

    This geometry produces all three published behaviours at once:
    consecutive-UER distances concentrate in (pitch .. 2*pitch], peaking
    the Fig. 4 chi-square at the 128-row threshold; future UERs land on
    lattice positions inferable from the first three UER rows (what makes
    the 8-row prediction blocks of Table IV learnable); and they stay
    mostly outside +/-4 of prior UER rows (why Cordial beats the
    Neighbor-Rows baseline).

    CE/UEO noise flanks the lattice's weak rows (within +/-3 but never the
    exact row), marking where the walk has been and will go.
    """

    def __init__(self, anchors: Sequence[int], params: FaultProcessParams,
                 rng: np.random.Generator) -> None:
        self.params = params
        low, high = params.pitch_range
        self.pitch = int(rng.integers(low, high + 1))
        # "Textbook" SWD faults march down the lattice one stride at a
        # time with no jitter; the rest wander.  The deterministic
        # sub-population is what a selective predictor can nail with high
        # precision (the Table IV precision/recall profile).
        self.deterministic = bool(rng.random()
                                  < params.deterministic_walk_frac)
        self.lattices: List[List[int]] = []
        centers = []
        for anchor in anchors:
            n_positions = int(rng.integers(*params.lattice_positions_range))
            start = anchor - (n_positions // 2) * self.pitch
            positions = [_clip_row(start + i * self.pitch, params.rows)
                         for i in range(n_positions)]
            self.lattices.append(positions)
            centers.append(positions[len(positions) // 2])
        self.anchors = tuple(centers)
        self.width = max((len(lat) - 1) * self.pitch // 2 + 1
                         for lat in self.lattices)
        # Per-cluster walk state: (lattice index, direction).
        self._state: Dict[int, Tuple[int, int]] = {}
        self._planned_rows: List[int] = []

    def _lattice_row(self, cluster: int, index: int,
                     rng: np.random.Generator) -> int:
        if self.deterministic:
            jitter = 0
        else:
            jitter = int(rng.integers(-self.params.walk_jitter,
                                      self.params.walk_jitter + 1))
        return _clip_row(self.lattices[cluster][index] + jitter,
                         self.params.rows)

    def _next_walk_row(self, cluster: int,
                       rng: np.random.Generator) -> int:
        params = self.params
        lattice = self.lattices[cluster]
        state = self._state.get(cluster)
        if state is None:
            index = int(rng.integers(0, len(lattice)))
            self._state[cluster] = (index, 1 if rng.random() < 0.5 else -1)
            return self._lattice_row(cluster, index, rng)
        index, direction = state
        if self.deterministic:
            outlier_p, restart_p, adjacent_p = 0.02, 0.0, 0.06
            momentum_p, double_hop_p = 1.0, 0.0
        else:
            outlier_p = params.outlier_row_prob
            restart_p = params.walk_restart_prob
            adjacent_p = params.adjacent_recurrence_prob
            momentum_p = params.momentum_prob
            double_hop_p = params.double_hop_prob
        u = rng.random()
        if u < outlier_p:
            return int(rng.integers(0, params.rows))
        if u < outlier_p + restart_p:
            index = int(rng.integers(0, len(lattice)))
            self._state[cluster] = (index, direction)
            return self._lattice_row(cluster, index, rng)
        if u < outlier_p + restart_p + adjacent_p:
            sign = 1 if rng.random() < 0.5 else -1
            return _clip_row(lattice[index] + sign * int(rng.integers(2, 5)),
                             params.rows)
        if rng.random() > momentum_p:
            direction = -direction
        hops = 2 if rng.random() < double_hop_p else 1
        index += direction * hops
        # Reflect at the lattice ends (and flip the walk direction).
        if index < 0:
            index = -index
            direction = 1
        if index >= len(lattice):
            index = 2 * (len(lattice) - 1) - index
            direction = -1
        index = max(0, min(len(lattice) - 1, index))
        self._state[cluster] = (index, direction)
        return self._lattice_row(cluster, index, rng)

    def plan_uer_rows(self, count: int,
                      rng: np.random.Generator) -> List[int]:
        """Distinct UER rows from the lattice walk (per-cluster state)."""
        rows: List[int] = []
        seen: Set[int] = set()
        attempts = 0
        n_clusters = len(self.lattices)
        weights = (np.asarray([0.55, 0.45]) if n_clusters == 2
                   else np.ones(n_clusters) / n_clusters)
        while len(rows) < count and attempts < 60 * count + 200:
            attempts += 1
            cluster = int(rng.choice(n_clusters, p=weights))
            row = self._next_walk_row(cluster, rng)
            if row in seen:
                continue
            seen.add(row)
            rows.append(row)
        self._planned_rows = list(rows)
        return rows

    def noise_row(self, rng: np.random.Generator) -> int:
        """A CE/UEO row flanking a weak row (never exactly on it): either a
        row the walk visits, or an unvisited lattice position."""
        params = self.params
        offset = int(rng.integers(1, 4))
        if rng.random() < 0.5:
            offset = -offset
        if self._planned_rows and rng.random() < params.noise_near_weak_prob:
            target = int(self._planned_rows[int(rng.integers(
                0, len(self._planned_rows)))])
        else:
            cluster = int(rng.integers(0, len(self.lattices)))
            lattice = self.lattices[cluster]
            target = lattice[int(rng.integers(0, len(lattice)))]
        return _clip_row(target + offset, params.rows)


class RegionKernel(RowKernel):
    """TSV-fault kernel: rows uniform within a damaged address region."""

    def __init__(self, params: FaultProcessParams,
                 rng: np.random.Generator) -> None:
        self.params = params
        lo, hi = params.tsv_region_log_range
        size = int(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        size = min(size, params.rows)
        self.region_size = size
        self.region_start = int(rng.integers(0, params.rows - size + 1))

    def plan_uer_rows(self, count: int,
                      rng: np.random.Generator) -> List[int]:
        count = min(count, self.region_size)
        offsets = rng.choice(self.region_size, size=count, replace=False)
        return [self.region_start + int(o) for o in offsets]

    def noise_row(self, rng: np.random.Generator) -> int:
        return self.region_start + int(rng.integers(0, self.region_size))


class UniformKernel(RowKernel):
    """Whole-column kernel: rows dispersed over the entire bank."""

    def __init__(self, params: FaultProcessParams) -> None:
        self.params = params

    def plan_uer_rows(self, count: int,
                      rng: np.random.Generator) -> List[int]:
        count = min(count, self.params.rows)
        return list(rng.choice(self.params.rows, size=count, replace=False))

    def noise_row(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.params.rows))


class FaultProcess:
    """Realises planted faults into event streams."""

    def __init__(self, params: FaultProcessParams | None = None) -> None:
        self.params = params or FaultProcessParams()

    # -- public entry points ---------------------------------------------------
    def realize(self, fault_type: FaultType, rng: np.random.Generator,
                emit_precursors: Optional[bool] = None) -> FaultRealization:
        """Realise one fault of ``fault_type`` into its event stream.

        Args:
            emit_precursors: whether the fault emits CE/UEO signals before
                its first UER.  ``None`` draws the decision per fault with
                ``precursor_prob``; the fleet injector instead passes a
                per-device flag so that co-hosted faults share the decision
                (Table I calibration — see module docstring).
        """
        if fault_type is FaultType.CELL_FAULT:
            return self._realize_cell_fault(rng)
        if emit_precursors is None:
            emit_precursors = rng.random() < self.params.precursor_prob
        return self._realize_uce_fault(fault_type, rng, emit_precursors)

    # -- CE-only background fault -------------------------------------------------
    def _realize_cell_fault(self, rng: np.random.Generator) -> FaultRealization:
        params = self.params
        n_rows = max(1, int(rng.poisson(params.cell_fault_rows_mean)))
        n_rows = min(n_rows, params.rows)
        rows = rng.choice(params.rows, size=n_rows, replace=False)
        events: List[PlannedEvent] = []
        for row in rows:
            n_events = max(1, int(rng.poisson(params.cell_fault_events_per_row)))
            column = int(rng.integers(0, params.columns))
            for _ in range(n_events):
                events.append(PlannedEvent(
                    time=float(rng.uniform(0, params.window_s)),
                    row=int(row), column=column, kind=ErrorType.CE))
        events.sort(key=lambda e: e.time)
        return FaultRealization(
            fault_type=FaultType.CELL_FAULT, pattern=None, anchor_rows=(),
            cluster_width=0, events=events, uer_row_sequence=[])

    # -- UCE-producing faults ---------------------------------------------------------
    def _make_kernel(self, fault_type: FaultType,
                     rng: np.random.Generator) -> Tuple[RowKernel,
                                                        Optional[int]]:
        """Build the fault's row kernel; returns ``(kernel, fixed_column)``."""
        params = self.params
        margin = (params.lattice_positions_range[1]
                  * params.pitch_range[1])
        if fault_type is FaultType.SWD_FAULT:
            anchor = int(rng.integers(margin, params.rows - margin))
            return PitchWalkKernel([anchor], params, rng), None
        if fault_type in (FaultType.DOUBLE_SWD_FAULT,
                          FaultType.HALF_TOTAL_FAULT):
            if fault_type is FaultType.HALF_TOTAL_FAULT:
                interval = params.rows // 2
            else:
                interval = int(rng.integers(*params.double_interval_range))
            a1 = int(rng.integers(margin,
                                  params.rows - interval - margin))
            return PitchWalkKernel([a1, a1 + interval], params, rng), None
        if fault_type is FaultType.COLUMN_DRIVER_FAULT:
            return (UniformKernel(params),
                    int(rng.integers(0, params.columns)))
        return RegionKernel(params, rng), None  # TSV

    def _realize_uce_fault(self, fault_type: FaultType,
                           rng: np.random.Generator,
                           emit_precursors: bool) -> FaultRealization:
        params = self.params
        kernel, fixed_column = self._make_kernel(fault_type, rng)
        pattern = PATTERN_OF_FAULT[fault_type]

        def draw_column() -> int:
            if fixed_column is not None:
                return fixed_column
            return int(rng.integers(0, params.columns))

        # --- UER rows and times -------------------------------------------
        onset = float(rng.uniform(0, params.onset_latest_fraction
                                  * params.window_s))
        n_planned = _draw_uer_row_count(fault_type, params, rng)
        uer_rows = kernel.plan_uer_rows(n_planned, rng)
        gap_mean = float(np.exp(rng.uniform(
            np.log(params.uer_gap_days_range[0]),
            np.log(params.uer_gap_days_range[1])))) * DAY_S
        times: List[float] = [onset]
        while len(times) < len(uer_rows):
            times.append(times[-1] + float(rng.exponential(gap_mean)))
        realized = [(t, r) for t, r in zip(times, uer_rows)
                    if t <= params.window_s]
        events: List[PlannedEvent] = [
            PlannedEvent(time=t, row=r, column=draw_column(),
                         kind=ErrorType.UER)
            for t, r in realized
        ]
        first_uer = realized[0][0] if realized else onset

        # --- precursors (non-sudden banks) ----------------------------------
        if emit_precursors and first_uer > 0:
            events.extend(self._precursor_events(
                first_uer, realized, kernel, draw_column, rng))

        # --- post-onset CE and UEO streams -------------------------------------
        if rng.random() < params.ce_stream_prob[fault_type.value]:
            n_ce = int(rng.poisson(params.ce_count_mean[fault_type.value]))
            for _ in range(n_ce):
                t = float(rng.uniform(first_uer, params.window_s))
                events.append(PlannedEvent(time=t, row=kernel.noise_row(rng),
                                           column=draw_column(),
                                           kind=ErrorType.CE))
        n_ueo = int(rng.poisson(params.ueo_count_mean[fault_type.value]))
        for _ in range(n_ueo):
            t = float(rng.uniform(first_uer, params.window_s))
            events.append(PlannedEvent(time=t, row=kernel.noise_row(rng),
                                       column=draw_column(),
                                       kind=ErrorType.UEO))

        events.sort(key=lambda e: e.time)
        return FaultRealization(
            fault_type=fault_type,
            pattern=pattern,
            anchor_rows=kernel.anchors,
            cluster_width=kernel.width,
            events=events,
            uer_row_sequence=realized,
        )

    def _precursor_events(self, first_uer: float,
                          realized: List[Tuple[float, int]],
                          kernel: RowKernel, draw_column,
                          rng: np.random.Generator) -> List[PlannedEvent]:
        """CE/UEO signals strictly before the fault's first UER.

        Additionally, with probability ``precursor_in_row_frac`` one of the
        fault's UER *rows* gets its own in-row precursor CE shortly before
        that row's first UER (it may come after the bank's first UER) —
        this single knob sets the paper's 4.39 % row-level predictable
        ratio.
        """
        params = self.params
        events: List[PlannedEvent] = []
        span_s = params.precursor_span_days * DAY_S
        span = min(first_uer, span_s)
        n_pre = 1 + int(rng.poisson(params.precursor_count_mean))
        for _ in range(n_pre):
            t = float(rng.uniform(first_uer - span, first_uer))
            t = max(0.0, min(t, np.nextafter(first_uer, 0.0)))
            kind = (ErrorType.UEO if rng.random() < params.precursor_ueo_prob
                    else ErrorType.CE)
            events.append(PlannedEvent(time=t, row=kernel.noise_row(rng),
                                       column=draw_column(), kind=kind))
        if realized and rng.random() < params.precursor_in_row_frac:
            row_time, row = realized[int(rng.integers(0, len(realized)))]
            t = float(rng.uniform(max(0.0, row_time - span_s), row_time))
            t = min(t, np.nextafter(row_time, 0.0))
            events.append(PlannedEvent(time=t, row=row,
                                       column=draw_column(),
                                       kind=ErrorType.CE))
        return events
