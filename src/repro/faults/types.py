"""Fault taxonomy and its mapping onto bank-level failure patterns.

The paper's empirical study (Section III-B, Figure 3) identifies five
observable bank-level patterns; Cordial's classifier collapses them into
three classes (Section IV): the two half-total/whole-column special cases
fold into double-row clustering and scattered respectively.

Each observable pattern is produced by a physical fault mechanism
documented in the HBM-reliability literature the paper cites (SWD
malfunction, TSV/micro-bump damage, column-driver failure, isolated weak
cells), so the generator plants *faults* and the patterns emerge from
their error processes.
"""

from __future__ import annotations

import enum


class FailurePattern(enum.Enum):
    """Cordial's three bank-level failure-pattern classes (Section IV-C)."""

    SINGLE_ROW = "single-row-clustering"
    DOUBLE_ROW = "double-row-clustering"
    SCATTERED = "scattered"

    @property
    def is_aggregation(self) -> bool:
        """Aggregation patterns get cross-row prediction + row sparing;
        scattered banks are bank-spared directly (Section IV-A)."""
        return self in (FailurePattern.SINGLE_ROW, FailurePattern.DOUBLE_ROW)

    @property
    def label(self) -> str:
        """Display label matching the paper's tables."""
        return {
            FailurePattern.SINGLE_ROW: "Single-row Clustering",
            FailurePattern.DOUBLE_ROW: "Double-row Clustering",
            FailurePattern.SCATTERED: "Scattered Pattern",
        }[self]


class FaultType(enum.Enum):
    """Physical fault mechanisms planted by the generator.

    The first five each map to one Figure 3(b) slice; ``CELL_FAULT`` is the
    correctable-only background that never produces UERs.
    """

    SWD_FAULT = "swd"                    # single-row clustering
    DOUBLE_SWD_FAULT = "double-swd"      # double-row clustering
    HALF_TOTAL_FAULT = "half-total"      # double-row, interval = rows/2
    TSV_FAULT = "tsv"                    # scattered
    COLUMN_DRIVER_FAULT = "column"       # whole column (scattered class)
    CELL_FAULT = "cell"                  # CE-only background

    @property
    def produces_uer(self) -> bool:
        """Whether the fault's error process emits uncorrectable errors."""
        return self is not FaultType.CELL_FAULT


#: Observable fault mechanism -> Cordial classifier class.
PATTERN_OF_FAULT = {
    FaultType.SWD_FAULT: FailurePattern.SINGLE_ROW,
    FaultType.DOUBLE_SWD_FAULT: FailurePattern.DOUBLE_ROW,
    FaultType.HALF_TOTAL_FAULT: FailurePattern.DOUBLE_ROW,
    FaultType.TSV_FAULT: FailurePattern.SCATTERED,
    FaultType.COLUMN_DRIVER_FAULT: FailurePattern.SCATTERED,
}

#: Figure 3(b) slice labels for the five observable mechanisms.
FIG3B_SLICE_LABELS = {
    FaultType.SWD_FAULT: "Single-row Clustering",
    FaultType.DOUBLE_SWD_FAULT: "Double-row Clustering",
    FaultType.HALF_TOTAL_FAULT: "Half Total-row Clustering",
    FaultType.TSV_FAULT: "Scattered Pattern",
    FaultType.COLUMN_DRIVER_FAULT: "Whole Column",
}
