"""Named what-if fleet scenarios.

Operators plan capacity against futures, not a single calibrated present:
what if the fleet ages (more faults per device), what if TSV damage
dominates the next HBM revision, what if a CE storm floods telemetry?
Each scenario returns a ready :class:`~repro.datasets.config.FleetGenConfig`
derived from the calibrated defaults with documented, bounded deviations —
so every what-if stays comparable to the baseline.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.faults.injector import DEFAULT_PATTERN_WEIGHTS
from repro.faults.types import FaultType

if TYPE_CHECKING:  # imported lazily below to avoid a package cycle
    from repro.datasets.config import FleetGenConfig


def _config_cls():
    from repro.datasets.config import FleetGenConfig
    return FleetGenConfig


def baseline(scale: float = 1.0) -> "FleetGenConfig":
    """The calibrated fleet, as published (DESIGN.md section 2)."""
    return _config_cls()(scale=scale)


def aged_fleet(scale: float = 1.0, aging_factor: float = 2.0
               ) -> "FleetGenConfig":
    """A fleet late in life: more failing devices, denser CE noise.

    ``aging_factor`` multiplies both the bad-HBM population and the
    CE-only background.
    """
    if aging_factor < 1.0:
        raise ValueError("aging_factor must be >= 1")
    base = _config_cls()(scale=scale)
    return replace(base,
                   n_bad_hbms=round(base.n_bad_hbms * aging_factor),
                   n_cell_faults=round(base.n_cell_faults * aging_factor))


def tsv_dominant(scale: float = 1.0) -> "FleetGenConfig":
    """A stacking-defect-heavy fleet: scattered patterns double.

    Models a packaging regression (poor micro-bump yield): TSV and
    whole-column faults take share from single-row clustering.
    """
    weights = dict(DEFAULT_PATTERN_WEIGHTS)
    shift = weights[FaultType.TSV_FAULT] + weights[
        FaultType.COLUMN_DRIVER_FAULT]
    weights[FaultType.TSV_FAULT] *= 2
    weights[FaultType.COLUMN_DRIVER_FAULT] *= 2
    weights[FaultType.SWD_FAULT] -= shift
    if weights[FaultType.SWD_FAULT] <= 0:
        raise ValueError("pattern weights became degenerate")
    # FleetGenConfig carries process params; pattern weights live in the
    # injector, so scenarios with changed weights ship them via the
    # process params' companion dict.
    config = _config_cls()(scale=scale)
    return replace(config, pattern_weights=weights)


def ce_storm(scale: float = 1.0, storm_factor: float = 4.0
             ) -> "FleetGenConfig":
    """Telemetry-stress scenario: the CE background floods the collector.

    Fault behaviour is unchanged — this stresses analysis/alarming paths
    (does Table I survive? do alarms storm?).
    """
    if storm_factor < 1.0:
        raise ValueError("storm_factor must be >= 1")
    base = _config_cls()(scale=scale)
    process = replace(base.process,
                      cell_fault_events_per_row=(
                          base.process.cell_fault_events_per_row
                          * storm_factor))
    return replace(base, process=process)


def sudden_heavy(scale: float = 1.0) -> "FleetGenConfig":
    """Worst case for any history-based method: precursors nearly vanish
    (bank-level predictable ratio drops towards zero)."""
    base = _config_cls()(scale=scale)
    process = replace(base.process, precursor_prob=0.05,
                      precursor_in_row_frac=0.2)
    return replace(base, process=process)


def fast_failing(scale: float = 1.0) -> "FleetGenConfig":
    """Compressed failure timelines: UER gaps shrink 5x, stressing how
    much of each bank's failure the 3-UER trigger can still preempt."""
    base = _config_cls()(scale=scale)
    lo, hi = base.process.uer_gap_days_range
    process = replace(base.process, uer_gap_days_range=(lo / 5, hi / 5))
    return replace(base, process=process)


#: Registry for CLIs/benches: name -> factory(scale) -> FleetGenConfig.
SCENARIOS: Dict[str, Callable[..., "FleetGenConfig"]] = {
    "baseline": baseline,
    "aged-fleet": aged_fleet,
    "tsv-dominant": tsv_dominant,
    "ce-storm": ce_storm,
    "sudden-heavy": sudden_heavy,
    "fast-failing": fast_failing,
}


def list_scenarios() -> List[str]:
    """Names of the available scenarios."""
    return sorted(SCENARIOS)
