"""Planting faults on the fleet.

Placement reproduces the *device-level clustering* visible in the paper's
Table II: UER banks concentrate on few HBMs (1074 banks over 421 HBMs,
mostly within one bank group), and the background of correctable-only
faults is partially co-located with them (which produces the Table I
gradient of non-sudden ratios from bank level up to NPU level).

Placement and realisation are deliberately split: ``plan_uce_faults`` /
``plan_cell_faults`` make every *where* decision (bank keys, fault types,
precursor flags, anchor choices) on a dedicated placement generator, while
realisation draws come from separate per-fault generators.  This is what
lets :mod:`repro.datasets.parallel` realise faults across processes in any
shard arrangement without perturbing placement — and it fixes the latent
seed coupling where CE-fault placement used to depend on how many draws
the UCE realisations had consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.processes import (DAY_S, FaultProcess, FaultProcessParams,
                                    FaultRealization, PlannedEvent)
from repro.faults.types import FaultType
from repro.hbm.geometry import FleetGeometry


@dataclass
class PlantedFault:
    """A fault bound to a concrete bank of the fleet."""

    bank_key: tuple  # (node, npu, hbm, sid, ch, psch, bg, bank)
    fault_type: FaultType
    realization: FaultRealization


@dataclass(frozen=True)
class UcePlacement:
    """Placement decision for one UCE-producing fault (no realisation yet)."""

    bank_key: tuple
    fault_type: FaultType
    emit_precursors: bool


@dataclass(frozen=True)
class CellPlacement:
    """Placement decision for one CE-only cell fault.

    ``anchor_index`` points into the anchor fault sequence the placement
    was planned against (``None`` for uniformly placed faults); the
    realiser uses it to retime the fault near the anchor's first UER.
    """

    bank_key: tuple
    anchor_index: Optional[int]


def retime_near_anchor(realization: FaultRealization, t_star: float,
                       params: FaultProcessParams,
                       rng: np.random.Generator) -> FaultRealization:
    """Redraw a cell fault's event times around an anchor's first UER.

    Events land uniformly in ``[t* - 0.25 d, t* + 1 d]`` (clipped to the
    window), where ``t_star`` is the anchor fault's first UER time.
    """
    low = max(0.0, t_star - 0.25 * DAY_S)
    high = min(params.window_s, t_star + 1.0 * DAY_S)
    events = [PlannedEvent(time=float(rng.uniform(low, high)),
                           row=e.row, column=e.column, kind=e.kind)
              for e in realization.events]
    events.sort(key=lambda e: e.time)
    return FaultRealization(
        fault_type=realization.fault_type,
        pattern=realization.pattern,
        anchor_rows=realization.anchor_rows,
        cluster_width=realization.cluster_width,
        events=events,
        uer_row_sequence=realization.uer_row_sequence,
    )


#: Figure 3(b) slice weights (disjoint reading — see DESIGN.md section 3).
DEFAULT_PATTERN_WEIGHTS: Dict[FaultType, float] = {
    FaultType.SWD_FAULT: 0.682,
    FaultType.DOUBLE_SWD_FAULT: 0.099,
    FaultType.HALF_TOTAL_FAULT: 0.021,
    FaultType.TSV_FAULT: 0.125,
    FaultType.COLUMN_DRIVER_FAULT: 0.073,
}

#: How an extra UER bank on an already-bad HBM spills across the hierarchy
#: (calibrated against the Table II SID/PS-CH/BG/Bank counts).
DEFAULT_SPILL_PROBS: Dict[str, float] = {
    "same_bg": 0.58,
    "same_psch": 0.25,
    "same_ch": 0.07,
    "same_sid": 0.06,
    "other_sid": 0.04,
}

#: Where CE-only cell faults co-locate relative to UER banks; the residual
#: probability mass places them uniformly at random in the fleet.  These
#: tiny probabilities produce the Table I increments of the non-sudden
#: ratio from bank level (29.2 %) up to NPU level (41.9 %).
DEFAULT_COLOC_PROBS: Dict[str, float] = {
    "same_bg": 0.028,
    "same_psch": 0.0012,
    "same_ch": 0.0030,
    "same_sid": 0.0032,
    "same_hbm": 0.0012,
    "same_npu": 0.0006,
}


class FaultInjector:
    """Places and realises faults on a fleet."""

    def __init__(self, fleet: FleetGeometry,
                 process: Optional[FaultProcess] = None,
                 pattern_weights: Optional[Dict[FaultType, float]] = None,
                 spill_probs: Optional[Dict[str, float]] = None,
                 coloc_probs: Optional[Dict[str, float]] = None) -> None:
        self.fleet = fleet
        self.process = process or FaultProcess()
        self.pattern_weights = dict(pattern_weights or DEFAULT_PATTERN_WEIGHTS)
        self.spill_probs = dict(spill_probs or DEFAULT_SPILL_PROBS)
        self.coloc_probs = dict(coloc_probs or DEFAULT_COLOC_PROBS)
        total = sum(self.pattern_weights.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"pattern weights must sum to 1, got {total}")
        if sum(self.coloc_probs.values()) >= 1.0:
            raise ValueError("co-location probabilities must sum to < 1")

    # -- coordinate helpers -----------------------------------------------------
    def _random_bank_key(self, rng: np.random.Generator,
                         base: Optional[tuple] = None,
                         fixed_prefix: int = 0) -> tuple:
        """A bank key sharing the first ``fixed_prefix`` fields of ``base``.

        Field order: node, npu, hbm, sid, ch, psch, bg, bank.
        """
        hbm = self.fleet.hbm
        limits = (self.fleet.nodes, self.fleet.npus_per_node,
                  self.fleet.hbms_per_npu, hbm.sids, hbm.channels,
                  hbm.pseudo_channels, hbm.bank_groups, hbm.banks)
        key: List[int] = []
        for i, limit in enumerate(limits):
            if base is not None and i < fixed_prefix:
                key.append(base[i])
            else:
                key.append(int(rng.integers(0, limit)))
        return tuple(key)

    def _spill_bank_key(self, base: tuple, rng: np.random.Generator) -> tuple:
        """Place an extra UER bank relative to an existing one."""
        names = list(self.spill_probs.keys())
        probs = np.asarray([self.spill_probs[n] for n in names])
        probs = probs / probs.sum()
        choice = names[int(rng.choice(len(names), p=probs))]
        prefix = {
            "same_bg": 7,     # keep node..bg, vary bank
            "same_psch": 6,   # keep node..psch, vary bg+bank
            "same_ch": 5,
            "same_sid": 4,
            "other_sid": 3,   # keep node..hbm, vary sid downward
        }[choice]
        return self._random_bank_key(rng, base=base, fixed_prefix=prefix)

    # -- UCE fault placement -------------------------------------------------------
    def plan_uce_faults(self, n_bad_hbms: int, extra_banks_mean: float,
                        rng: np.random.Generator) -> List[UcePlacement]:
        """Plan UCE-producing fault placements on ``n_bad_hbms`` distinct HBMs.

        Each bad HBM receives ``1 + Poisson(extra_banks_mean)`` fault banks,
        the extras spilling across the hierarchy per ``spill_probs``.

        The precursor decision (whether faults announce themselves with
        CE/UEO signals before their first UER) is drawn once *per HBM* and
        shared by all its fault banks: physically, a degrading stack either
        sheds correctable noise or fails cold as a unit.  This is what
        keeps the Table I non-sudden ratio flat across bank/BG/.../NPU
        levels apart from the co-location effects added separately.

        Only *placement* randomness is consumed here; realisation happens
        separately (per-fault generators) so shards can realise in any
        order.
        """
        if n_bad_hbms < 0:
            raise ValueError("n_bad_hbms must be >= 0")
        placements: List[UcePlacement] = []
        used_banks: Set[tuple] = set()
        used_hbms: Set[tuple] = set()
        fault_types = list(self.pattern_weights.keys())
        type_probs = np.asarray([self.pattern_weights[t] for t in fault_types])

        while len(used_hbms) < n_bad_hbms:
            first = self._random_bank_key(rng)
            hbm_key = first[:3]
            if hbm_key in used_hbms:
                continue
            used_hbms.add(hbm_key)
            emit_precursors = bool(
                rng.random() < self.process.params.precursor_prob)
            n_banks = 1 + int(rng.poisson(extra_banks_mean))
            bank_keys = [first]
            used_banks.add(first)
            attempts = 0
            while len(bank_keys) < n_banks and attempts < 50:
                attempts += 1
                candidate = self._spill_bank_key(first, rng)
                if candidate not in used_banks:
                    used_banks.add(candidate)
                    bank_keys.append(candidate)
            for bank_key in bank_keys:
                fault_type = fault_types[int(rng.choice(len(fault_types),
                                                        p=type_probs))]
                placements.append(UcePlacement(
                    bank_key=bank_key, fault_type=fault_type,
                    emit_precursors=emit_precursors))
        return placements

    def plant_uce_faults(self, n_bad_hbms: int, extra_banks_mean: float,
                         rng: np.random.Generator) -> List[PlantedFault]:
        """Plan *and* realise UCE faults on one generator (sequential path).

        Convenience wrapper over :meth:`plan_uce_faults`; the sharded
        engine instead realises each placement with its own spawned child.
        """
        placements = self.plan_uce_faults(n_bad_hbms, extra_banks_mean, rng)
        return [PlantedFault(bank_key=p.bank_key, fault_type=p.fault_type,
                             realization=self.process.realize(
                                 p.fault_type, rng,
                                 emit_precursors=p.emit_precursors))
                for p in placements]

    # -- CE-only fault placement ------------------------------------------------------
    def plan_cell_faults(self, n_faults: int,
                         anchors: Sequence[PlantedFault],
                         rng: np.random.Generator) -> List[CellPlacement]:
        """Plan CE-only cell fault placements, partially co-located with
        UER banks.

        Placement needs only the anchors' bank keys and which of them
        realised a UER; it consumes no realisation randomness, so the
        resulting placements are independent of how (and on how many
        shards) the anchors were realised.
        """
        if n_faults < 0:
            raise ValueError("n_faults must be >= 0")
        names = list(self.coloc_probs.keys())
        probs = [self.coloc_probs[n] for n in names]
        uniform_prob = 1.0 - sum(probs)
        all_choices = names + ["uniform"]
        all_probs = np.asarray(probs + [uniform_prob])
        prefix_of = {
            "same_bg": 7, "same_psch": 6, "same_ch": 5,
            "same_sid": 4, "same_hbm": 3, "same_npu": 2,
        }
        placements: List[CellPlacement] = []
        used: Set[tuple] = {a.bank_key for a in anchors}
        uer_anchor_indexes = [i for i, a in enumerate(anchors)
                              if a.realization.has_uer]
        for _ in range(n_faults):
            anchor_index: Optional[int] = None
            key = None
            for _attempt in range(20):
                choice = all_choices[int(rng.choice(len(all_choices),
                                                    p=all_probs))]
                if choice == "uniform" or not uer_anchor_indexes:
                    anchor_index = None
                    key = self._random_bank_key(rng)
                else:
                    anchor_index = uer_anchor_indexes[int(rng.integers(
                        0, len(uer_anchor_indexes)))]
                    key = self._random_bank_key(
                        rng, base=anchors[anchor_index].bank_key,
                        fixed_prefix=prefix_of[choice])
                if key not in used:
                    used.add(key)
                    break
            else:
                continue
            placements.append(CellPlacement(bank_key=key,
                                            anchor_index=anchor_index))
        return placements

    def realize_cell_placement(self, placement: CellPlacement,
                               anchors: Sequence[PlantedFault],
                               rng: np.random.Generator) -> PlantedFault:
        """Realise one planned cell fault (retimed near its anchor, if any).

        Co-located faults are *temporally* correlated with their anchor:
        the same physical degradation that will produce UERs first sheds
        correctable noise elsewhere on the device, so the cell fault's
        events cluster in a short interval around the anchor's first UER.
        (This, together with the finite observation window of
        :mod:`repro.analysis.sudden`, yields the Table I level increments.)
        """
        realization = self.process.realize(FaultType.CELL_FAULT, rng)
        if placement.anchor_index is not None:
            anchor = anchors[placement.anchor_index]
            t_star = anchor.realization.uer_row_sequence[0][0]
            realization = retime_near_anchor(realization, t_star,
                                             self.process.params, rng)
        return PlantedFault(bank_key=placement.bank_key,
                            fault_type=FaultType.CELL_FAULT,
                            realization=realization)

    def plant_cell_faults(self, n_faults: int,
                          anchors: Sequence[PlantedFault],
                          rng: np.random.Generator) -> List[PlantedFault]:
        """Plan *and* realise CE-only cell faults on one generator.

        Convenience wrapper over :meth:`plan_cell_faults`; the sharded
        engine instead realises each placement with its own spawned child.
        """
        placements = self.plan_cell_faults(n_faults, anchors, rng)
        return [self.realize_cell_placement(p, anchors, rng)
                for p in placements]
