"""Per-decision audit trail: the forensic record behind every isolation.

"Why did this bank get spared at time t?" is the question the AIOps
deployment study (Wu et al.) singles out as the gap between offline
metrics and on-call trust.  :class:`AuditLog` answers it by capturing,
for every isolation decision the service emits, exactly what the model
saw and chose:

* the per-block **feature matrix** the predictor scored (row-sparing
  decisions), and the feature-name schema to read it by;
* the per-block **probabilities** and the **threshold** actually applied;
* the **trigger kind** (initial trigger vs re-prediction) and classified
  pattern;
* the **spare-budget state** before and after the request (requested vs
  newly spared vs truncated);
* optionally, per-feature **attributions** for each flagged block,
  reused from :class:`repro.core.explain.BlockExplainer` over the very
  feature rows the decision scored.

``AuditLog.explain(bank_key, row)`` then answers the operator question
directly: every decision that requested isolation of that row (or
retired the whole bank).  The log is JSON-ready throughout, rides in the
version-3 service checkpoint, and is exported as JSONL next to the run
journal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

AUDIT_FORMAT = "cordial-audit-log"
AUDIT_VERSION = 1


class AuditLog:
    """Append-only record of every isolation decision, queryable by row.

    Args:
        feature_names: the cross-row feature schema (stored once; every
            record's ``features`` matrix is read against it).
        attributions: when True, row-sparing records carry per-feature
            attributions for each flagged block (computed by the caller
            through :meth:`attribute_flagged`; expensive, off by
            default).
        top_k: attributions kept per flagged block.
    """

    def __init__(self, feature_names: Sequence[str] = (),
                 attributions: bool = False, top_k: int = 5) -> None:
        self.feature_names: List[str] = [str(n) for n in feature_names]
        self.attributions = attributions
        self.top_k = top_k
        self.records: List[dict] = []
        # row -> record indices, built incrementally so explain() is O(1)
        # in the run length.  Keys are (bank_key, row) for row sparing and
        # (bank_key,) for bank sparing.
        self._by_row: Dict[tuple, List[int]] = {}

    # -- recording -----------------------------------------------------------
    def record_decision(self, *, kind: str, timestamp: float,
                        bank_key: tuple, action: str, pattern: Optional[str],
                        threshold: Optional[float] = None,
                        probabilities: Optional[np.ndarray] = None,
                        flagged: Optional[np.ndarray] = None,
                        block_ranges: Optional[Sequence[Tuple[int, int]]] = None,
                        features: Optional[np.ndarray] = None,
                        rows_requested: Sequence[int] = (),
                        newly_spared: int = 0,
                        budget_before: Optional[int] = None,
                        budget_after: Optional[int] = None,
                        attributions: Optional[dict] = None) -> dict:
        """Append one decision record; returns it (JSON-ready)."""
        record = {
            "index": len(self.records),
            "kind": kind,
            "timestamp": float(timestamp),
            "bank_key": [int(b) for b in bank_key],
            "action": action,
            "pattern": pattern,
            "threshold": None if threshold is None else float(threshold),
            "probabilities": (None if probabilities is None
                              else [float(p) for p in probabilities]),
            "flagged_blocks": (None if flagged is None
                               else [int(i) for i, f in enumerate(flagged)
                                     if f]),
            "block_ranges": (None if block_ranges is None
                             else [[int(s), int(e)]
                                   for s, e in block_ranges]),
            "features": (None if features is None
                         else [[float(v) for v in row] for row in features]),
            "rows_requested": [int(r) for r in rows_requested],
            "newly_spared": int(newly_spared),
            "budget_before": budget_before,
            "budget_after": budget_after,
            "attributions": attributions,
        }
        index = len(self.records)
        self.records.append(record)
        bank = tuple(record["bank_key"])
        if action == "bank-spare":
            self._by_row.setdefault((bank,), []).append(index)
        for row in record["rows_requested"]:
            self._by_row.setdefault((bank, row), []).append(index)
        return record

    def attribute_flagged(self, explainer, features: np.ndarray,
                          flagged: np.ndarray) -> dict:
        """Per-feature attributions for each flagged block.

        ``explainer`` is a fitted
        :class:`~repro.core.explain.BlockExplainer`; the attributions
        come from :meth:`~repro.core.explain.BlockExplainer.explain_sample`
        over the decision's own feature rows, so they explain the scores
        as computed, not a re-extraction.
        """
        out = {}
        for block, keep in enumerate(flagged):
            if not keep:
                continue
            explanation = explainer.explain_sample(features[block], block)
            out[str(block)] = [
                {"name": c.name, "value": c.value,
                 "baseline": c.baseline_value, "delta": c.delta}
                for c in explanation.top(self.top_k)]
        return out

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def explain(self, bank_key: tuple, row: int) -> List[dict]:
        """Every decision that isolated ``row`` of ``bank_key``.

        Matches row-sparing decisions whose request covered the row and
        any bank-sparing decision that retired the whole bank, in
        decision order.  An empty list means the run never acted on that
        row — itself an answer.
        """
        bank = tuple(int(b) for b in bank_key)
        indices = sorted(set(self._by_row.get((bank,), [])
                             + self._by_row.get((bank, int(row)), [])))
        return [self.records[i] for i in indices]

    def decisions_for_bank(self, bank_key: tuple) -> List[dict]:
        """Every decision recorded against ``bank_key``, in order."""
        bank = tuple(int(b) for b in bank_key)
        return [r for r in self.records
                if tuple(r["bank_key"]) == bank]

    def summary(self) -> dict:
        """Per-kind and per-action counts (JSON-ready)."""
        kinds: Dict[str, int] = {}
        actions: Dict[str, int] = {}
        for record in self.records:
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
            actions[record["action"]] = actions.get(record["action"], 0) + 1
        return {"records": len(self.records),
                "by_kind": {k: kinds[k] for k in sorted(kinds)},
                "by_action": {k: actions[k] for k in sorted(actions)}}

    # -- persistence ---------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete JSON-ready state (rides in the v3 service checkpoint)."""
        return {"feature_names": list(self.feature_names),
                "attributions": self.attributions,
                "top_k": self.top_k,
                "records": list(self.records)}

    def load_state_dict(self, state: dict) -> "AuditLog":
        """Restore state captured by :meth:`state_dict` (replaces all)."""
        feature_names = [str(n) for n in state["feature_names"]]
        records = [dict(r) for r in state["records"]]
        by_row: Dict[tuple, List[int]] = {}
        for index, record in enumerate(records):
            bank = tuple(int(b) for b in record["bank_key"])
            if record["action"] == "bank-spare":
                by_row.setdefault((bank,), []).append(index)
            for row in record["rows_requested"]:
                by_row.setdefault((bank, int(row)), []).append(index)
        self.feature_names = feature_names
        self.attributions = bool(state.get("attributions", False))
        self.top_k = int(state.get("top_k", 5))
        self.records = records
        self._by_row = by_row
        return self

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Export header + records as JSONL; returns records written."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": AUDIT_FORMAT, "version": AUDIT_VERSION,
                       "feature_names": list(self.feature_names)},
                      handle, sort_keys=True)
            handle.write("\n")
            for record in self.records:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
        return len(self.records)

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "AuditLog":
        """Reload an audit log exported by :meth:`write_jsonl`."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError("empty audit file (missing header)")
        header = json.loads(lines[0])
        if header.get("format") != AUDIT_FORMAT:
            raise ValueError(
                f"not an audit log: format {header.get('format')!r}")
        log = cls(feature_names=header.get("feature_names", ()))
        for line in lines[1:]:
            record = json.loads(line)
            log.record_decision(
                kind=record["kind"], timestamp=record["timestamp"],
                bank_key=tuple(record["bank_key"]), action=record["action"],
                pattern=record["pattern"], threshold=record["threshold"],
                probabilities=record["probabilities"],
                flagged=None, block_ranges=record["block_ranges"],
                features=record["features"],
                rows_requested=record["rows_requested"],
                newly_spared=record["newly_spared"],
                budget_before=record["budget_before"],
                budget_after=record["budget_after"],
                attributions=record["attributions"])
            # record_decision re-derives flagged_blocks as None; keep the
            # original rendering so a read-back log equals its source.
            log.records[-1]["flagged_blocks"] = record["flagged_blocks"]
        return log
