"""Deterministic span tracing for the serving and experiment stack.

Operators debugging a fleet incident ask *where the time went*: how long
did the hot ingest path take, which trigger burned the budget, did the
checkpoint stall the stream?  :class:`SpanTracer` answers with nested
spans behind a dependency-free API, under two hard constraints:

* **determinism on demand** — the clock is injectable.  With
  ``REPRO_FAKE_CLOCK`` set (or an explicit :class:`FakeClock`), every
  clock read returns a counter instead of wall time, so two identical
  runs produce *byte-identical* traces — the property
  ``tests/test_observability.py`` pins.  Without it the tracer reads
  ``time.perf_counter`` like any profiler.
* **bounded memory** — spans land in a ring buffer (``max_spans``);
  overflow drops the oldest spans and counts the loss instead of growing
  without bound over a week-long stream.

Exports: Chrome ``trace_event`` JSON (load it in ``chrome://tracing`` /
Perfetto) and span-duration histograms folded into the shared
:class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Mapping, Optional

from repro.telemetry.metrics import MetricsRegistry

#: Environment variable that switches every default-constructed tracer to
#: the deterministic fake clock.  Its value is the per-read increment in
#: seconds ("1" accepts the bare flag too).
FAKE_CLOCK_ENV = "REPRO_FAKE_CLOCK"


class FakeClock:
    """A clock that advances a fixed step per read — determinism by fiat.

    Span durations become "number of clock reads inside the span" times
    ``step``, which is a stable property of the code path, not of the
    machine.  ``start`` offsets the first reading.
    """

    def __init__(self, step: float = 1e-6, start: float = 0.0) -> None:
        if step <= 0:
            raise ValueError("step must be > 0")
        self.step = float(step)
        self._now = float(start)

    def __call__(self) -> float:
        self._now += self.step
        return self._now


def resolve_clock(clock: Optional[Callable[[], float]] = None
                  ) -> Callable[[], float]:
    """The effective trace clock: explicit > ``REPRO_FAKE_CLOCK`` > wall.

    Passing a callable wins outright.  Otherwise, a set (non-empty)
    ``REPRO_FAKE_CLOCK`` yields a :class:`FakeClock` whose step is the
    variable's float value (non-numeric values mean the default step),
    and an unset variable yields ``time.perf_counter``.
    """
    if clock is not None:
        return clock
    raw = os.environ.get(FAKE_CLOCK_ENV, "")
    if raw:
        try:
            step = float(raw)
        except ValueError:
            step = 1e-6
        return FakeClock(step=step if step > 0 else 1e-6)
    return time.perf_counter


class Span:
    """One finished span: name, interval, nesting depth, and attributes."""

    __slots__ = ("name", "start", "end", "depth", "attrs")

    def __init__(self, name: str, start: float, end: float, depth: int,
                 attrs: Optional[Mapping] = None) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.depth = depth
        self.attrs = dict(attrs) if attrs else {}

    @property
    def duration(self) -> float:
        """Elapsed clock seconds inside the span."""
        return self.end - self.start

    def to_obj(self) -> dict:
        """JSON-ready rendering (deterministic key layout)."""
        return {"name": self.name, "start": self.start, "end": self.end,
                "depth": self.depth, "attrs": self.attrs}


class SpanTracer:
    """Nested span recorder with bounded memory and a pluggable clock.

    Args:
        clock: trace clock (see :func:`resolve_clock` for the default).
        max_spans: ring-buffer capacity; the oldest spans are dropped
            (and counted in :attr:`spans_dropped`) beyond it.
        metrics: optional shared registry; when given, every finished
            span observes its duration into the histogram series
            ``trace.span_seconds{span=<name>}``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_spans: int = 65_536,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = resolve_clock(clock)
        self.max_spans = max_spans
        self.metrics = metrics
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        self._depth = 0
        self.spans_started = 0
        self.spans_dropped = 0

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Record one span around the ``with`` body (exception-safe)."""
        self.spans_started += 1
        depth = self._depth
        self._depth += 1
        start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self._depth = depth
            if len(self._spans) == self.max_spans:
                self.spans_dropped += 1
            self._spans.append(Span(name, start, end, depth, attrs))
            if self.metrics is not None:
                self.metrics.histogram(
                    "trace.span_seconds",
                    labels={"span": name}).observe(end - start)

    # -- queries / export ----------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        return list(self._spans)

    def summary(self) -> dict:
        """Per-name count and total duration (JSON-ready, sorted)."""
        by_name: Dict[str, List[float]] = {}
        for span in self._spans:
            entry = by_name.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            if span.duration > entry[2]:
                entry[2] = span.duration
        return {
            "spans_started": self.spans_started,
            "spans_retained": len(self._spans),
            "spans_dropped": self.spans_dropped,
            "by_name": {
                name: {"count": entry[0],
                       "total_seconds": entry[1],
                       "max_seconds": entry[2]}
                for name, entry in sorted(by_name.items())},
        }

    def export_chrome(self, pid: int = 0, tid: int = 0) -> List[dict]:
        """The retained spans as Chrome ``trace_event`` complete events.

        Timestamps are microseconds relative to the earliest retained
        span, so a trace is a pure function of the clock readings — under
        a fake clock, byte-identical across reruns.
        """
        if not self._spans:
            return []
        origin = min(span.start for span in self._spans)
        events = []
        for span in self._spans:
            event = {
                "name": span.name,
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
            }
            if span.attrs:
                event["args"] = dict(span.attrs)
            events.append(event)
        return events

    def durations_into(self, registry: MetricsRegistry) -> None:
        """Fold the *retained* spans' durations into ``registry``.

        Useful when the tracer was built without a live registry; the
        live path (``metrics=`` at construction) records every span,
        including ones the ring buffer has since dropped.
        """
        for span in self._spans:
            registry.histogram("trace.span_seconds",
                               labels={"span": span.name}
                               ).observe(span.duration)
