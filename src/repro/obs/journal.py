"""Append-only structured run journal (JSONL) with a provenance header.

Both deployment studies the serving layer leans on (Yu et al., Wu et
al.) observe that an offline AUC means nothing on call without the run's
*paper trail*: what code, what seeds, what configuration produced these
decisions, and what did the pipeline actually see?  :class:`RunJournal`
is that trail — line one is a provenance header (git SHA, seed tree,
config digest via :func:`repro.datasets.digest.config_digest`), every
following line one typed event record:

========================  =====================================================
``ingest`` / ``release``  sampled stream progress markers (every
                          ``sample_every``-th event; counts stay exact)
``quarantine``            one dead-lettered input, with its counted reason
``trigger``               a bank armed its k-th-distinct-UER trigger
``reprediction``          a post-trigger re-run fired
``isolation``             rows or a bank were spared (the decision record)
``checkpoint``            a service snapshot was saved / restored
========================  =====================================================

Events carry a monotonically increasing ``seq`` and a clock reading from
the *trace clock* (see :mod:`repro.obs.tracer`), so under
``REPRO_FAKE_CLOCK`` the whole journal is byte-stable across reruns.
The journal mirrors everything into a bounded in-memory window and, when
given a path, appends each line to disk immediately — a crash loses at
most the line being written, never the file so far.
"""

from __future__ import annotations

import io
import json
import subprocess
from collections import deque
from pathlib import Path
from typing import (Callable, Deque, Dict, List, Mapping, Optional, Tuple,
                    Union)

from repro.obs.tracer import resolve_clock

JOURNAL_FORMAT = "cordial-run-journal"
JOURNAL_VERSION = 1

#: Every event type the journal emits (the schema contract of
#: ``docs/OBSERVABILITY.md``).
EVENT_TYPES = ("ingest", "release", "quarantine", "trigger",
               "reprediction", "isolation", "checkpoint", "run", "campaign",
               "supervision")


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort HEAD SHA of the working tree (None outside a repo)."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def build_provenance(seeds: Optional[Mapping] = None,
                     config: Optional[Mapping] = None,
                     cwd: Optional[str] = None) -> dict:
    """The provenance header payload: git SHA + seed tree + config digest.

    ``config`` is both embedded verbatim and digested through
    :func:`repro.datasets.digest.config_digest`, so two journals describe
    the same run iff their digests match — no field-by-field diffing.
    """
    from repro.datasets.digest import config_digest

    config = dict(config or {})
    return {
        "git_sha": git_sha(cwd),
        "seeds": {str(k): seeds[k] for k in sorted(seeds)} if seeds else {},
        "config": config,
        "config_digest": config_digest(config),
    }


class RunJournal:
    """Typed, append-only JSONL event journal for one serving run.

    Args:
        path: file to append to (opened lazily, line-buffered); ``None``
            keeps the journal in memory only.
        clock: event clock (defaults to :func:`resolve_clock`, which
            honours ``REPRO_FAKE_CLOCK``).
        provenance: header payload (see :func:`build_provenance`);
            written as line one before any event.
        sample_every: journal one ``ingest``/``release`` marker per this
            many occurrences (0 disables the markers entirely).  Counts
            in :meth:`summary` are always exact regardless.
        max_events: in-memory retention window (the file keeps
            everything).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 clock: Optional[Callable[[], float]] = None,
                 provenance: Optional[Mapping] = None,
                 sample_every: int = 1_000,
                 max_events: int = 100_000) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.path = None if path is None else Path(path)
        self.clock = resolve_clock(clock)
        self.sample_every = sample_every
        self.provenance = dict(provenance or {})
        self.seq = 0
        self.counts: Dict[str, int] = {}
        self._events: Deque[dict] = deque(maxlen=max_events)
        self._handle: Optional[io.TextIOBase] = None
        self._ingest_seen = 0
        self._release_seen = 0
        self._header_written = False

    # -- plumbing ------------------------------------------------------------
    def _write_line(self, obj: dict) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        json.dump(obj, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def _ensure_header(self) -> None:
        if self._header_written:
            return
        self._header_written = True
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION,
                  "provenance": self.provenance}
        self._write_line(header)

    def event(self, event_type: str, **fields) -> dict:
        """Append one typed event; returns the record (JSON-ready)."""
        self._ensure_header()
        self.seq += 1
        self.counts[event_type] = self.counts.get(event_type, 0) + 1
        record = {"seq": self.seq, "t": self.clock(), "type": event_type}
        record.update(fields)
        self._events.append(record)
        self._write_line(record)
        return record

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- typed emitters ------------------------------------------------------
    def ingest(self, timestamp: float, sequence: int, pending: int) -> None:
        """Sampled stream-progress marker for one ingested event."""
        self._ingest_seen += 1
        if self.sample_every and self._ingest_seen % self.sample_every == 0:
            self.event("ingest", n=self._ingest_seen,
                       event_timestamp=timestamp, sequence=sequence,
                       pending=pending)

    def release(self, timestamp: float, sequence: int) -> None:
        """Sampled marker for one event released from the reorder buffer."""
        self._release_seen += 1
        if self.sample_every and self._release_seen % self.sample_every == 0:
            self.event("release", n=self._release_seen,
                       event_timestamp=timestamp, sequence=sequence)

    def quarantine(self, reason: str, detail: str,
                   timestamp: Optional[float] = None) -> None:
        """One dead-lettered input (always journalled — never sampled)."""
        self.event("quarantine", reason=reason, detail=detail,
                   event_timestamp=timestamp)

    def trigger(self, bank_key: tuple, timestamp: float, pattern: str,
                uer_rows: Tuple[int, ...]) -> None:
        """A bank armed its trigger."""
        self.event("trigger", bank_key=[int(b) for b in bank_key],
                   event_timestamp=timestamp, pattern=pattern,
                   uer_rows=[int(r) for r in uer_rows])

    def reprediction(self, bank_key: tuple, timestamp: float,
                     row: int) -> None:
        """A post-trigger re-prediction fired."""
        self.event("reprediction", bank_key=[int(b) for b in bank_key],
                   event_timestamp=timestamp, row=int(row))

    def isolation(self, bank_key: tuple, timestamp: float, action: str,
                  rows: Tuple[int, ...], newly_spared: int,
                  budget_after: Optional[int]) -> None:
        """Rows or a bank were spared."""
        self.event("isolation", bank_key=[int(b) for b in bank_key],
                   event_timestamp=timestamp, action=action,
                   rows=[int(r) for r in rows],
                   newly_spared=int(newly_spared),
                   budget_after=budget_after)

    def checkpoint(self, kind: str, at_event: int) -> None:
        """A service snapshot was saved (``kind="save"``) or restored."""
        self.event("checkpoint", kind=kind, at_event=int(at_event))

    def supervision(self, action: str, worker: int,
                    shards: Tuple[int, ...] = (), detail: str = "") -> None:
        """One shard-supervision transition (failure / restart / poison /
        degraded — see :mod:`repro.serving.supervisor`)."""
        self.event("supervision", action=action, worker=int(worker),
                   shards=[int(s) for s in shards], detail=detail)

    # -- queries -------------------------------------------------------------
    @property
    def events(self) -> List[dict]:
        """The retained in-memory event window, oldest first."""
        return list(self._events)

    def summary(self) -> dict:
        """Exact per-type counts plus stream totals (JSON-ready)."""
        return {
            "events_journalled": self.seq,
            "counts_by_type": {k: self.counts[k]
                               for k in sorted(self.counts)},
            "ingests_seen": self._ingest_seen,
            "releases_seen": self._release_seen,
        }


def read_journal(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
    """Parse a journal file back into ``(header, events)``.

    Raises ``ValueError`` on a missing or foreign header — a journal
    without provenance is not a journal.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError("empty journal file (missing header)")
    header = json.loads(lines[0])
    if header.get("format") != JOURNAL_FORMAT:
        raise ValueError(
            f"not a run journal: format {header.get('format')!r}")
    if header.get("version") != JOURNAL_VERSION:
        raise ValueError(
            f"unsupported journal version: {header.get('version')!r}")
    return header, [json.loads(line) for line in lines[1:]]
