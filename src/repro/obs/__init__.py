"""`repro.obs`: the end-to-end observability layer.

One import point for the four pillars — deterministic span tracing
(:mod:`~repro.obs.tracer`), the structured run journal
(:mod:`~repro.obs.journal`), the per-decision audit trail
(:mod:`~repro.obs.audit`) and Prometheus exposition
(:mod:`~repro.obs.promexport`) — plus :class:`Observability`, the bundle
the serving stack threads through itself.

Everything here is strictly *passive*: with observability attached, the
decisions and ICR of a serving run are byte-identical to an unobserved
run (``tests/test_obs_equivalence.py`` enforces it), and with it
detached the hot path pays a single ``is None`` check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.obs.audit import AuditLog
from repro.obs.journal import RunJournal, build_provenance, read_journal
from repro.obs.promexport import render_prometheus, snapshot_delta
from repro.obs.tracer import FakeClock, SpanTracer, resolve_clock
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "AuditLog", "FakeClock", "Observability", "RunJournal", "SpanTracer",
    "build_provenance", "read_journal", "render_prometheus",
    "resolve_clock", "snapshot_delta",
]

#: Artifact file names inside an ``--obs`` output directory.
TRACE_FILE = "trace.json"
JOURNAL_FILE = "journal.jsonl"
AUDIT_FILE = "audit.jsonl"
METRICS_FILE = "metrics.json"
PROM_FILE = "metrics.prom"
SUMMARY_FILE = "obs_summary.json"


class Observability:
    """Tracer + journal + audit, bundled for the serving stack.

    Components always exist (a detached bundle journals in memory), so
    instrumentation sites need exactly one guard: ``if obs is not
    None``.  Only the audit trail is checkpoint state — the journal is
    its own append-only file and the tracer is process-local — which is
    what rides in the version-3 service checkpoint.
    """

    def __init__(self, tracer: Optional[SpanTracer] = None,
                 journal: Optional[RunJournal] = None,
                 audit: Optional[AuditLog] = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.journal = journal if journal is not None else RunJournal(
            clock=self.tracer.clock)
        self.audit = audit if audit is not None else AuditLog()

    @classmethod
    def create(cls, directory: Optional[Union[str, Path]] = None,
               metrics: Optional[MetricsRegistry] = None,
               provenance: Optional[Mapping] = None,
               clock: Optional[Callable[[], float]] = None,
               attributions: bool = False,
               sample_every: int = 1_000) -> "Observability":
        """A fully wired bundle, optionally writing into ``directory``.

        The directory is created if missing; the journal starts
        appending to ``journal.jsonl`` immediately (provenance header
        first), while the trace/audit/metrics artifacts are written by
        :meth:`export` at end of run.
        """
        clock = resolve_clock(clock)
        journal_path = None
        if directory is not None:
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            journal_path = directory / JOURNAL_FILE
        tracer = SpanTracer(clock=clock, metrics=metrics)
        journal = RunJournal(path=journal_path, clock=clock,
                             provenance=dict(provenance or {}),
                             sample_every=sample_every)
        audit = AuditLog(attributions=attributions)
        return cls(tracer=tracer, journal=journal, audit=audit)

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """The checkpointable slice of the bundle (the audit trail)."""
        return {"audit": self.audit.state_dict()}

    def load_state_dict(self, state: dict) -> "Observability":
        """Restore the audit trail captured by :meth:`state_dict`."""
        self.audit.load_state_dict(state["audit"])
        return self

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict:
        """Journal, trace and audit roll-up (JSON-ready)."""
        return {"journal": self.journal.summary(),
                "trace": self.tracer.summary(),
                "audit": self.audit.summary()}

    def export(self, directory: Union[str, Path],
               metrics: Optional[MetricsRegistry] = None) -> dict:
        """Write every artifact into ``directory``; returns their paths.

        ``trace.json`` (Chrome ``trace_event``), ``audit.jsonl``,
        ``obs_summary.json``, and — when a registry is given —
        ``metrics.json`` (the registry export document) and
        ``metrics.prom`` (text exposition).  The journal has been
        appending to ``journal.jsonl`` all along; it is flushed here.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {}

        trace_path = directory / TRACE_FILE
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": self.tracer.export_chrome()}, handle,
                      sort_keys=True)
            handle.write("\n")
        paths["trace"] = str(trace_path)

        audit_path = directory / AUDIT_FILE
        self.audit.write_jsonl(audit_path)
        paths["audit"] = str(audit_path)

        summary_path = directory / SUMMARY_FILE
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(self.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths["summary"] = str(summary_path)

        if metrics is not None:
            metrics_path = directory / METRICS_FILE
            document = metrics.as_dict()
            with open(metrics_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            paths["metrics"] = str(metrics_path)
            prom_path = directory / PROM_FILE
            with open(prom_path, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(document))
            paths["prom"] = str(prom_path)

        if self.journal.path is not None:
            paths["journal"] = str(self.journal.path)
        self.journal.close()
        return paths
