"""Prometheus text exposition for the dependency-free metrics registry.

The registry (:mod:`repro.telemetry.metrics`) deliberately has no
prometheus-client dependency; this module renders its export document in
the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ version
``0.0.4`` instead, so a node exporter's textfile collector — or a plain
``curl`` — can scrape a Cordial serving run with standard tooling:

* metric names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots become
  underscores);
* label values are escaped per the spec (backslash, double quote,
  newline);
* histograms render cumulative ``_bucket{le="..."}`` series straight from
  the registry's version-2 export (which carries cumulative counts — see
  ``MetricsRegistry.as_dict``), plus ``_sum`` and ``_count``;
* non-finite values render as ``NaN`` / ``+Inf`` / ``-Inf`` exactly as
  the format requires.

:func:`snapshot_delta` diffs two export documents, which is how the
serve-replay report and the benchmarks attribute counter movement to a
specific stretch of stream.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.telemetry.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """A legal Prometheus metric name (dots and hyphens to underscores)."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (str(value).replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def format_value(value: float) -> str:
    """Render a sample value (non-finite values per the format spec)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry series key ``name{k=v,...}`` into (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{sanitize_name(k)}="{escape_label_value(v)}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(source: Union[MetricsRegistry, Mapping],
                      namespace: str = "cordial") -> str:
    """The full registry as Prometheus text exposition.

    Args:
        source: a live :class:`MetricsRegistry` or its ``as_dict``
            export document (both metric-export versions accepted;
            cumulative bucket counts are derived when a version-1
            document lacks them).
        namespace: prefix joined with ``_`` onto every metric name.
    """
    document = (source.as_dict() if isinstance(source, MetricsRegistry)
                else source)
    prefix = sanitize_name(namespace) + "_" if namespace else ""
    lines: List[str] = []

    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for key in sorted(document.get("counters", {})):
        name, labels = parse_series_key(key)
        families.setdefault(name, []).append(
            (labels, document["counters"][key]))
    for name in sorted(families):
        metric = prefix + sanitize_name(name)
        lines.append(f"# HELP {metric} Counter {name} from the Cordial "
                     "metrics registry.")
        lines.append(f"# TYPE {metric} counter")
        for labels, value in families[name]:
            lines.append(
                f"{metric}{_render_labels(labels)} {format_value(value)}")

    gauge_families: Dict[str, List[Tuple[Dict[str, str], Mapping]]] = {}
    for key in sorted(document.get("gauges", {})):
        name, labels = parse_series_key(key)
        gauge_families.setdefault(name, []).append(
            (labels, document["gauges"][key]))
    for name in sorted(gauge_families):
        for suffix, field in (("", "value"), ("_max", "max")):
            metric = prefix + sanitize_name(name) + suffix
            what = "high-water mark of gauge" if suffix else "Gauge"
            lines.append(f"# HELP {metric} {what} {name} from the Cordial "
                         "metrics registry.")
            lines.append(f"# TYPE {metric} gauge")
            for labels, state in gauge_families[name]:
                lines.append(f"{metric}{_render_labels(labels)} "
                             f"{format_value(state[field])}")

    histogram_families: Dict[str, List[Tuple[Dict[str, str], Mapping]]] = {}
    for key in sorted(document.get("histograms", {})):
        name, labels = parse_series_key(key)
        histogram_families.setdefault(name, []).append(
            (labels, document["histograms"][key]))
    for name in sorted(histogram_families):
        metric = prefix + sanitize_name(name)
        lines.append(f"# HELP {metric} Histogram {name} from the Cordial "
                     "metrics registry.")
        lines.append(f"# TYPE {metric} histogram")
        for labels, state in histogram_families[name]:
            cumulative = state.get("cumulative")
            if cumulative is None:  # version-1 document: derive here
                cumulative, running = [], 0
                for count in state["counts"]:
                    running += count
                    cumulative.append(running)
            bounds = [format_value(b) for b in state["buckets"]] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                extra = f'le="{bound}"'
                lines.append(f"{metric}_bucket{_render_labels(labels, extra)}"
                             f" {format_value(count)}")
            lines.append(f"{metric}_sum{_render_labels(labels)} "
                         f"{format_value(state['sum'])}")
            lines.append(f"{metric}_count{_render_labels(labels)} "
                         f"{format_value(state['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_delta(before: Mapping, after: Mapping) -> dict:
    """Diff two ``MetricsRegistry.as_dict`` documents.

    Returns, per section: counter deltas (``after - before``; series
    absent from ``before`` count from zero), gauge final values, and
    histogram ``count``/``sum`` deltas.  Series untouched between the
    snapshots are omitted, so the delta of a quiet stretch is empty —
    which makes it the right tool for attributing metric movement to one
    phase of a run.
    """
    out = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        delta = value - before_counters.get(key, 0.0)
        if delta:
            out["counters"][key] = delta
    before_gauges = before.get("gauges", {})
    for key, state in after.get("gauges", {}).items():
        if before_gauges.get(key) != state:
            out["gauges"][key] = dict(state)
    before_histograms = before.get("histograms", {})
    for key, state in after.get("histograms", {}).items():
        prior = before_histograms.get(key, {"count": 0, "sum": 0.0})
        count_delta = state["count"] - prior["count"]
        if count_delta:
            out["histograms"][key] = {
                "count": count_delta,
                "sum": state["sum"] - prior["sum"]}
    return out
