"""Operator CLI: the fleet workflow from log files alone.

Six subcommands covering the deployment loop:

* ``generate`` — synthesise a fleet and write its MCE log to disk;
* ``train``    — train a Cordial pipeline *from a log file* (bank pattern
  labels come from the observational labeller over each bank's complete
  history — no generator ground truth needed) and save it as JSON;
* ``predict``  — load a saved pipeline, replay a log, and print/emit the
  isolation decisions;
* ``serve``    — replay a log through the *online* sharded fleet engine
  (``repro.serving``), optionally under shard supervision, and emit the
  decision stream plus merged stats/metrics;
* ``evaluate`` — split a log 7:3, train, score pattern/block/ICR
  metrics, and write a markdown report;
* ``analyze``  — run the empirical-study battery (Tables I-II, Figures
  3-4 data) over a log file.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.locality import (compute_locality_chisquare,
                                     format_locality_curve)
from repro.analysis.sudden import compute_sudden_uer_table, format_sudden_table
from repro.analysis.summary import compute_dataset_summary, format_summary_table
from repro.core.patterns import label_bank_pattern
from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorType
from repro.core.persistence import load_cordial, save_cordial
from repro.core.pipeline import Cordial
from repro.datasets import FleetGenConfig, generate_fleet_dataset
from repro.ml.selection import train_test_split_groups
from repro.telemetry.collector import BMCCollector
from repro.telemetry.mcelog import read_mce_log, write_mce_log
from repro.telemetry.store import ErrorStore


def _load_store(path: str) -> ErrorStore:
    return ErrorStore(read_mce_log(path))


# -- subcommands -----------------------------------------------------------------

def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def cmd_generate(args: argparse.Namespace) -> int:
    """Synthesise a fleet and write its MCE log.

    ``--jobs`` shards fault realisation over worker processes; the log is
    bit-identical for any value (the dataset determinism contract).
    """
    dataset = generate_fleet_dataset(FleetGenConfig(scale=args.scale),
                                     seed=args.seed, jobs=args.jobs)
    count = write_mce_log(dataset.store, args.output)
    print(f"wrote {count:,} events ({len(dataset.uer_banks)} UER banks) "
          f"to {args.output}")
    return 0


def _labels_from_log(store: ErrorStore, banks, trigger_uer_rows: int):
    """Observational pattern labels from complete bank histories."""
    labels = {}
    for bank in banks:
        uers = store.uer_rows_of_bank(bank)
        rows = [r.row for r in uers]
        columns = [r.column for r in uers]
        labels[bank] = label_bank_pattern(rows, columns)
    return labels


def cmd_train(args: argparse.Namespace) -> int:
    """Train Cordial from an MCE log and save the pipeline."""
    store = _load_store(args.log)
    banks = store.banks_with_min_uer_rows(args.trigger)
    if len(banks) < 10:
        print(f"error: only {len(banks)} banks reach {args.trigger} UER "
              "rows; need at least 10 to train", file=sys.stderr)
        return 1
    labels = _labels_from_log(store, banks, args.trigger)
    print(f"{len(banks)} trainable banks; label mix: "
          + ", ".join(f"{p.value}={sum(1 for v in labels.values() if v is p)}"
                      for p in set(labels.values())))

    # Wrap the log into the dataset protocol Cordial.fit expects.
    from repro.datasets.fleetgen import BankGroundTruth, FleetDataset

    truth = {}
    for bank in banks:
        uers = store.uer_rows_of_bank(bank)
        truth[bank] = BankGroundTruth(
            bank_key=bank, fault_type=None, pattern=labels[bank],
            anchor_rows=(), cluster_width=0,
            uer_row_sequence=tuple((r.timestamp, r.row) for r in uers))
    dataset = FleetDataset(config=FleetGenConfig(), seed=0, store=store,
                           bank_truth=truth)
    cordial = Cordial(model_name=args.model, trigger_uer_rows=args.trigger,
                      random_state=args.seed, n_jobs=args.jobs)
    cordial.fit(dataset, banks)
    save_cordial(cordial, args.output)
    print(f"saved pipeline ({args.model}, threshold "
          f"{cordial.predictor.effective_threshold:.2f}) to {args.output}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """Replay a log through a saved pipeline; print decisions."""
    cordial = load_cordial(args.pipeline)
    store = _load_store(args.log)
    collector = BMCCollector(trigger_uer_rows=cordial.trigger_uer_rows)
    decisions: List[dict] = []
    for trigger in collector.replay(store):
        pattern = cordial.classifier.predict(trigger.history)
        decision = {
            "time": trigger.timestamp,
            "bank": list(trigger.bank_key),
            "pattern": pattern.value,
        }
        if pattern.is_aggregation:
            prediction = cordial.predictor.predict(trigger.history,
                                                   trigger.uer_rows[-1])
            decision["action"] = "row-spare"
            decision["rows"] = prediction.rows_to_isolate()
        else:
            decision["action"] = "bank-spare"
            decision["rows"] = []
        decisions.append(decision)
    if args.json:
        json.dump(decisions, sys.stdout, indent=2)
        print()
    else:
        for d in decisions:
            detail = ("whole bank" if d["action"] == "bank-spare"
                      else f"{len(d['rows'])} rows")
            print(f"day {d['time'] / 86400.0:7.1f}  bank "
                  f"{tuple(d['bank'])}  {d['pattern']:<22} -> "
                  f"{d['action']} ({detail})")
    print(f"\n{len(decisions)} decisions from {len(store):,} events",
          file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a log through the sharded fleet engine; emit decisions.

    Unlike ``predict`` (offline trigger replay), this drives the full
    *online* serving path — reorder buffer, quarantine, isolation replay
    — through ``repro.serving``, optionally under shard supervision
    (``--supervise``), and writes the decision stream plus merged
    stats/metrics as JSON.  Decisions are byte-identical for any
    ``--shards`` / ``--jobs`` combination, supervised or not.
    """
    from repro.serving import (ShardedCordialEngine, SupervisorConfig,
                               serve_stream_sharded)

    cordial = load_cordial(args.pipeline)
    store = _load_store(args.log)
    supervisor = None
    if args.supervise:
        supervisor = SupervisorConfig(
            max_restarts=args.max_restarts,
            batch_timeout=args.batch_timeout,
            poison_threshold=args.poison_threshold,
            snapshot_every=args.snapshot_every)
    engine = ShardedCordialEngine(cordial, n_shards=args.shards,
                                  n_jobs=args.jobs, max_skew=args.max_skew,
                                  supervisor=supervisor)
    try:
        engine, outcome = serve_stream_sharded(engine, list(store))
    finally:
        engine.close()
    payload = {
        "decisions": [d.to_obj() for d in outcome.decisions],
        "stats": outcome.stats,
        "metrics": outcome.metrics,
    }
    if engine.supervisor_metrics is not None:
        payload["supervision"] = engine.supervisor_metrics.as_dict()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    mode = "supervised" if supervisor is not None else "unsupervised"
    print(f"served {len(store):,} events through {args.shards} shard(s) "
          f"({mode}): {len(outcome.decisions)} decisions, "
          f"{outcome.stats['triggers_fired']} triggers")
    print(f"decisions written to {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Split a log 7:3, train, evaluate, and write a markdown report."""
    from repro.core.pipeline import evaluate_neighbor_baseline
    from repro.core.report import write_markdown_report
    from repro.core.costmodel import CostParams
    from repro.datasets.fleetgen import BankGroundTruth, FleetDataset

    store = _load_store(args.log)
    banks = store.banks_with_min_uer_rows(args.trigger)
    if len(banks) < 20:
        print(f"error: only {len(banks)} trainable banks; need 20+",
              file=sys.stderr)
        return 1
    labels = _labels_from_log(store, banks, args.trigger)
    truth = {}
    for bank in store.units_with(MicroLevel.BANK, ErrorType.UER):
        uers = store.uer_rows_of_bank(bank)
        truth[bank] = BankGroundTruth(
            bank_key=bank, fault_type=None,
            pattern=labels.get(bank),
            anchor_rows=(), cluster_width=0,
            uer_row_sequence=tuple((r.timestamp, r.row) for r in uers))
    dataset = FleetDataset(config=FleetGenConfig(), seed=0, store=store,
                           bank_truth=truth)
    train, test = train_test_split_groups(banks, test_fraction=0.3,
                                          seed=args.seed)
    cordial = Cordial(model_name=args.model, trigger_uer_rows=args.trigger,
                      random_state=args.seed, n_jobs=args.jobs)
    cordial.fit(dataset, train)
    evaluation = cordial.evaluate(dataset, test)
    baseline = evaluate_neighbor_baseline(dataset, test,
                                          trigger_uer_rows=args.trigger)
    path = write_markdown_report(evaluation, args.output,
                                 baseline=baseline,
                                 cost_params=CostParams(),
                                 title=f"Cordial evaluation — {args.log}")
    print(f"pattern weighted F1 {evaluation.pattern_weighted.f1:.3f}, "
          f"block F1 {evaluation.block_scores.f1:.3f}, "
          f"ICR {evaluation.icr.icr:.2%} "
          f"(baseline {baseline.icr.icr:.2%})")
    print(f"report written to {path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Run the empirical-study battery over a log file."""
    store = _load_store(args.log)
    print(format_sudden_table(compute_sudden_uer_table(store)))
    print()
    print(format_summary_table(compute_dataset_summary(store)))
    print()
    print(format_locality_curve(compute_locality_chisquare(store)))
    return 0


# -- entry point -----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Cordial fleet workflow: generate / train / predict / "
                    "analyze over MCE log files.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a fleet MCE log")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for fault realisation "
                        "(output is identical for any value)")
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("train", help="train Cordial from an MCE log")
    p.add_argument("--log", required=True)
    p.add_argument("--output", required=True,
                   help="where to save the pipeline JSON")
    p.add_argument("--model", default="Random Forest",
                   choices=["Random Forest", "XGBoost", "LightGBM"])
    p.add_argument("--trigger", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for model training "
                        "(the fitted pipeline is identical for any value)")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="replay a log through a pipeline")
    p.add_argument("--pipeline", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable decisions")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("serve", help="replay a log through the online "
                       "fleet engine (optionally supervised)")
    p.add_argument("--pipeline", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--output", default="serve_decisions.json",
                   help="decision/stats JSON destination")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="bank-key shards (decisions identical for any)")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (1 = in-process)")
    p.add_argument("--max-skew", type=float, default=0.0, dest="max_skew",
                   help="reorder-buffer window in seconds")
    p.add_argument("--supervise", action="store_true",
                   help="run the fleet under the shard supervisor "
                        "(crash detection, deterministic restart, poison "
                        "quarantine, degraded failover)")
    p.add_argument("--max-restarts", type=int, default=3,
                   dest="max_restarts",
                   help="restart budget per worker before degraded "
                        "failover")
    p.add_argument("--batch-timeout", type=float, default=30.0,
                   dest="batch_timeout",
                   help="seconds of worker silence before hang detection")
    p.add_argument("--poison-threshold", type=_positive_int, default=2,
                   dest="poison_threshold",
                   help="same-batch kills before poison bisection")
    p.add_argument("--snapshot-every", type=_positive_int, default=8,
                   dest="snapshot_every",
                   help="batches between supervisor replay snapshots")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("evaluate", help="train+evaluate over a log and "
                       "write a markdown report")
    p.add_argument("--log", required=True)
    p.add_argument("--output", default="cordial_report.md")
    p.add_argument("--model", default="Random Forest",
                   choices=["Random Forest", "XGBoost", "LightGBM"])
    p.add_argument("--trigger", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes for model training "
                        "(results are identical for any value)")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("analyze", help="empirical study over a log")
    p.add_argument("--log", required=True)
    p.set_defaults(func=cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
