"""Process-level faults: kill/restore cycles and checkpoint tampering.

``serve_with_faults`` drives a :class:`~repro.core.online.CordialService`
through a stream while killing the process at scheduled ingest points:
at each kill the service is checkpointed, *the object is discarded*, and
a fresh service is restored from the file — the same restart the
``serve-replay --checkpoint`` path exercises once, here repeated at
arbitrary depth.  Optionally every kill also load-tests deliberately
damaged copies of the checkpoint (truncated, header-mangled, key-dropped)
and records whether the persistence layer rejected them with the typed
:class:`~repro.core.persistence.CheckpointCorruptionError` — the oracle
turns any undetected tamper into a violation.

Every choice (tamper bytes, truncation point) comes from the caller's
RNG, so fault schedules are as reproducible as the stream operators.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.online import CordialService, Decision
from repro.core.persistence import (CheckpointCorruptionError,
                                    load_service_checkpoint,
                                    save_service_checkpoint)

#: Supported checkpoint tampering modes.
TAMPER_MODES = ("truncate", "mangle_header", "drop_key")

#: Per-shard worker fault operators -> the engine's in-band chaos modes
#: (:data:`repro.serving.supervisor.FAULT_MODES`).
WORKER_FAULT_MODES = {
    "worker_crash": "crash",   # worker process dies mid-stream
    "worker_hang": "hang",     # worker stops replying (deadline trips)
    "pipe_garbage": "garbage",  # worker writes an undecodable reply
}


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled per-shard worker fault.

    Attributes:
        at_event: 1-based ingest count after which the fault is injected.
        shard: target shard id (the supervisor recovers that shard's
            worker slot).
        mode: operator name, a key of :data:`WORKER_FAULT_MODES`.
    """

    at_event: int
    shard: int
    mode: str

    def __post_init__(self) -> None:
        if self.mode not in WORKER_FAULT_MODES:
            raise ValueError(
                f"unknown worker fault mode: {self.mode!r} "
                f"(known: {sorted(WORKER_FAULT_MODES)})")
        if self.at_event < 1:
            raise ValueError("at_event must be >= 1")

    def to_obj(self) -> dict:
        """JSON-ready rendering."""
        return {"at_event": self.at_event, "shard": self.shard,
                "mode": self.mode}


@dataclass(frozen=True)
class TamperTrial:
    """Outcome of one tampered-checkpoint load attempt.

    Attributes:
        mode: tamper mode applied (see :data:`TAMPER_MODES`).
        detected: True when loading raised the typed corruption error.
        error: the exception class name actually raised ("" when the
            load wrongly succeeded).
    """

    mode: str
    detected: bool
    error: str

    def to_obj(self) -> dict:
        """JSON-ready rendering."""
        return {"mode": self.mode, "detected": self.detected,
                "error": self.error}


@dataclass
class ServeOutcome:
    """Everything one faulted serve produced, for the oracle to judge.

    Attributes:
        service: the service instance holding the final state (the last
            restored one when kills happened).
        decisions: every decision in emission order.
        restore_count: kill/restore cycles actually performed.
        tamper_trials: tampered-checkpoint load attempts, in order.
        isolation_snapshots: ``IsolationReplay.state_dict()`` captured at
            each kill point plus at end of stream — the material for the
            isolation-monotonicity invariant.
    """

    service: CordialService
    decisions: List[Decision]
    restore_count: int
    tamper_trials: List[TamperTrial]
    isolation_snapshots: List[dict]


def tamper_checkpoint(path: str, mode: str, rng: np.random.Generator,
                      destination: Optional[str] = None) -> str:
    """Write a damaged copy of a checkpoint file; returns its path.

    ``truncate`` keeps a prefix of the bytes (a crash mid-write),
    ``mangle_header`` flips a byte inside the format header (bit rot in
    the one region whose damage is always structural), and ``drop_key``
    deletes one required top-level state entry (a partial or
    hand-edited document).
    """
    if mode not in TAMPER_MODES:
        raise ValueError(f"unknown tamper mode: {mode!r}")
    destination = destination or path + f".tampered-{mode}"
    with open(path, "rb") as handle:
        payload = handle.read()
    if mode == "truncate":
        cut = int(len(payload) * float(rng.uniform(0.05, 0.9)))
        damaged = payload[:cut]
    elif mode == "mangle_header":
        # The document starts {"format": "cordial-service-checkpoint" —
        # flipping a low bit of one of those bytes breaks either the JSON
        # structure or the format string, never silently a value.
        position = int(rng.integers(2, min(40, len(payload))))
        damaged = (payload[:position]
                   + bytes([payload[position] ^ 0x01])
                   + payload[position + 1:])
    else:  # drop_key
        document = json.loads(payload.decode("utf-8"))
        keys = sorted(document.get("state", {}))
        if keys:
            victim = keys[int(rng.integers(0, len(keys)))]
            del document["state"][victim]
        else:
            document.pop("state", None)
        damaged = json.dumps(document).encode("utf-8")
    with open(destination, "wb") as handle:
        handle.write(damaged)
    return destination


def run_tamper_trials(path: str, modes: Sequence[str],
                      rng: np.random.Generator) -> List[TamperTrial]:
    """Load-test one tampered copy of ``path`` per mode."""
    trials: List[TamperTrial] = []
    for mode in modes:
        damaged = tamper_checkpoint(path, mode, rng)
        try:
            load_service_checkpoint(damaged)
        except CheckpointCorruptionError as exc:
            trials.append(TamperTrial(mode=mode, detected=True,
                                      error=type(exc).__name__))
        except Exception as exc:  # wrong type: a miss, not a crash
            trials.append(TamperTrial(mode=mode, detected=False,
                                      error=type(exc).__name__))
        else:
            trials.append(TamperTrial(mode=mode, detected=False, error=""))
        finally:
            os.remove(damaged)
    return trials


def run_fleet_tamper_trials(directory: str, modes: Sequence[str],
                            rng: np.random.Generator) -> List[TamperTrial]:
    """Load-test a *fleet* checkpoint directory against tampering.

    Each mode damages ``shard-00.ckpt.json`` **in place** (original bytes
    restored afterwards) and attempts a full fleet load — the manifest
    must not vouch for a shard file the service layer would reject.  A
    final pair of trials damages the manifest itself (``truncate`` and
    ``mangle_header`` only: the manifest has no ``"state"`` entry, so a
    ``drop_key`` trial would "pass" without removing anything).  Trial
    modes are prefixed ``shard:`` / ``manifest:`` in the report.
    """
    from repro.serving.checkpoint import (MANIFEST_FILE,
                                          load_fleet_checkpoint,
                                          shard_file_name)

    def attempt(label: str) -> TamperTrial:
        try:
            load_fleet_checkpoint(directory)
        except CheckpointCorruptionError as exc:
            return TamperTrial(mode=label, detected=True,
                               error=type(exc).__name__)
        except Exception as exc:  # wrong type: a miss, not a crash
            return TamperTrial(mode=label, detected=False,
                               error=type(exc).__name__)
        return TamperTrial(mode=label, detected=False, error="")

    trials: List[TamperTrial] = []
    shard_path = os.path.join(directory, shard_file_name(0))
    for mode in modes:
        with open(shard_path, "rb") as handle:
            original = handle.read()
        try:
            tamper_checkpoint(shard_path, mode, rng, destination=shard_path)
            trials.append(attempt(f"shard:{mode}"))
        finally:
            with open(shard_path, "wb") as handle:
                handle.write(original)
    manifest_path = os.path.join(directory, MANIFEST_FILE)
    for mode in modes:
        if mode == "drop_key":
            continue
        with open(manifest_path, "rb") as handle:
            original = handle.read()
        try:
            tamper_checkpoint(manifest_path, mode, rng,
                              destination=manifest_path)
            trials.append(attempt(f"manifest:{mode}"))
        finally:
            with open(manifest_path, "wb") as handle:
                handle.write(original)
    return trials


def _fleet_replay_snapshot(directory: str) -> dict:
    """Merged ``IsolationReplay.state_dict()`` of a fleet checkpoint.

    Gives the oracle's isolation-monotonicity invariant the same
    single-ledger view it gets from a single-service checkpoint.
    """
    from repro.serving.checkpoint import load_fleet_checkpoint
    from repro.serving.merge import merge_service_states
    from repro.telemetry.metrics import EXPORT_VERSION

    manifest, services = load_fleet_checkpoint(directory)
    merged = merge_service_states(
        [service.state_dict() for service in services],
        manifest["router"], manifest["stats"],
        {"version": EXPORT_VERSION,
         "counters": dict(manifest["counters"]), "gauges": {}})
    return merged["replay"]


def serve_engine_with_faults(engine, stream: Sequence[Any],
                             kill_points: Sequence[int],
                             checkpoint_dir: str,
                             rng: np.random.Generator,
                             tamper_modes: Sequence[str] = (),
                             worker_faults: Sequence[WorkerFault] = ()
                             ) -> Tuple[Any, ServeOutcome]:
    """Fleet counterpart of :func:`serve_with_faults`.

    At each kill point the *whole fleet* is checkpointed into
    ``checkpoint_dir``, every worker is torn down, and a successor engine
    restored from the directory serves on — the sharded crash/restart
    path under chaos.  ``worker_faults`` additionally injects per-shard
    worker faults (crash/hang/garbage) at their scheduled ingest points;
    the engine must be supervised for those to be survivable.  Returns
    ``(engine, outcome)``: the engine that finished the stream (close
    it!), and a :class:`ServeOutcome` whose ``service`` is the merged
    single-service view, so the invariant oracle judges the fleet with
    the battery it already has.
    """
    from repro.serving.merge import merge_decisions

    kills = sorted({int(k) for k in kill_points if 1 <= k <= len(stream)})
    pending_faults: dict = {}
    for fault in worker_faults:
        pending_faults.setdefault(int(fault.at_event), []).append(fault)
    segments: List[List[Decision]] = []
    trials: List[TamperTrial] = []
    snapshots: List[dict] = []
    restores = 0
    for index, item in enumerate(stream, start=1):
        engine.submit(item)
        for fault in pending_faults.pop(index, []):
            engine.inject_fault(fault.shard, WORKER_FAULT_MODES[fault.mode])
        if kills and index == kills[0]:
            kills.pop(0)
            engine.checkpoint(checkpoint_dir)
            segments.extend(engine.drain_segments())
            snapshots.append(_fleet_replay_snapshot(checkpoint_dir))
            if tamper_modes:
                trials.extend(run_fleet_tamper_trials(
                    checkpoint_dir, tamper_modes, rng))
            engine.close()
            engine = engine.restore_successor(checkpoint_dir)
            restores += 1
    outcome = engine.finish()
    decisions = outcome.decisions
    if segments:
        decisions = merge_decisions(segments + [decisions])
    snapshots.append(copy.deepcopy(outcome.service.replay.state_dict()))
    return engine, ServeOutcome(
        service=outcome.service, decisions=decisions,
        restore_count=restores, tamper_trials=trials,
        isolation_snapshots=snapshots)


def serve_with_faults(service: CordialService, stream: Sequence[Any],
                      kill_points: Sequence[int], checkpoint_path: str,
                      rng: np.random.Generator,
                      tamper_modes: Sequence[str] = ()) -> ServeOutcome:
    """Serve ``stream`` with kill/restore faults at ``kill_points``.

    ``kill_points`` are 1-based ingest counts: after the k-th ``ingest``
    call the service is checkpointed to ``checkpoint_path``, optionally
    tamper-tested, and replaced by a fresh instance restored from the
    file.  Points outside ``1..len(stream)`` are ignored.
    """
    kills = sorted({int(k) for k in kill_points if 1 <= k <= len(stream)})
    decisions: List[Decision] = []
    trials: List[TamperTrial] = []
    snapshots: List[dict] = []
    restores = 0
    for index, item in enumerate(stream, start=1):
        decisions.extend(service.ingest(item))
        if kills and index == kills[0]:
            kills.pop(0)
            save_service_checkpoint(service, checkpoint_path)
            snapshots.append(copy.deepcopy(service.replay.state_dict()))
            if tamper_modes:
                trials.extend(
                    run_tamper_trials(checkpoint_path, tamper_modes, rng))
            service = load_service_checkpoint(checkpoint_path)
            restores += 1
    decisions.extend(service.flush())
    snapshots.append(copy.deepcopy(service.replay.state_dict()))
    return ServeOutcome(service=service, decisions=decisions,
                        restore_count=restores, tamper_trials=trials,
                        isolation_snapshots=snapshots)
