"""Process-level faults: kill/restore cycles and checkpoint tampering.

``serve_with_faults`` drives a :class:`~repro.core.online.CordialService`
through a stream while killing the process at scheduled ingest points:
at each kill the service is checkpointed, *the object is discarded*, and
a fresh service is restored from the file — the same restart the
``serve-replay --checkpoint`` path exercises once, here repeated at
arbitrary depth.  Optionally every kill also load-tests deliberately
damaged copies of the checkpoint (truncated, header-mangled, key-dropped)
and records whether the persistence layer rejected them with the typed
:class:`~repro.core.persistence.CheckpointCorruptionError` — the oracle
turns any undetected tamper into a violation.

Every choice (tamper bytes, truncation point) comes from the caller's
RNG, so fault schedules are as reproducible as the stream operators.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.online import CordialService, Decision
from repro.core.persistence import (CheckpointCorruptionError,
                                    load_service_checkpoint,
                                    save_service_checkpoint)

#: Supported checkpoint tampering modes.
TAMPER_MODES = ("truncate", "mangle_header", "drop_key")


@dataclass(frozen=True)
class TamperTrial:
    """Outcome of one tampered-checkpoint load attempt.

    Attributes:
        mode: tamper mode applied (see :data:`TAMPER_MODES`).
        detected: True when loading raised the typed corruption error.
        error: the exception class name actually raised ("" when the
            load wrongly succeeded).
    """

    mode: str
    detected: bool
    error: str

    def to_obj(self) -> dict:
        """JSON-ready rendering."""
        return {"mode": self.mode, "detected": self.detected,
                "error": self.error}


@dataclass
class ServeOutcome:
    """Everything one faulted serve produced, for the oracle to judge.

    Attributes:
        service: the service instance holding the final state (the last
            restored one when kills happened).
        decisions: every decision in emission order.
        restore_count: kill/restore cycles actually performed.
        tamper_trials: tampered-checkpoint load attempts, in order.
        isolation_snapshots: ``IsolationReplay.state_dict()`` captured at
            each kill point plus at end of stream — the material for the
            isolation-monotonicity invariant.
    """

    service: CordialService
    decisions: List[Decision]
    restore_count: int
    tamper_trials: List[TamperTrial]
    isolation_snapshots: List[dict]


def tamper_checkpoint(path: str, mode: str, rng: np.random.Generator,
                      destination: Optional[str] = None) -> str:
    """Write a damaged copy of a checkpoint file; returns its path.

    ``truncate`` keeps a prefix of the bytes (a crash mid-write),
    ``mangle_header`` flips a byte inside the format header (bit rot in
    the one region whose damage is always structural), and ``drop_key``
    deletes one required top-level state entry (a partial or
    hand-edited document).
    """
    if mode not in TAMPER_MODES:
        raise ValueError(f"unknown tamper mode: {mode!r}")
    destination = destination or path + f".tampered-{mode}"
    with open(path, "rb") as handle:
        payload = handle.read()
    if mode == "truncate":
        cut = int(len(payload) * float(rng.uniform(0.05, 0.9)))
        damaged = payload[:cut]
    elif mode == "mangle_header":
        # The document starts {"format": "cordial-service-checkpoint" —
        # flipping a low bit of one of those bytes breaks either the JSON
        # structure or the format string, never silently a value.
        position = int(rng.integers(2, min(40, len(payload))))
        damaged = (payload[:position]
                   + bytes([payload[position] ^ 0x01])
                   + payload[position + 1:])
    else:  # drop_key
        document = json.loads(payload.decode("utf-8"))
        keys = sorted(document.get("state", {}))
        if keys:
            victim = keys[int(rng.integers(0, len(keys)))]
            del document["state"][victim]
        else:
            document.pop("state", None)
        damaged = json.dumps(document).encode("utf-8")
    with open(destination, "wb") as handle:
        handle.write(damaged)
    return destination


def run_tamper_trials(path: str, modes: Sequence[str],
                      rng: np.random.Generator) -> List[TamperTrial]:
    """Load-test one tampered copy of ``path`` per mode."""
    trials: List[TamperTrial] = []
    for mode in modes:
        damaged = tamper_checkpoint(path, mode, rng)
        try:
            load_service_checkpoint(damaged)
        except CheckpointCorruptionError as exc:
            trials.append(TamperTrial(mode=mode, detected=True,
                                      error=type(exc).__name__))
        except Exception as exc:  # wrong type: a miss, not a crash
            trials.append(TamperTrial(mode=mode, detected=False,
                                      error=type(exc).__name__))
        else:
            trials.append(TamperTrial(mode=mode, detected=False, error=""))
        finally:
            os.remove(damaged)
    return trials


def serve_with_faults(service: CordialService, stream: Sequence[Any],
                      kill_points: Sequence[int], checkpoint_path: str,
                      rng: np.random.Generator,
                      tamper_modes: Sequence[str] = ()) -> ServeOutcome:
    """Serve ``stream`` with kill/restore faults at ``kill_points``.

    ``kill_points`` are 1-based ingest counts: after the k-th ``ingest``
    call the service is checkpointed to ``checkpoint_path``, optionally
    tamper-tested, and replaced by a fresh instance restored from the
    file.  Points outside ``1..len(stream)`` are ignored.
    """
    kills = sorted({int(k) for k in kill_points if 1 <= k <= len(stream)})
    decisions: List[Decision] = []
    trials: List[TamperTrial] = []
    snapshots: List[dict] = []
    restores = 0
    for index, item in enumerate(stream, start=1):
        decisions.extend(service.ingest(item))
        if kills and index == kills[0]:
            kills.pop(0)
            save_service_checkpoint(service, checkpoint_path)
            snapshots.append(copy.deepcopy(service.replay.state_dict()))
            if tamper_modes:
                trials.extend(
                    run_tamper_trials(checkpoint_path, tamper_modes, rng))
            service = load_service_checkpoint(checkpoint_path)
            restores += 1
    decisions.extend(service.flush())
    snapshots.append(copy.deepcopy(service.replay.state_dict()))
    return ServeOutcome(service=service, decisions=decisions,
                        restore_count=restores, tamper_trials=trials,
                        isolation_snapshots=snapshots)
