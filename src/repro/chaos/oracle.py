"""The invariant oracle: system-level properties every chaos run must keep.

A chaos run has no golden output to diff against — drops, duplicates and
corruption legitimately change the decision stream.  What must *never*
change are the structural guarantees of the serving path, checked here
after every run:

``event_conservation``
    Every ingested input is accounted for exactly once:
    ``ingested == released + dead-lettered + still buffered``, at both
    the service and the collector ledger.
``spare_budget``
    No bank ever exceeds its row-sparing budget, no matter how many
    re-predictions or restores fired.
``isolation_monotonicity``
    Isolation is irrevocable: snapshots taken across kill/restore points
    only ever grow, isolation timestamps never change, and the
    time-aware ``is_row_isolated`` answers flip exactly at the recorded
    isolation time (False strictly at/before, True after).
``checkpoint_roundtrip``
    A checkpoint of the final state restores to a bit-identical
    ``state_dict`` — persistence loses nothing a crash could expose.
``metrics_consistency``
    The metrics registry agrees with the ground-truth ledgers it
    mirrors (dead-letter counts, trigger/re-prediction/decision counts,
    spared banks) — observability must not drift from reality.
``tamper_detection``
    Every deliberately damaged checkpoint was rejected with the typed
    corruption error.
``bounded_divergence``
    Decisions and ICR stay within the plan's tolerance of the
    clean-stream run — chaos may degrade the service, not derail it.
``supervision``
    A supervised fleet run disturbed by worker crashes/hangs/garbage and
    poison records ends **byte-identical** to the undisturbed run of its
    twin stream: same decisions, same ICR, same merged state — the only
    permitted difference is the poison records' own ``"poison"``
    dead-letter accounting, which this check strips before comparing.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.chaos.faults import ServeOutcome
from repro.chaos.plan import ChaosPlan
from repro.core.online import CordialService
from repro.core.persistence import (load_service_checkpoint,
                                    save_service_checkpoint)


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough detail to debug the run."""

    invariant: str
    detail: str

    def to_obj(self) -> dict:
        """JSON-ready rendering."""
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass(frozen=True)
class CleanBaseline:
    """Summary of the unperturbed run the oracle compares against."""

    decision_count: int
    icr: float


def _isolation_entries(snapshot: dict) -> Dict[tuple, float]:
    """Flatten a ``IsolationReplay.state_dict()`` into (key -> time)."""
    entries: Dict[tuple, float] = {}
    for bank, rows in snapshot["spared_rows"]:
        for row, when in rows:
            entries[("row", tuple(bank), int(row))] = float(when)
    for bank, when in snapshot["spared_banks"]:
        entries[("bank", tuple(bank))] = float(when)
    return entries


def strip_poison_accounting(state: dict) -> dict:
    """A deep copy of a merged ``state_dict`` minus poison accounting.

    A supervised run of a poisoned stream differs from its twin (the
    stream with the poison positions removed) in exactly four places, all
    bookkeeping for the poison records themselves: the coordinator
    counted their submissions (``stats.events_ingested`` and the merged
    ``collector.events_ingested`` counter) and quarantined them under
    reason ``"poison"`` (the dead-letter list/counts and the
    ``collector.dead_letters{reason=poison}`` counter series).  Undo
    those and the states must match byte for byte.
    """
    from repro.telemetry.collector import REASON_POISON
    from repro.telemetry.metrics import _series_key

    state = copy.deepcopy(state)
    collector = state["collector"]
    planted = collector["dead_letter_counts"].pop(REASON_POISON, 0)
    collector["dead_letters"] = [
        entry for entry in collector["dead_letters"]
        if entry["reason"] != REASON_POISON]
    state["stats"]["events_ingested"] -= planted
    counters = state["metrics"]["counters"]
    counters["collector.events_ingested"] -= planted
    counters.pop(_series_key("collector.dead_letters",
                             {"reason": REASON_POISON}), None)
    return state


class InvariantOracle:
    """Validates a finished chaos run against the invariant catalogue.

    Args:
        plan: the plan that produced the run (divergence tolerances).
        clean: summary of the clean-stream run; omit to skip the
            divergence check (e.g. when validating the clean run itself).
    """

    def __init__(self, plan: ChaosPlan,
                 clean: Optional[CleanBaseline] = None) -> None:
        self.plan = plan
        self.clean = clean

    # -- individual invariants -----------------------------------------------
    def check_event_conservation(self, service: CordialService
                                 ) -> List[InvariantViolation]:
        """ingested == released + dead-lettered + buffered, both ledgers."""
        violations = []
        collector = service.collector
        metrics = service.metrics
        ingested = metrics.counter_value("collector.events_ingested")
        released = metrics.counter_value("collector.events_released")
        dead = sum(collector.dead_letter_counts.values())
        buffered = collector.pending_count
        if ingested != released + dead + buffered:
            violations.append(InvariantViolation(
                "event_conservation",
                f"collector ledger leaks events: ingested {ingested:g} != "
                f"released {released:g} + dead-lettered {dead} + "
                f"buffered {buffered}"))
        if service.stats.events_ingested != ingested:
            violations.append(InvariantViolation(
                "event_conservation",
                f"service counted {service.stats.events_ingested} ingests "
                f"but the collector counted {ingested:g}"))
        return violations

    def check_spare_budget(self, service: CordialService
                           ) -> List[InvariantViolation]:
        """No bank may exceed its row-sparing budget."""
        violations = []
        budget = service.replay.spares_per_bank
        for bank, rows in service.replay.spared_rows_by_bank().items():
            if len(rows) > budget:
                violations.append(InvariantViolation(
                    "spare_budget",
                    f"bank {bank} holds {len(rows)} spared rows, "
                    f"budget is {budget}"))
        return violations

    def check_isolation_monotonicity(self, service: CordialService,
                                     snapshots: Sequence[dict]
                                     ) -> List[InvariantViolation]:
        """Isolation only grows, and time-aware queries flip at the
        recorded isolation instant."""
        violations = []
        previous: Optional[Dict[tuple, float]] = None
        for index, snapshot in enumerate(snapshots):
            entries = _isolation_entries(snapshot)
            if previous is not None:
                for key, when in previous.items():
                    if key not in entries:
                        violations.append(InvariantViolation(
                            "isolation_monotonicity",
                            f"{key} isolated at snapshot {index - 1} "
                            f"but gone at snapshot {index}"))
                    elif entries[key] != when:
                        violations.append(InvariantViolation(
                            "isolation_monotonicity",
                            f"{key} isolation time changed "
                            f"{when} -> {entries[key]}"))
            previous = entries
        # Time-aware queries on the final state: strictly-before
        # semantics at the recorded instant, covered ever after.
        for bank, rows in service.replay.spared_rows_by_bank().items():
            for row, when in rows.items():
                if service.is_row_isolated(bank, row, at_time=when):
                    violations.append(InvariantViolation(
                        "isolation_monotonicity",
                        f"row {row} of bank {bank} reports isolated "
                        f"strictly before its own isolation time {when}"))
                if not service.is_row_isolated(bank, row,
                                               at_time=when + 1e-6):
                    violations.append(InvariantViolation(
                        "isolation_monotonicity",
                        f"row {row} of bank {bank} not isolated just "
                        f"after its isolation time {when}"))
                if not service.is_row_isolated(bank, row):
                    violations.append(InvariantViolation(
                        "isolation_monotonicity",
                        f"row {row} of bank {bank} has an isolation time "
                        f"but an untimed query denies it"))
        return violations

    def check_checkpoint_roundtrip(self, service: CordialService,
                                   scratch_path: str
                                   ) -> List[InvariantViolation]:
        """Final state must survive save -> load bit-identically."""
        try:
            save_service_checkpoint(service, scratch_path)
            restored = load_service_checkpoint(scratch_path)
        except Exception as exc:
            return [InvariantViolation(
                "checkpoint_roundtrip",
                f"checkpointing the final state failed: "
                f"{type(exc).__name__}: {exc}")]
        if restored.state_dict() != service.state_dict():
            return [InvariantViolation(
                "checkpoint_roundtrip",
                "restored state_dict differs from the live service")]
        return []

    def check_metrics_consistency(self, service: CordialService
                                  ) -> List[InvariantViolation]:
        """The registry must agree with the ledgers it mirrors."""
        violations = []
        metrics = service.metrics
        for reason, count in service.collector.dead_letter_counts.items():
            counted = metrics.counter_value("collector.dead_letters",
                                            labels={"reason": reason})
            if counted != count:
                violations.append(InvariantViolation(
                    "metrics_consistency",
                    f"dead-letter reason {reason!r}: registry says "
                    f"{counted:g}, ledger says {count}"))
        pairs = [
            ("collector.triggers_fired", service.stats.triggers_fired),
            ("service.repredictions", service.stats.repredictions),
            ("isolation.banks_spared", service.spared_banks),
        ]
        for name, truth in pairs:
            counted = metrics.counter_value(name)
            if counted != truth:
                violations.append(InvariantViolation(
                    "metrics_consistency",
                    f"counter {name}: registry says {counted:g}, "
                    f"ground truth is {truth}"))
        for action, count in service.stats.decisions_by_action.items():
            counted = metrics.counter_value("service.decisions",
                                            labels={"action": action})
            if counted != count:
                violations.append(InvariantViolation(
                    "metrics_consistency",
                    f"decision action {action!r}: registry says "
                    f"{counted:g}, stats say {count}"))
        return violations

    def check_tamper_detection(self, outcome: ServeOutcome
                               ) -> List[InvariantViolation]:
        """Every damaged checkpoint must have been rejected, typed."""
        return [InvariantViolation(
            "tamper_detection",
            f"tampered checkpoint ({trial.mode}) was not rejected with "
            f"CheckpointCorruptionError "
            f"(got {trial.error or 'a successful load'})")
            for trial in outcome.tamper_trials if not trial.detected]

    def check_bounded_divergence(self, decision_count: int, icr: float
                                 ) -> List[InvariantViolation]:
        """Chaos may degrade the run, only within the plan's tolerance."""
        if self.clean is None:
            return []
        violations = []
        allowed = max(
            10.0, self.plan.max_decision_divergence
            * max(1, self.clean.decision_count))
        drift = abs(decision_count - self.clean.decision_count)
        if drift > allowed:
            violations.append(InvariantViolation(
                "bounded_divergence",
                f"decision count drifted by {drift} "
                f"({decision_count} vs clean "
                f"{self.clean.decision_count}; allowed {allowed:g})"))
        if abs(icr - self.clean.icr) > self.plan.max_icr_divergence:
            violations.append(InvariantViolation(
                "bounded_divergence",
                f"ICR drifted to {icr:.4f} from clean {self.clean.icr:.4f} "
                f"(allowed +/-{self.plan.max_icr_divergence})"))
        return violations

    def check_supervision(self, faulted_state: dict, twin_state: dict,
                          faulted_decisions: Sequence[Any],
                          twin_decisions: Sequence[Any],
                          faulted_icr: float, twin_icr: float,
                          poison_planted: int = 0
                          ) -> List[InvariantViolation]:
        """Faulted supervised run == undisturbed twin, byte for byte.

        ``faulted_state``/``twin_state`` are merged ``state_dict()``
        documents.  ``poison_planted`` poison records are expected in the
        faulted run's dead-letter ledger under reason ``"poison"`` (and
        nowhere else); their accounting is normalized away with
        :func:`strip_poison_accounting`, after which every field must
        match exactly.
        """
        violations: List[InvariantViolation] = []
        if len(faulted_decisions) != len(twin_decisions):
            violations.append(InvariantViolation(
                "supervision",
                f"decision count diverged: faulted run emitted "
                f"{len(faulted_decisions)}, twin emitted "
                f"{len(twin_decisions)}"))
        else:
            for index, (ours, theirs) in enumerate(
                    zip(faulted_decisions, twin_decisions)):
                if ours.to_obj() != theirs.to_obj():
                    violations.append(InvariantViolation(
                        "supervision",
                        f"decision {index} diverged: "
                        f"{ours.to_obj()} vs twin {theirs.to_obj()}"))
                    break
        if faulted_icr != twin_icr:
            violations.append(InvariantViolation(
                "supervision",
                f"ICR diverged: faulted {faulted_icr!r} "
                f"vs twin {twin_icr!r}"))
        counted = faulted_state["collector"]["dead_letter_counts"].get(
            "poison", 0)
        if counted != poison_planted:
            violations.append(InvariantViolation(
                "supervision",
                f"poison ledger mismatch: {poison_planted} poison records "
                f"planted, {counted} quarantined"))
        normalized = strip_poison_accounting(faulted_state)
        if normalized != twin_state:
            diverged = sorted(
                key for key in set(normalized) | set(twin_state)
                if json.dumps(normalized.get(key), sort_keys=True,
                              default=str)
                != json.dumps(twin_state.get(key), sort_keys=True,
                              default=str))
            violations.append(InvariantViolation(
                "supervision",
                "merged state diverged from the twin run after poison "
                f"normalization (differing sections: {diverged})"))
        return violations

    # -- the full battery ----------------------------------------------------
    def check_run(self, outcome: ServeOutcome, icr: float,
                  scratch_path: str) -> List[InvariantViolation]:
        """Run every invariant over one finished serve; [] means healthy."""
        service = outcome.service
        violations: List[InvariantViolation] = []
        violations += self.check_event_conservation(service)
        violations += self.check_spare_budget(service)
        violations += self.check_isolation_monotonicity(
            service, outcome.isolation_snapshots)
        violations += self.check_checkpoint_roundtrip(service, scratch_path)
        violations += self.check_metrics_consistency(service)
        violations += self.check_tamper_detection(outcome)
        violations += self.check_bounded_divergence(
            len(outcome.decisions), icr)
        return violations
