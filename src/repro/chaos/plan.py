"""Chaos plans: a declarative, JSON-round-trippable campaign recipe.

A :class:`ChaosPlan` names the stream operators to compose (in order,
with parameters), the serving configuration under test, the
process-level fault schedule (kill/restore points, checkpoint tampering)
and the divergence tolerances the invariant oracle enforces against the
clean-stream run.  Plans are frozen and fully JSON-serialisable, so a
campaign report embeds the exact recipe that produced it and a plan file
passed to ``cordial-repro chaos`` reruns bit-identically.

Seeding contract: the campaign derives one ``SeedSequence`` child per
run, and each run spawns one grandchild per operator plus one for the
fault schedule — so adding an operator to the end of a plan never
changes the randomness any earlier operator sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.chaos.operators import OPERATORS


@dataclass(frozen=True)
class OperatorSpec:
    """One operator invocation: registry name plus keyword parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in OPERATORS:
            raise ValueError(f"unknown chaos operator: {self.name!r} "
                             f"(known: {sorted(OPERATORS)})")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        """JSON-ready rendering (sorted params for byte-stable reports)."""
        return {"name": self.name,
                "params": {k: self.params[k] for k in sorted(self.params)}}

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "OperatorSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(name=obj["name"], params=dict(obj.get("params", {})))


@dataclass(frozen=True)
class ChaosPlan:
    """A complete chaos recipe: operators, faults, and oracle tolerances.

    Attributes:
        operators: stream perturbations, applied in order per run.
        max_skew: reorder window of the service under test (seconds).
        spares_per_bank: row-sparing budget of the service under test.
        kills_per_run: checkpoint/kill/restore faults injected at
            randomized ingest points in each run (0 disables).
        worker_faults_per_run: per-shard worker faults (crash / hang /
            pipe garbage, drawn uniformly) injected at randomized ingest
            points in each *supervised sharded* run (0 disables; ignored
            without ``--shards`` + supervision).
        poison_per_run: poison records planted at randomized stream
            positions in each supervised sharded run — each must be
            bisected out and quarantined under reason ``"poison"``
            without disturbing any other output (0 disables).
        tamper_modes: at each kill point, one tampered copy of the
            checkpoint per mode is load-tested; the oracle requires every
            trial to fail with the typed ``CheckpointCorruptionError``.
        max_icr_divergence: largest tolerated ``|ICR - clean ICR|``.
        max_decision_divergence: largest tolerated relative drift of the
            decision count versus the clean run (with a small absolute
            floor so tiny streams don't flap).
    """

    operators: Tuple[OperatorSpec, ...]
    max_skew: float = 3600.0
    spares_per_bank: int = 64
    kills_per_run: int = 0
    worker_faults_per_run: int = 0
    poison_per_run: int = 0
    tamper_modes: Tuple[str, ...] = ("truncate", "mangle_header", "drop_key")
    max_icr_divergence: float = 0.25
    max_decision_divergence: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "operators", tuple(self.operators))
        object.__setattr__(self, "tamper_modes", tuple(self.tamper_modes))
        if self.max_skew < 0:
            raise ValueError("max_skew must be >= 0")
        if self.kills_per_run < 0:
            raise ValueError("kills_per_run must be >= 0")
        if self.worker_faults_per_run < 0:
            raise ValueError("worker_faults_per_run must be >= 0")
        if self.poison_per_run < 0:
            raise ValueError("poison_per_run must be >= 0")
        from repro.chaos.faults import TAMPER_MODES
        for mode in self.tamper_modes:
            if mode not in TAMPER_MODES:
                raise ValueError(f"unknown tamper mode: {mode!r} "
                                 f"(known: {sorted(TAMPER_MODES)})")

    def to_dict(self) -> dict:
        """JSON-ready rendering, byte-stable across processes."""
        return {
            "operators": [spec.to_dict() for spec in self.operators],
            "max_skew": self.max_skew,
            "spares_per_bank": self.spares_per_bank,
            "kills_per_run": self.kills_per_run,
            "worker_faults_per_run": self.worker_faults_per_run,
            "poison_per_run": self.poison_per_run,
            "tamper_modes": list(self.tamper_modes),
            "max_icr_divergence": self.max_icr_divergence,
            "max_decision_divergence": self.max_decision_divergence,
        }

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "ChaosPlan":
        """Inverse of :meth:`to_dict` (used by the CLI's ``--plan``)."""
        known = {"operators", "max_skew", "spares_per_bank", "kills_per_run",
                 "worker_faults_per_run", "poison_per_run", "tamper_modes",
                 "max_icr_divergence", "max_decision_divergence"}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown plan fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {
            "operators": tuple(OperatorSpec.from_dict(spec)
                               for spec in obj.get("operators", ()))}
        for key in known - {"operators"}:
            if key in obj:
                value = obj[key]
                kwargs[key] = tuple(value) if key == "tamper_modes" else value
        return cls(**kwargs)


def default_plan(max_skew: float = 3600.0, kills_per_run: int = 2,
                 intensity: float = 1.0) -> ChaosPlan:
    """The house plan: all six operators at field-plausible rates.

    ``intensity`` scales every probability/rate at once, so a smoke run
    can dial the same recipe down without changing its shape.
    """
    scale = float(intensity)
    return ChaosPlan(
        operators=(
            OperatorSpec("clock_jitter",
                         {"sigma": max_skew / 10.0, "rate": 0.5 * scale}),
            OperatorSpec("burst", {"rate": 0.1 * scale, "burst_size": 8}),
            OperatorSpec("duplicate",
                         {"rate": 0.01 * scale, "max_delay_events": 8}),
            OperatorSpec("reorder", {"rate": 0.005 * scale,
                                     "displacement": 2.0 * max_skew}),
            OperatorSpec("drop", {"rate": 0.01 * scale}),
            OperatorSpec("corrupt", {"rate": 0.005 * scale}),
        ),
        max_skew=max_skew,
        kills_per_run=kills_per_run,
    )
