"""Deterministic chaos harness for the online serving path.

PRs 2 and 4 hardened ``CordialService`` for well-behaved streams; this
package attacks it on purpose.  A :class:`~repro.chaos.plan.ChaosPlan`
composes seeded stream perturbation operators (drop, duplicate, reorder
beyond the skew window, clock jitter, field corruption, burst batching)
with process-level faults (kill-and-restore from checkpoints, tampered
checkpoint files), and an :class:`~repro.chaos.oracle.InvariantOracle`
validates system-level properties after every run: event conservation,
sparing budgets, isolation monotonicity, checkpoint round-trip identity,
metrics consistency, and bounded divergence from the clean-stream run.

Everything is driven by ``numpy.random.SeedSequence`` children, so a
campaign is bit-reproducible: identical (plan, seed) pairs produce
byte-identical decision logs and reports
(``tests/test_chaos_harness.py``).  The CLI front-end is
``cordial-repro chaos``.
"""

from repro.chaos.campaign import (CampaignConfig, run_campaign,
                                  run_chaos_campaign)
from repro.chaos.faults import (ServeOutcome, TamperTrial,
                                serve_with_faults, tamper_checkpoint)
from repro.chaos.operators import (OPERATORS, apply_operator,
                                   is_error_record)
from repro.chaos.oracle import InvariantOracle, InvariantViolation
from repro.chaos.plan import ChaosPlan, OperatorSpec, default_plan

__all__ = [
    "CampaignConfig",
    "ChaosPlan",
    "InvariantOracle",
    "InvariantViolation",
    "OPERATORS",
    "OperatorSpec",
    "ServeOutcome",
    "TamperTrial",
    "apply_operator",
    "default_plan",
    "is_error_record",
    "run_campaign",
    "run_chaos_campaign",
    "serve_with_faults",
    "tamper_checkpoint",
]
