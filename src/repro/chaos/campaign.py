"""Chaos campaigns: N seeded runs of a plan, each judged by the oracle.

A campaign first serves the *clean* stream once (the oracle's divergence
baseline), then executes ``runs`` chaos runs.  Each run derives its own
``SeedSequence`` child, perturbs the stream through the plan's operators
(one grandchild RNG per operator), serves it with kill/restore faults at
randomized ingest points, and runs the full invariant battery.

The JSON report is byte-stable: identical (plan, seed, stream, pipeline)
inputs produce the identical document, decision digests included — the
reproducibility contract ``tests/test_chaos_harness.py`` locks down.
Nothing wall-clock and no filesystem path enters the report.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.faults import ServeOutcome, serve_with_faults
from repro.chaos.operators import apply_operator
from repro.chaos.oracle import CleanBaseline, InvariantOracle
from repro.chaos.plan import ChaosPlan
from repro.core.online import CordialService, Decision
from repro.core.pipeline import Cordial
from repro.telemetry.events import ErrorRecord


@dataclass(frozen=True)
class CampaignConfig:
    """How many runs, and the campaign root seed."""

    runs: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be >= 1")


def decisions_digest(decisions: Sequence[Decision]) -> str:
    """SHA-256 over the canonical JSON decision log."""
    payload = json.dumps([d.to_obj() for d in decisions], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def perturb_stream(stream: Sequence[ErrorRecord], plan: ChaosPlan,
                   rngs: Sequence[np.random.Generator]
                   ) -> Tuple[List[Any], List[dict]]:
    """Apply the plan's operators in order, one RNG per operator."""
    perturbed: List[Any] = list(stream)
    applied: List[dict] = []
    for spec, rng in zip(plan.operators, rngs):
        perturbed, count = apply_operator(spec.name, perturbed, rng,
                                          dict(spec.params))
        applied.append({"name": spec.name, "applied": count})
    return perturbed, applied


def _service_for(cordial: Cordial, plan: ChaosPlan,
                 obs=None) -> CordialService:
    return CordialService(cordial, spares_per_bank=plan.spares_per_bank,
                          max_skew=plan.max_skew, obs=obs)


def _summarize(service: CordialService, decisions: Sequence[Decision],
               icr: float) -> dict:
    stats = service.stats
    return {
        "events_ingested": stats.events_ingested,
        "events_released": int(service.metrics.counter_value(
            "collector.events_released")),
        "dead_letters": {k: service.collector.dead_letter_counts[k]
                         for k in sorted(service.collector.dead_letter_counts)},
        "triggers_fired": stats.triggers_fired,
        "repredictions": stats.repredictions,
        "decisions_total": len(decisions),
        "decisions_by_action": {
            k: stats.decisions_by_action[k]
            for k in sorted(stats.decisions_by_action)},
        "spared_rows": service.spared_rows,
        "spared_banks": service.spared_banks,
        "icr": icr,
    }


def _supervision_schedule(plan: ChaosPlan, stream_length: int, shards: int,
                          rng: np.random.Generator) -> Tuple[List[int],
                                                             List[Any]]:
    """Draw poison positions and per-shard worker faults for one run.

    All draws come from the run's dedicated supervision RNG child, in a
    fixed order (poison first), so the schedule is as reproducible as
    the operator streams.
    """
    from repro.chaos.faults import WORKER_FAULT_MODES, WorkerFault

    positions: List[int] = []
    if plan.poison_per_run and stream_length > 1:
        count = min(plan.poison_per_run, stream_length - 1)
        positions = sorted(int(p) for p in rng.choice(
            np.arange(1, stream_length), size=count, replace=False))
    faults: List[Any] = []
    mode_names = sorted(WORKER_FAULT_MODES)
    for _ in range(plan.worker_faults_per_run):
        faults.append(WorkerFault(
            at_event=int(rng.integers(1, max(2, stream_length + 1))),
            shard=int(rng.integers(0, shards)),
            mode=mode_names[int(rng.integers(0, len(mode_names)))]))
    return positions, faults


def run_one(cordial: Cordial, stream: Sequence[ErrorRecord],
            truth: Dict[tuple, Sequence[Tuple[float, int]]],
            plan: ChaosPlan, run_seed: np.random.SeedSequence,
            oracle: InvariantOracle, workdir: str, run_index: int,
            shards: Optional[int] = None, engine_jobs: int = 1) -> dict:
    """One chaos run: perturb, serve with faults, judge; JSON-ready.

    With ``shards`` the run serves through a
    :class:`~repro.serving.engine.ShardedCordialEngine` (kill points
    checkpoint and restart the whole fleet); decisions/ICR/state are
    bit-identical to the single-service path, so the report layout,
    digests, and invariant battery are unchanged.  When the plan asks
    for worker faults or poison records (and ``shards`` is set), the
    engine runs *supervised*: the stream is additionally disturbed by
    scheduled worker crashes/hangs/garbage and planted poison records,
    an undisturbed twin run serves the poison-free twin stream, and the
    oracle's ``supervision`` check requires the two to end
    byte-identical (modulo the poison dead-letter ledger).
    """
    children = run_seed.spawn(len(plan.operators) + 2)
    operator_rngs = [np.random.default_rng(c)
                     for c in children[:len(plan.operators)]]
    fault_rng = np.random.default_rng(children[len(plan.operators)])
    supervision_rng = np.random.default_rng(children[-1])

    perturbed, applied = perturb_stream(stream, plan, operator_rngs)
    if plan.kills_per_run and len(perturbed) > 1:
        count = min(plan.kills_per_run, len(perturbed) - 1)
        kill_points = sorted(int(k) for k in fault_rng.choice(
            np.arange(1, len(perturbed)), size=count, replace=False))
    else:
        kill_points = []
    supervise = shards is not None and (plan.worker_faults_per_run > 0
                                        or plan.poison_per_run > 0)
    supervised_extra: Optional[dict] = None

    if shards is not None:
        import shutil

        from repro.chaos.faults import serve_engine_with_faults
        from repro.serving.engine import ShardedCordialEngine

        supervisor_config = None
        worker_faults: List[Any] = []
        twin = perturbed
        planted = 0
        poison_positions: List[int] = []
        if supervise:
            from repro.chaos.operators import plant_poison
            from repro.serving.supervisor import SupervisorConfig

            poison_positions, worker_faults = _supervision_schedule(
                plan, len(perturbed), shards, supervision_rng)
            perturbed, twin, planted = plant_poison(perturbed,
                                                    poison_positions)
            supervisor_config = SupervisorConfig(
                max_restarts=(2 * planted + len(worker_faults) + 4),
                batch_timeout=5.0, snapshot_every=8, poison_threshold=2,
                backoff_base=0.0)

        checkpoint_dir = os.path.join(workdir,
                                      f"chaos-run-{run_index}.fleet")
        engine = ShardedCordialEngine(cordial, shards, n_jobs=engine_jobs,
                                      spares_per_bank=plan.spares_per_bank,
                                      max_skew=plan.max_skew,
                                      supervisor=supervisor_config)
        try:
            engine, outcome = serve_engine_with_faults(
                engine, perturbed, kill_points, checkpoint_dir, fault_rng,
                tamper_modes=plan.tamper_modes,
                worker_faults=worker_faults)
        finally:
            engine.close()
            shutil.rmtree(checkpoint_dir, ignore_errors=True)
        checkpoint_path = None

        if supervise:
            twin_engine = ShardedCordialEngine(
                cordial, shards, n_jobs=1,
                spares_per_bank=plan.spares_per_bank,
                max_skew=plan.max_skew)
            try:
                from repro.serving.engine import serve_stream_sharded

                twin_engine, twin_outcome = serve_stream_sharded(
                    twin_engine, twin)
            finally:
                twin_engine.close()
            twin_icr = twin_outcome.service.coverage(truth)
            supervised_extra = {
                "supervised": True,
                "poison_positions": poison_positions,
                "poison_planted": planted,
                "worker_faults": [f.to_obj() for f in worker_faults],
                "twin_decisions_digest": decisions_digest(
                    twin_outcome.decisions),
                "supervision_violations": [
                    v.to_obj() for v in oracle.check_supervision(
                        outcome.service.state_dict(),
                        twin_outcome.service.state_dict(),
                        outcome.decisions, twin_outcome.decisions,
                        outcome.service.coverage(truth), twin_icr,
                        poison_planted=planted)],
            }
    else:
        checkpoint_path = os.path.join(workdir,
                                       f"chaos-run-{run_index}.ckpt")
        outcome = serve_with_faults(
            _service_for(cordial, plan), perturbed, kill_points,
            checkpoint_path, fault_rng, tamper_modes=plan.tamper_modes)
    icr = outcome.service.coverage(truth)
    scratch = os.path.join(workdir, f"chaos-run-{run_index}.oracle.ckpt")
    violation_objs = [v.to_obj()
                      for v in oracle.check_run(outcome, icr, scratch)]
    for path in (checkpoint_path, scratch):
        if path is not None and os.path.exists(path):
            os.remove(path)
    report = {
        "run": run_index,
        "operators": applied,
        "kill_points": kill_points,
        "restores": outcome.restore_count,
        "tamper_trials": [t.to_obj() for t in outcome.tamper_trials],
        "summary": _summarize(outcome.service, outcome.decisions, icr),
        "decisions_digest": decisions_digest(outcome.decisions),
    }
    if supervised_extra is not None:
        violation_objs += supervised_extra.pop("supervision_violations")
        report.update(supervised_extra)
    report["violations"] = violation_objs
    report["ok"] = not violation_objs
    return report


def run_campaign(cordial: Cordial, stream: Sequence[ErrorRecord],
                 truth: Dict[tuple, Sequence[Tuple[float, int]]],
                 plan: ChaosPlan, config: CampaignConfig, workdir: str,
                 context: Optional[dict] = None, obs=None,
                 shards: Optional[int] = None, engine_jobs: int = 1) -> dict:
    """Execute a full campaign; returns the byte-stable JSON report.

    Args:
        cordial: the fitted pipeline under test.
        stream: the clean, time-ordered event stream.
        truth: per-bank ``(first_uer_time, row)`` ground truth for ICR.
        plan: the chaos recipe.
        config: run count and root seed.
        workdir: scratch directory for checkpoint files (never recorded
            in the report, so reports are location-independent).
        context: free-form labels merged into the report's config block
            (scale, model name, ...).
        shards: when given, every chaos run serves through a sharded
            fleet engine with this many bank-key shards (see
            :func:`run_one`).  The clean baseline stays single-service —
            the fleet is bit-identical to it, which is precisely the
            property the campaign digests then witness.
        obs: optional :class:`~repro.obs.Observability` bundle, attached
            to the **clean baseline** serve only.  Per-run services stay
            unobserved on purpose: the ``drop_key`` tamper operator
            samples the checkpoint's state keys, and an optional ``obs``
            key would give it a target whose loss loads cleanly —
            silently weakening the tamper-detection invariant.  The
            journal additionally records one ``run`` event per chaos run
            and a closing ``campaign`` event; none of it enters the
            report, which stays byte-stable and path-free.
    """
    from repro.experiments.serve import serve_stream

    clean_service = _service_for(cordial, plan, obs=obs)
    clean_service, clean_decisions = serve_stream(clean_service, stream)
    clean_icr = clean_service.coverage(truth)
    clean = CleanBaseline(decision_count=len(clean_decisions),
                          icr=clean_icr)
    oracle = InvariantOracle(plan, clean=clean)

    root = np.random.SeedSequence(config.seed)
    runs = []
    for run_index, run_seed in enumerate(root.spawn(config.runs)):
        run = run_one(cordial, stream, truth, plan, run_seed, oracle,
                      workdir, run_index, shards=shards,
                      engine_jobs=engine_jobs)
        if obs is not None:
            obs.journal.event("run", run=run_index, ok=run["ok"],
                              violations=len(run["violations"]),
                              dead_letters=run["summary"]["dead_letters"])
        runs.append(run)

    campaign_hash = hashlib.sha256()
    campaign_hash.update(decisions_digest(clean_decisions).encode())
    for run in runs:
        campaign_hash.update(run["decisions_digest"].encode())
    violations_total = sum(len(run["violations"]) for run in runs)
    # Aggregate the dead-letter *reason histogram* across chaos runs.
    # The per-run summaries always carried it, but the campaign roll-up
    # used to drop it, so the report could not be reconciled against the
    # journal's quarantine ledger without re-reading every run.
    dead_letters_total: Dict[str, int] = {}
    for run in runs:
        for reason, count in run["summary"]["dead_letters"].items():
            dead_letters_total[reason] = (
                dead_letters_total.get(reason, 0) + count)
    if obs is not None:
        obs.journal.event("campaign", runs=config.runs,
                          violations_total=violations_total,
                          dead_letters_total={
                              k: dead_letters_total[k]
                              for k in sorted(dead_letters_total)})
    return {
        "config": {
            "runs": config.runs,
            "seed": config.seed,
            "stream_events": len(stream),
            **dict(context or {}),
        },
        "plan": plan.to_dict(),
        "clean": {
            "summary": _summarize(clean_service, clean_decisions,
                                  clean_icr),
            "decisions_digest": decisions_digest(clean_decisions),
        },
        "runs": runs,
        "dead_letters_total": {k: dead_letters_total[k]
                               for k in sorted(dead_letters_total)},
        "violations_total": violations_total,
        "ok": violations_total == 0,
        "campaign_digest": campaign_hash.hexdigest(),
    }


def run_chaos_campaign(scale: float = 0.08, seed: int = 11,
                       model_name: str = "LightGBM",
                       plan: Optional[ChaosPlan] = None,
                       runs: int = 20, campaign_seed: int = 0,
                       jobs: int = 1, max_events: Optional[int] = None,
                       workdir: Optional[str] = None,
                       obs_dir: Optional[str] = None,
                       shards: Optional[int] = None,
                       engine_jobs: int = 1) -> dict:
    """Generate, train, and run a campaign — the CLI entry's workhorse.

    Reuses the serve-replay plumbing: the same fleet generation, 70:30
    bank split, training, and test-stream construction as
    ``cordial-repro serve-replay``, so chaos results are directly
    comparable with the serving smoke reports.

    Args:
        obs_dir: when given, observe the clean baseline serve (see
            :func:`run_campaign`) and write the journal/trace/audit
            artifacts into this directory.  The campaign report itself
            is unchanged — it stays byte-stable and path-free.
        shards: when given, chaos runs serve through the sharded fleet
            engine (``cordial-repro chaos --shards N``).  Decision
            digests, summaries, and the campaign digest match the
            single-service campaign bit for bit; only the tamper-trial
            entries differ (fleet trials damage shard files *and* the
            manifest, labelled ``shard:``/``manifest:``).
    """
    import tempfile

    from repro.chaos.plan import default_plan
    from repro.experiments.serve import prepare_serving_run

    plan = plan if plan is not None else default_plan()
    cordial, stream, truth, meta = prepare_serving_run(
        scale=scale, seed=seed, model_name=model_name, jobs=jobs)
    if max_events is not None:
        stream = stream[:max_events]
    context = {**meta, "scale": scale, "generator_seed": seed,
               "model_name": model_name}
    if shards is not None:
        context["shards"] = shards
    config = CampaignConfig(runs=runs, seed=campaign_seed)
    obs = None
    if obs_dir is not None:
        from repro.obs import Observability, build_provenance

        obs = Observability.create(
            obs_dir,
            provenance=build_provenance(
                seeds={"generator": seed, "campaign": campaign_seed},
                config={**context, "runs": runs, "plan": plan.to_dict()}))
    try:
        if workdir is not None:
            report = run_campaign(cordial, stream, truth, plan, config,
                                  workdir, context=context, obs=obs,
                                  shards=shards, engine_jobs=engine_jobs)
        else:
            with tempfile.TemporaryDirectory(
                    prefix="cordial-chaos-") as scratch:
                report = run_campaign(cordial, stream, truth, plan, config,
                                      scratch, context=context, obs=obs,
                                      shards=shards,
                                      engine_jobs=engine_jobs)
    finally:
        if obs is not None:
            obs.export(obs_dir)
    return report
