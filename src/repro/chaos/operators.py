"""Seeded stream perturbation operators.

Each operator is a pure function ``(stream, rng, **params) -> (stream,
applied_count)`` over the *arrival* sequence of a telemetry stream.  The
input items are usually :class:`~repro.telemetry.events.ErrorRecord`
instances, but an operator must tolerate anything — an earlier corruption
operator may already have replaced records with garbage payloads, exactly
like a real log shipper mixing junk into the feed.

Operators never mutate records in place (records are frozen dataclasses);
timestamp and field corruption build replacements with
:func:`dataclasses.replace`.  Given the same input stream and an RNG in
the same state, every operator is bit-deterministic — the property the
campaign's ``SeedSequence`` plumbing turns into reproducible chaos.

The catalogue (see ``docs/CHAOS.md`` for the operational rationale):

``drop``
    Lose each event with probability ``rate`` (partial log loss).
``duplicate``
    Re-deliver selected events a few arrival slots later (shipper
    retries after an unacked batch).
``reorder``
    Delay selected events until the stream is ``displacement`` seconds
    past them — beyond the service's ``max_skew`` this *must* end in the
    dead-letter queue, not in the bank history.
``clock_jitter``
    Shift timestamps by centred noise of scale ``sigma`` seconds (BMC
    clock drift); arrival order is untouched, so jitter larger than the
    skew window creates genuinely late events.
``corrupt``
    Replace selected events with damaged payloads: a raw dict instead of
    a record, a NaN timestamp, or a silently wrong row coordinate.
``burst``
    Deliver consecutive events as one shuffled batch (log shipper
    flushing a buffered window out of order).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.telemetry.events import ErrorRecord

#: An arrival sequence: records, or garbage an earlier operator injected.
Stream = List[Any]


def is_error_record(item: Any) -> bool:
    """Whether a stream item is still a well-formed :class:`ErrorRecord`."""
    return isinstance(item, ErrorRecord)


def _record_indices(stream: Stream) -> List[int]:
    """Indices of items an operator may meaningfully perturb."""
    return [i for i, item in enumerate(stream) if is_error_record(item)]


def op_drop(stream: Stream, rng: np.random.Generator,
            rate: float = 0.01) -> Tuple[Stream, int]:
    """Drop each item independently with probability ``rate``."""
    keep = rng.random(len(stream)) >= rate
    kept = [item for item, flag in zip(stream, keep) if flag]
    return kept, len(stream) - len(kept)


def op_duplicate(stream: Stream, rng: np.random.Generator,
                 rate: float = 0.01,
                 max_delay_events: int = 8) -> Tuple[Stream, int]:
    """Re-deliver selected items ``1..max_delay_events`` arrivals later."""
    selected = rng.random(len(stream)) < rate
    delays = rng.integers(1, max(2, max_delay_events + 1), size=len(stream))
    out: Stream = []
    # (deliver_at_position, duplicate) pending re-deliveries.
    pending: List[Tuple[int, Any]] = []
    applied = 0
    for index, item in enumerate(stream):
        for position, dup in [p for p in pending if p[0] <= index]:
            out.append(dup)
        pending = [p for p in pending if p[0] > index]
        out.append(item)
        if selected[index]:
            pending.append((index + int(delays[index]), item))
            applied += 1
    out.extend(dup for _, dup in pending)
    return out, applied


def op_reorder(stream: Stream, rng: np.random.Generator,
               rate: float = 0.005,
               displacement: float = 7200.0) -> Tuple[Stream, int]:
    """Hold selected records back until the stream passes them by
    ``displacement`` seconds.

    With ``displacement > max_skew`` the held-back record arrives behind
    the collector watermark and must be dead-lettered as ``"late"``.
    """
    candidates = _record_indices(stream)
    if not candidates:
        return list(stream), 0
    selected = {i for i in candidates if rng.random() < rate}
    out: Stream = []
    held: List[Any] = []
    for index, item in enumerate(stream):
        if index in selected:
            held.append(item)
            continue
        out.append(item)
        if is_error_record(item):
            still_held = []
            for record in held:
                if item.timestamp >= record.timestamp + displacement:
                    out.append(record)
                else:
                    still_held.append(record)
            held = still_held
    out.extend(held)
    return out, len(selected)


def op_clock_jitter(stream: Stream, rng: np.random.Generator,
                    sigma: float = 60.0,
                    rate: float = 1.0) -> Tuple[Stream, int]:
    """Shift record timestamps by ``Normal(0, sigma)`` seconds.

    Timestamps are clamped at 0 (records reject negative times); arrival
    order is preserved, so the *stream* becomes disordered relative to
    its own clocks — the reorder buffer's job to absorb, up to the skew.
    """
    noise = rng.normal(0.0, sigma, size=len(stream))
    selected = rng.random(len(stream)) < rate
    out: Stream = []
    applied = 0
    for index, item in enumerate(stream):
        if is_error_record(item) and selected[index]:
            shifted = max(0.0, item.timestamp + float(noise[index]))
            out.append(dataclasses.replace(item, timestamp=shifted))
            applied += 1
        else:
            out.append(item)
    return out, applied


#: Corruption modes, in the order the RNG draws them.
CORRUPT_MODES = ("payload", "timestamp_nan", "row")


def op_corrupt(stream: Stream, rng: np.random.Generator,
               rate: float = 0.005) -> Tuple[Stream, int]:
    """Replace selected records with damaged payloads.

    ``payload`` swaps the record for its raw-dict rendering (a parser
    that forgot to construct the record), ``timestamp_nan`` poisons the
    clock field, and ``row`` silently lands the error on a wrong row —
    the one corruption the service *cannot* detect, only tolerate.
    """
    from repro.telemetry.mcelog import record_to_obj

    selected = rng.random(len(stream)) < rate
    modes = rng.integers(0, len(CORRUPT_MODES), size=len(stream))
    out: Stream = []
    applied = 0
    for index, item in enumerate(stream):
        if not (is_error_record(item) and selected[index]):
            out.append(item)
            continue
        mode = CORRUPT_MODES[int(modes[index])]
        if mode == "payload":
            out.append(record_to_obj(item))
        elif mode == "timestamp_nan":
            out.append(dataclasses.replace(item, timestamp=math.nan))
        else:  # "row": flip low row bits, staying in the packed field range
            address = dataclasses.replace(
                item.address, row=(item.address.row ^ 0x15) & 0x7FFF)
            out.append(dataclasses.replace(item, address=address))
        applied += 1
    return out, applied


def op_burst(stream: Stream, rng: np.random.Generator,
             rate: float = 0.1, burst_size: int = 8) -> Tuple[Stream, int]:
    """Deliver consecutive ``burst_size`` windows as one shuffled batch."""
    if burst_size < 2:
        return list(stream), 0
    out: Stream = []
    applied = 0
    for start in range(0, len(stream), burst_size):
        chunk = list(stream[start:start + burst_size])
        if len(chunk) > 1 and rng.random() < rate:
            order = rng.permutation(len(chunk))
            chunk = [chunk[i] for i in order]
            applied += 1
        out.extend(chunk)
    return out, applied


class PoisonDetonation(RuntimeError):
    """Raised when a poison record's ``sequence`` field is read."""


class PoisonRecord(ErrorRecord):
    """An :class:`ErrorRecord` that kills whatever stages it.

    The record passes every router check — ``isinstance``, finite
    timestamp, watermark — because routing reads only ``timestamp`` and
    ``bank_key``.  But ``sequence`` is a detonating property: the first
    reader raises :class:`PoisonDetonation`.  In the serving path that
    reader is ``BMCCollector.ingest`` building its reorder-heap key, so
    the poison reliably kills the shard *worker* that stages it (local
    or process — the instance pickles through ``__dict__``, bypassing
    the descriptor, and detonates identically on the far side), while
    the coordinator that merely routed it survives.  This is the
    supervision harness's model of a record that crashes the service
    code itself rather than failing validation.
    """

    @property
    def sequence(self) -> int:
        raise PoisonDetonation(
            "poison record detonated (timestamp "
            f"{self.__dict__.get('timestamp')!r})")

    @sequence.setter
    def sequence(self, value: int) -> None:
        # The frozen-dataclass __init__ assigns fields via
        # object.__setattr__, which dispatches to this data descriptor.
        self.__dict__["sequence"] = value

    def __repr__(self) -> str:  # the dataclass repr would detonate
        return (f"PoisonRecord(timestamp="
                f"{self.__dict__.get('timestamp')!r}, address="
                f"{self.__dict__.get('address')!r})")


def make_poison(record: ErrorRecord, timestamp: float) -> PoisonRecord:
    """A poison twin of ``record``: same bank (same shard routing), with
    the caller-chosen timestamp (see :func:`plant_poison`)."""
    return PoisonRecord(timestamp=float(timestamp),
                        sequence=int(record.sequence),
                        address=record.address,
                        error_type=record.error_type,
                        bit_count=record.bit_count,
                        detector=record.detector)


def plant_poison(stream: Stream,
                 positions: List[int]) -> Tuple[Stream, Stream, int]:
    """Replace records at ``positions`` with poison twins.

    Returns ``(faulted, twin, planted)``: the faulted stream carries the
    poison records; the twin stream simply omits those positions.  A
    supervised run of the faulted stream must end byte-identical to an
    undisturbed run of the twin (modulo the ``"poison"`` dead-letter
    entries): the poison detonates before touching any shard state, and
    its timestamp is pinned to the *running maximum* timestamp of the
    records before it — exactly on the router's high-water mark, so it is
    accepted (never ``"late"``) yet moves no watermark, and every routing
    decision after it is identical in both streams.  Positions whose
    prefix holds no record yet (nothing to pin the timestamp to), or that
    hold a non-record item, are skipped in *both* streams.
    """
    chosen = {int(p) for p in positions}
    faulted: Stream = []
    twin: Stream = []
    planted = 0
    running_max = float("-inf")
    for index, item in enumerate(stream):
        if (index in chosen and is_error_record(item)
                and math.isfinite(running_max)):
            faulted.append(make_poison(item, running_max))
            planted += 1
            continue
        faulted.append(item)
        twin.append(item)
        if is_error_record(item) and math.isfinite(item.timestamp):
            running_max = max(running_max, item.timestamp)
    return faulted, twin, planted


#: Operator registry: plan names -> implementations.
OPERATORS: Dict[str, Callable[..., Tuple[Stream, int]]] = {
    "drop": op_drop,
    "duplicate": op_duplicate,
    "reorder": op_reorder,
    "clock_jitter": op_clock_jitter,
    "corrupt": op_corrupt,
    "burst": op_burst,
}


def apply_operator(name: str, stream: Stream, rng: np.random.Generator,
                   params: Dict[str, Any]) -> Tuple[Stream, int]:
    """Apply one registered operator; unknown names raise ``ValueError``."""
    operator = OPERATORS.get(name)
    if operator is None:
        raise ValueError(f"unknown chaos operator: {name!r} "
                         f"(known: {sorted(OPERATORS)})")
    return operator(stream, rng, **params)
