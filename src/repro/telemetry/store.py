"""Indexed, queryable store of error events.

The empirical study (Section III) repeatedly asks questions of the form
"which units at level L have events of type T, and in what order did they
arrive?".  :class:`ErrorStore` answers those with per-level indexes built
once at ingestion time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorRecord, ErrorType


class ErrorStore:
    """Time-ordered error events with per-micro-level indexes."""

    def __init__(self, records: Iterable[ErrorRecord] = ()) -> None:
        self._records: List[ErrorRecord] = []
        # level -> unit key -> list of record indexes (time-ordered)
        self._index: Dict[MicroLevel, Dict[tuple, List[int]]] = {
            level: defaultdict(list) for level in MicroLevel
        }
        self.extend(records)

    def append(self, record: ErrorRecord) -> None:
        """Append one record; records must arrive in non-decreasing time."""
        if self._records and record.timestamp < self._records[-1].timestamp:
            raise ValueError(
                "ErrorStore requires non-decreasing timestamps; "
                f"got {record.timestamp} after {self._records[-1].timestamp}")
        position = len(self._records)
        self._records.append(record)
        for level in MicroLevel:
            self._index[level][record.key(level)].append(position)

    def extend(self, records: Iterable[ErrorRecord]) -> None:
        """Append many records (still order-checked one by one)."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> Sequence[ErrorRecord]:
        """All records in time order (do not mutate)."""
        return self._records

    def units(self, level: MicroLevel) -> Set[tuple]:
        """All unit keys at ``level`` that saw at least one event."""
        return set(self._index[level].keys())

    def units_with(self, level: MicroLevel, error_type: ErrorType) -> Set[tuple]:
        """Unit keys at ``level`` with at least one event of ``error_type``."""
        found: Set[tuple] = set()
        for key, positions in self._index[level].items():
            if any(self._records[i].error_type is error_type for i in positions):
                found.add(key)
        return found

    def events_for(self, level: MicroLevel, key: tuple,
                   error_type: Optional[ErrorType] = None) -> List[ErrorRecord]:
        """Time-ordered events inside the unit ``key`` at ``level``.

        Optionally filtered by ``error_type``.
        """
        positions = self._index[level].get(key, [])
        events = [self._records[i] for i in positions]
        if error_type is None:
            return events
        return [event for event in events if event.error_type is error_type]

    def bank_events(self, bank_key: tuple) -> List[ErrorRecord]:
        """All events of one bank, in time order."""
        return self.events_for(MicroLevel.BANK, bank_key)

    def first_event_of(self, level: MicroLevel, key: tuple,
                       error_type: ErrorType) -> Optional[ErrorRecord]:
        """Earliest event of ``error_type`` in the unit, or ``None``."""
        for position in self._index[level].get(key, []):
            record = self._records[position]
            if record.error_type is error_type:
                return record
        return None

    def has_event_before(self, level: MicroLevel, key: tuple,
                         error_types: Sequence[ErrorType],
                         before: float,
                         since: Optional[float] = None) -> bool:
        """Whether the unit saw any event of the given types strictly before
        ``before`` (and at or after ``since``, when given).

        This is the primitive behind the sudden-vs-non-sudden UER analysis
        (Table I): a UER is *non-sudden at level L* iff its unit at L had a
        CE or UEO inside the observation window ending at the UER.
        """
        wanted = set(error_types)
        for position in self._index[level].get(key, []):
            record = self._records[position]
            if record.timestamp >= before:
                return False
            if since is not None and record.timestamp < since:
                continue
            if record.error_type in wanted:
                return True
        return False

    def uer_rows_of_bank(self, bank_key: tuple) -> List[ErrorRecord]:
        """First UER per distinct row of a bank, in occurrence order."""
        seen: Set[int] = set()
        firsts: List[ErrorRecord] = []
        for record in self.bank_events(bank_key):
            if record.error_type is ErrorType.UER and record.row not in seen:
                seen.add(record.row)
                firsts.append(record)
        return firsts

    def banks_with_min_uer_rows(self, min_rows: int) -> List[tuple]:
        """Banks whose distinct-UER-row count reaches ``min_rows``."""
        result = []
        for key in self._index[MicroLevel.BANK]:
            if len(self.uer_rows_of_bank(key)) >= min_rows:
                result.append(key)
        return sorted(result)
