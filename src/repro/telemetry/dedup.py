"""MCE stream compaction: duplicate suppression and burst folding.

Real BMC firmware frequently re-reports the same error — patrol scrub
revisits a stuck cell every sweep, a hot row refires on every access burst
— inflating logs by orders of magnitude without adding information.  The
compactor suppresses repeats of the same (cell, error type) within a
holdoff window while preserving first occurrences exactly, so every
downstream analysis (which keys on *first* events and *distinct* rows)
is unchanged by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.metrics import MetricsRegistry


@dataclass
class CompactionStats:
    """What the compactor dropped."""

    seen: int = 0
    emitted: int = 0
    suppressed_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def suppressed(self) -> int:
        """Total events dropped."""
        return self.seen - self.emitted

    @property
    def ratio(self) -> float:
        """Fraction of the stream dropped."""
        return self.suppressed / self.seen if self.seen else 0.0


class StreamCompactor:
    """Suppress repeats of the same (cell, type) within a holdoff window.

    The suppression table is bounded: an entry whose last emission is
    more than ``holdoff_s`` behind the newest timestamp seen can never
    suppress another record, so it is evicted during periodic amortized
    sweeps — over a long stream the table tracks only the *live* cells
    of the last holdoff window instead of every distinct cell ever seen
    (the same class of unbounded growth PR 2 fixed in
    ``CordialService``).

    Args:
        holdoff_s: a repeat arriving within this many seconds of the last
            *emitted* event for the same (cell, type) is dropped.
        never_drop_uer: always pass UERs through (they are actionable;
            default True drops only CE/UEO chatter).
        metrics: optional registry; the compactor exports the live
            suppression-key count (``compactor.live_keys`` gauge, with
            its high-water mark) and the evicted-entry total
            (``compactor.evicted_keys`` counter).
    """

    #: Sweeps never run before the table holds this many keys.
    MIN_SWEEP_SIZE = 1024

    def __init__(self, holdoff_s: float = 3600.0,
                 never_drop_uer: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if holdoff_s < 0:
            raise ValueError("holdoff_s must be >= 0")
        self.holdoff_s = holdoff_s
        self.never_drop_uer = never_drop_uer
        self.stats = CompactionStats()
        self.evicted = 0
        self._last_emitted: Dict[Tuple, float] = {}
        self._max_timestamp = float("-inf")
        self._sweep_at = self.MIN_SWEEP_SIZE
        self._live_keys_gauge = (metrics.gauge("compactor.live_keys")
                                 if metrics is not None else None)
        self._evicted_counter = (metrics.counter("compactor.evicted_keys")
                                 if metrics is not None else None)

    def _key(self, record: ErrorRecord) -> Tuple:
        return (record.bank_key, record.row, record.column,
                record.error_type)

    @property
    def live_keys(self) -> int:
        """Entries currently held in the suppression table."""
        return len(self._last_emitted)

    def _sweep(self) -> None:
        """Drop entries too old to ever suppress again (amortized O(1)).

        An entry with ``last <= max_timestamp - holdoff_s`` cannot match
        ``timestamp - last < holdoff_s`` for any record at or past the
        stream's frontier.  The sweep threshold doubles with the surviving
        table so the scan cost amortizes to O(1) per offer.
        """
        horizon = self._max_timestamp - self.holdoff_s
        stale = [key for key, last in self._last_emitted.items()
                 if last <= horizon]
        for key in stale:
            del self._last_emitted[key]
        self.evicted += len(stale)
        if self._evicted_counter is not None and stale:
            self._evicted_counter.inc(len(stale))
        self._sweep_at = max(self.MIN_SWEEP_SIZE,
                             2 * len(self._last_emitted))

    def offer(self, record: ErrorRecord) -> bool:
        """True when the record should be kept."""
        self.stats.seen += 1
        if record.timestamp > self._max_timestamp:
            self._max_timestamp = record.timestamp
        if self.never_drop_uer and record.error_type is ErrorType.UER:
            self.stats.emitted += 1
            return True
        key = self._key(record)
        last = self._last_emitted.get(key)
        if last is not None and record.timestamp - last < self.holdoff_s:
            label = record.error_type.value
            self.stats.suppressed_by_type[label] = (
                self.stats.suppressed_by_type.get(label, 0) + 1)
            return False
        self._last_emitted[key] = record.timestamp
        if len(self._last_emitted) >= self._sweep_at:
            self._sweep()
        if self._live_keys_gauge is not None:
            self._live_keys_gauge.set(len(self._last_emitted))
        self.stats.emitted += 1
        return True

    def compact(self, records: Iterable[ErrorRecord]
                ) -> Iterator[ErrorRecord]:
        """Stream-filter an iterable of records."""
        for record in records:
            if self.offer(record):
                yield record


def compact_records(records: Iterable[ErrorRecord],
                    holdoff_s: float = 3600.0
                    ) -> Tuple[List[ErrorRecord], CompactionStats]:
    """One-shot compaction; returns (kept records, stats)."""
    compactor = StreamCompactor(holdoff_s=holdoff_s)
    kept = list(compactor.compact(records))
    return kept, compactor.stats
