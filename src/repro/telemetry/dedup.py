"""MCE stream compaction: duplicate suppression and burst folding.

Real BMC firmware frequently re-reports the same error — patrol scrub
revisits a stuck cell every sweep, a hot row refires on every access burst
— inflating logs by orders of magnitude without adding information.  The
compactor suppresses repeats of the same (cell, error type) within a
holdoff window while preserving first occurrences exactly, so every
downstream analysis (which keys on *first* events and *distinct* rows)
is unchanged by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass
class CompactionStats:
    """What the compactor dropped."""

    seen: int = 0
    emitted: int = 0
    suppressed_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def suppressed(self) -> int:
        """Total events dropped."""
        return self.seen - self.emitted

    @property
    def ratio(self) -> float:
        """Fraction of the stream dropped."""
        return self.suppressed / self.seen if self.seen else 0.0


class StreamCompactor:
    """Suppress repeats of the same (cell, type) within a holdoff window.

    Args:
        holdoff_s: a repeat arriving within this many seconds of the last
            *emitted* event for the same (cell, type) is dropped.
        never_drop_uer: always pass UERs through (they are actionable;
            default True drops only CE/UEO chatter).
    """

    def __init__(self, holdoff_s: float = 3600.0,
                 never_drop_uer: bool = True) -> None:
        if holdoff_s < 0:
            raise ValueError("holdoff_s must be >= 0")
        self.holdoff_s = holdoff_s
        self.never_drop_uer = never_drop_uer
        self.stats = CompactionStats()
        self._last_emitted: Dict[Tuple, float] = {}

    def _key(self, record: ErrorRecord) -> Tuple:
        return (record.bank_key, record.row, record.column,
                record.error_type)

    def offer(self, record: ErrorRecord) -> bool:
        """True when the record should be kept."""
        self.stats.seen += 1
        if self.never_drop_uer and record.error_type is ErrorType.UER:
            self.stats.emitted += 1
            return True
        key = self._key(record)
        last = self._last_emitted.get(key)
        if last is not None and record.timestamp - last < self.holdoff_s:
            label = record.error_type.value
            self.stats.suppressed_by_type[label] = (
                self.stats.suppressed_by_type.get(label, 0) + 1)
            return False
        self._last_emitted[key] = record.timestamp
        self.stats.emitted += 1
        return True

    def compact(self, records: Iterable[ErrorRecord]
                ) -> Iterator[ErrorRecord]:
        """Stream-filter an iterable of records."""
        for record in records:
            if self.offer(record):
                yield record


def compact_records(records: Iterable[ErrorRecord],
                    holdoff_s: float = 3600.0
                    ) -> Tuple[List[ErrorRecord], CompactionStats]:
    """One-shot compaction; returns (kept records, stats)."""
    compactor = StreamCompactor(holdoff_s=holdoff_s)
    kept = list(compactor.compact(records))
    return kept, compactor.stats
