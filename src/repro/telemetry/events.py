"""Error event records.

An :class:`ErrorRecord` is one line of the MCE log: a timestamped,
classified error at a fully resolved device address.  The record is the
single currency every other package trades in — generators emit it, the
store indexes it, featurizers consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hbm.address import DeviceAddress, MicroLevel
from repro.hbm.ecc import ECCOutcome


class ErrorType(enum.Enum):
    """Error taxonomy of Section II-B: CE, UEO and UER.

    ``ErrorType`` mirrors :class:`repro.hbm.ecc.ECCOutcome`; the telemetry
    layer keeps its own enum so log parsing does not depend on the hardware
    model, with explicit converters between the two.
    """

    CE = "CE"
    UEO = "UEO"
    UER = "UER"

    @property
    def is_uncorrectable(self) -> bool:
        """Whether the event is a UCE (UEO or UER)."""
        return self is not ErrorType.CE

    @classmethod
    def from_ecc(cls, outcome: ECCOutcome) -> "ErrorType":
        """Convert an ECC classification into a telemetry error type."""
        return cls(outcome.value)

    def to_ecc(self) -> ECCOutcome:
        """Convert back to the hardware-model enum."""
        return ECCOutcome(self.value)


class Detector(enum.Enum):
    """How the error surfaced (recorded in the MCE log for diagnostics)."""

    DEMAND_ACCESS = "demand"
    PATROL_SCRUB = "scrub"


@dataclass(frozen=True, order=True)
class ErrorRecord:
    """One classified error event.

    Ordering is by ``(timestamp, sequence)`` so a stable global order exists
    even when many events share a timestamp.  ``sequence`` is assigned by
    whoever creates the record (generator or log parser).
    """

    timestamp: float
    sequence: int
    address: DeviceAddress = field(compare=False)
    error_type: ErrorType = field(compare=False)
    bit_count: int = field(default=1, compare=False)
    detector: Detector = field(default=Detector.DEMAND_ACCESS, compare=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be >= 0")
        if self.bit_count < 1:
            raise ValueError("bit_count must be >= 1")

    def key(self, level: MicroLevel) -> tuple:
        """Identifier of the enclosing unit at ``level`` (delegates to the
        address)."""
        return self.address.key(level)

    @property
    def bank_key(self) -> tuple:
        """The bank containing this error."""
        return self.address.bank_key()

    @property
    def row(self) -> int:
        """Row coordinate of the error."""
        return self.address.row

    @property
    def column(self) -> int:
        """Column coordinate of the error."""
        return self.address.column
