"""BMC / MCE telemetry layer.

Error events flow from the (simulated) baseboard management controller into
an append-only MCE log; the :class:`ErrorStore` indexes them by micro-level
for the empirical-study analyses, and the :class:`BMCCollector` replays
them as a stream, firing the per-bank trigger Cordial acts on (the third
UER observed in a bank).
"""

from repro.telemetry.events import ErrorType, ErrorRecord
from repro.telemetry.mcelog import (write_mce_log, read_mce_log,
                                    iter_mce_log_lenient,
                                    iter_mce_log_quarantining, MCELogError)
from repro.telemetry.store import ErrorStore
from repro.telemetry.collector import BMCCollector, BankTrigger, DeadLetter
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.aggregator import (Alarm, AlarmRule,
                                        SlidingWindowAggregator,
                                        default_rules)
from repro.telemetry.dedup import (CompactionStats, StreamCompactor,
                                   compact_records)

__all__ = [
    "ErrorType",
    "ErrorRecord",
    "write_mce_log",
    "read_mce_log",
    "iter_mce_log_lenient",
    "iter_mce_log_quarantining",
    "MCELogError",
    "ErrorStore",
    "BMCCollector",
    "BankTrigger",
    "DeadLetter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Alarm",
    "AlarmRule",
    "SlidingWindowAggregator",
    "default_rules",
    "CompactionStats",
    "StreamCompactor",
    "compact_records",
]
