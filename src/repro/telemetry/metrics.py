"""A small dependency-free metrics registry for the serving path.

Production memory-failure predictors are judged as much by their
operational behaviour as by their model scores: how many events were
quarantined, how deep the reorder buffer runs, how close the sparing
budget is to exhaustion.  This module provides the three classic metric
kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — behind a
:class:`MetricsRegistry` that the collector, the online service and the
isolation ledger all share.

Design constraints, in order:

* **no dependencies** — plain dataclasses, no prometheus client;
* **deterministic export** — :meth:`MetricsRegistry.as_dict` sorts every
  key, so two runs that did the same work produce byte-identical JSON
  (modulo wall-clock histograms, which callers can exclude);
* **checkpointable** — the full registry state round-trips through
  :meth:`MetricsRegistry.as_dict` / :meth:`MetricsRegistry.restore`, so a
  restarted service resumes its counters instead of zeroing them.

Labels are supported as ``metric(name, labels={...})``: each distinct
label set is its own child series under the family name, exported as
``name{key=value,...}``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 10 us .. 1 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                           1e-2, 3e-2, 1e-1, 3e-1, 1.0)

#: Export-document version: 2 adds per-histogram cumulative (``le``)
#: bucket counts.  Version-1 documents (no ``version`` key) restore
#: unchanged.
EXPORT_VERSION = 2


def _series_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Canonical series name: ``name`` or ``name{k=v,...}`` (sorted keys)."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down; tracks its high-water mark."""

    __slots__ = ("value", "max_value")

    def __init__(self, value: float = 0.0, max_value: float = 0.0) -> None:
        self.value = value
        self.max_value = max_value

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.set(self.value + amount)


class Histogram:
    """Fixed-bucket histogram with cumulative-style export.

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest.  ``counts[i]`` is the number of observations <= ``buckets[i]``
    (non-cumulative per-bucket storage; export keeps it that way for
    simplicity).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative (``le``) counts per bucket.

        ``cumulative_counts()[i]`` is the number of observations <=
        ``buckets[i]``; the final entry (the implicit +inf bucket)
        always equals :attr:`count`.
        """
        cumulative: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return cumulative


class MetricsRegistry:
    """Named metrics, created on first use and shared by name.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    the same (name, labels) twice returns the same object, so components
    can be wired together just by sharing the registry.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------------
    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        """The counter series for (name, labels)."""
        key = _series_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        """The gauge series for (name, labels)."""
        key = _series_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        """The histogram series for (name, labels)."""
        key = _series_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    @contextmanager
    def timer(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Iterator[None]:
        """Context manager observing elapsed seconds into a histogram."""
        histogram = self.histogram(name, labels=labels)
        start = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - start)

    # -- export / restore ----------------------------------------------------
    def as_dict(self, include_histograms: bool = True) -> dict:
        """Full registry state with sorted keys (JSON-ready).

        The document carries ``"version": EXPORT_VERSION`` so consumers
        can tell the formats apart: version 2 adds Prometheus-style
        cumulative (``le``) bucket counts to every histogram, so the
        exporter (:mod:`repro.obs.promexport`) reads them instead of
        re-deriving.  :meth:`restore` accepts both versions — the
        cumulative counts are redundant with ``counts`` and are
        recomputed on export, so old checkpoints stay loadable.

        Args:
            include_histograms: drop histogram series (typically
                wall-clock latency, the one nondeterministic part) when
                False.
        """
        document = {
            "version": EXPORT_VERSION,
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: {"value": g.value, "max": g.max_value}
                       for k, g in sorted(self._gauges.items())},
        }
        if include_histograms:
            document["histograms"] = {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "cumulative": h.cumulative_counts(),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            }
        return document

    def restore(self, document: Mapping) -> "MetricsRegistry":
        """Load state exported by :meth:`as_dict` (replaces current state).

        Atomic: the whole document is parsed before any of it is
        installed, so a malformed document raises and leaves the
        registry untouched (restores must never half-apply — see the
        transactional contract of ``CordialService.load_state_dict``).
        """
        counters = {k: Counter(v)
                    for k, v in document.get("counters", {}).items()}
        gauges = {k: Gauge(v["value"], v["max"])
                  for k, v in document.get("gauges", {}).items()}
        histograms = {}
        for key, state in document.get("histograms", {}).items():
            histogram = Histogram(state["buckets"])
            histogram.counts = list(state["counts"])
            histogram.sum = float(state["sum"])
            histogram.count = int(state["count"])
            histograms[key] = histogram
        self._counters = counters
        self._gauges = gauges
        self._histograms = histograms
        return self

    def counter_value(self, name: str,
                      labels: Optional[Mapping[str, str]] = None) -> float:
        """Current value of a counter series (0.0 when never touched)."""
        metric = self._counters.get(_series_key(name, labels))
        return metric.value if metric is not None else 0.0
