"""Serialisation of error events to an MCE-log dialect.

The paper collects "MCE log and memory events from the BMC" where every
CE/UEO/UER is recorded with its memory address (server, bank, row, ...).
We use a line-oriented JSON dialect: a header line identifying the format
and version, then one JSON object per event.  Addresses are stored both
packed (compact, canonical) and expanded (human-grep-able); the parser
verifies they agree.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, TextIO, Union

from repro.hbm.address import DeviceAddress
from repro.telemetry.events import Detector, ErrorRecord, ErrorType

FORMAT_NAME = "cordial-mce-log"
FORMAT_VERSION = 1


class MCELogError(ValueError):
    """Raised when an MCE log file is malformed."""


def record_to_obj(record: ErrorRecord) -> dict:
    # Explicit int()/float() casts: producers may carry numpy scalars,
    # which the json module refuses to serialise.
    address = record.address
    return {
        "ts": float(record.timestamp),
        "seq": int(record.sequence),
        "type": record.error_type.value,
        "bits": int(record.bit_count),
        "det": record.detector.value,
        "addr": int(address.pack()),
        "loc": {
            "node": int(address.node),
            "npu": int(address.npu),
            "hbm": int(address.hbm),
            "sid": int(address.sid),
            "ch": int(address.channel),
            "psch": int(address.pseudo_channel),
            "bg": int(address.bank_group),
            "bank": int(address.bank),
            "row": int(address.row),
            "col": int(address.column),
        },
    }


def record_from_obj(obj: dict, line_no: int = 0) -> ErrorRecord:
    try:
        address = DeviceAddress.unpack(int(obj["addr"]))
        loc = obj.get("loc")
        if loc is not None:
            expanded = DeviceAddress(
                node=loc["node"], npu=loc["npu"], hbm=loc["hbm"],
                sid=loc["sid"], channel=loc["ch"],
                pseudo_channel=loc["psch"], bank_group=loc["bg"],
                bank=loc["bank"], row=loc["row"], column=loc["col"])
            if expanded != address:
                raise MCELogError(
                    f"line {line_no}: packed and expanded addresses disagree")
        timestamp = float(obj["ts"])
        if not math.isfinite(timestamp):
            # json.loads happily parses NaN/Infinity literals; a
            # non-finite clock would poison downstream watermark and
            # reorder-heap comparisons, so it is a parse error here —
            # counted once by the parser, never seen by the collector.
            raise MCELogError(
                f"line {line_no}: non-finite timestamp: {timestamp}")
        return ErrorRecord(
            timestamp=timestamp,
            sequence=int(obj["seq"]),
            address=address,
            error_type=ErrorType(obj["type"]),
            bit_count=int(obj.get("bits", 1)),
            detector=Detector(obj.get("det", Detector.DEMAND_ACCESS.value)),
        )
    except MCELogError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError,
            OverflowError) as exc:
        raise MCELogError(f"line {line_no}: malformed event: {exc}") from exc


def write_mce_log(records: Iterable[ErrorRecord],
                  destination: Union[str, Path, TextIO]) -> int:
    """Write records to an MCE log file or stream.

    Returns the number of events written.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_mce_log(records, handle)
    header = {"format": FORMAT_NAME, "version": FORMAT_VERSION}
    destination.write(json.dumps(header) + "\n")
    count = 0
    for record in records:
        destination.write(json.dumps(record_to_obj(record)) + "\n")
        count += 1
    return count


def iter_mce_log(source: Union[str, Path, TextIO]) -> Iterator[ErrorRecord]:
    """Stream records from an MCE log, validating the header and each line."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from iter_mce_log(handle)
            return
    header_line = source.readline()
    if not header_line.strip():
        raise MCELogError("empty file: missing MCE log header")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise MCELogError(f"malformed header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise MCELogError(f"unexpected log format: {header.get('format')!r}")
    if header.get("version") != FORMAT_VERSION:
        raise MCELogError(f"unsupported log version: {header.get('version')!r}")
    for line_no, line in enumerate(source, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MCELogError(f"line {line_no}: invalid JSON: {exc}") from exc
        yield record_from_obj(obj, line_no)


def read_mce_log(source: Union[str, Path, TextIO]) -> List[ErrorRecord]:
    """Read a whole MCE log into memory."""
    return list(iter_mce_log(source))


def iter_mce_log_lenient(
        source: Union[str, Path, TextIO],
        on_malformed: Optional[Callable[[int, str, str], None]] = None,
) -> Iterator[ErrorRecord]:
    """Stream records, routing malformed lines to a callback.

    The strict reader (:func:`iter_mce_log`) is right for offline
    analysis, where a corrupt file should stop the run.  An online
    service instead wants to keep consuming and quarantine the bad lines
    — exactly the dead-letter posture of
    :meth:`repro.telemetry.collector.BMCCollector.quarantine`.  Use
    :func:`iter_mce_log_quarantining` for that wiring: it routes parse
    failures under the dedicated ``"corrupt"`` reason so they can never
    collide with (or double-count against) the collector's own
    ``"malformed"`` ingest quarantine.

    A bad *header* still raises: that is a wrong-file error, not noise.

    Exactly-once accounting: every non-blank body line either yields one
    record or fires ``on_malformed`` once — never both, never twice.
    The ``yield`` sits outside the ``try`` block, so an exception thrown
    *into* the suspended generator by its consumer can never re-enter
    the parse handler and double-count the line.

    Args:
        on_malformed: called with ``(line_no, raw_line, error)`` for every
            skipped line; ``None`` skips them silently (the quarantining
            wrapper above is the counted variant).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from iter_mce_log_lenient(handle, on_malformed)
            return
    header_line = source.readline()
    if not header_line.strip():
        raise MCELogError("empty file: missing MCE log header")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise MCELogError(f"malformed header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise MCELogError(f"unexpected log format: {header.get('format')!r}")
    if header.get("version") != FORMAT_VERSION:
        raise MCELogError(f"unsupported log version: {header.get('version')!r}")
    for line_no, line in enumerate(source, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = record_from_obj(json.loads(line), line_no)
        except (json.JSONDecodeError, MCELogError) as exc:
            if on_malformed is not None:
                on_malformed(line_no, line, str(exc))
            continue
        yield record


def iter_mce_log_quarantining(source: Union[str, Path, TextIO],
                              collector) -> Iterator[ErrorRecord]:
    """Lenient reader wired into a collector's dead-letter quarantine.

    Parse failures are quarantined under the dedicated ``"corrupt"``
    reason (:data:`repro.telemetry.collector.REASON_CORRUPT`), *not*
    under the collector's own ``"malformed"`` — so a damaged input is
    counted exactly once no matter where it dies: lines the parser
    rejects never reach :meth:`~repro.telemetry.collector.BMCCollector.ingest`,
    and records the collector rejects were parseable lines.  The event
    conservation audit is then exact on both ledgers::

        lines read   == records yielded + dead_letter_counts["corrupt"]
        ingested     == released + late + malformed + still buffered

    Args:
        collector: anything with the
            :meth:`~repro.telemetry.collector.BMCCollector.quarantine`
            signature.
    """
    from repro.telemetry.collector import REASON_CORRUPT

    def route(line_no: int, line: str, error: str) -> None:
        collector.quarantine(REASON_CORRUPT, f"line {line_no}: {error}")

    yield from iter_mce_log_lenient(source, on_malformed=route)
