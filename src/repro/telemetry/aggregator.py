"""Sliding-window error-rate aggregation and alarming.

Fleet operators watch *rates*, not raw events: CE storms precede service
impact, and per-level error-rate alarms are how a platform notices a
degrading device before Cordial's per-bank trigger fires.  The aggregator
maintains per-unit sliding windows over the event stream and raises
threshold alarms; it is the monitoring companion to the BMC collector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.hbm.address import MicroLevel
from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass(frozen=True)
class Alarm:
    """One threshold crossing.

    Attributes:
        timestamp: when the crossing happened.
        level: aggregation level of the unit.
        unit: the unit's key.
        error_type: which error type crossed.
        count: events of that type inside the window at crossing time.
    """

    timestamp: float
    level: MicroLevel
    unit: tuple
    error_type: ErrorType
    count: int
    rule_index: int = 0


@dataclass(frozen=True)
class AlarmRule:
    """Raise when a unit sees more than ``threshold`` events of
    ``error_type`` within ``window_s`` seconds."""

    level: MicroLevel
    error_type: ErrorType
    threshold: int
    window_s: float

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


class SlidingWindowAggregator:
    """Streams events, keeps per-(rule, unit) sliding windows, emits alarms.

    An alarm for a (rule, unit) pair re-arms only after the unit's window
    drains below the threshold — no alarm storms from a single burst.
    """

    def __init__(self, rules: List[AlarmRule]) -> None:
        if not rules:
            raise ValueError("need at least one alarm rule")
        self.rules = list(rules)
        self._windows: Dict[Tuple[int, tuple], Deque[float]] = {}
        self._armed: Dict[Tuple[int, tuple], bool] = {}
        self.alarms: List[Alarm] = []
        self._last_timestamp = float("-inf")

    def ingest(self, record: ErrorRecord) -> List[Alarm]:
        """Feed one event; returns alarms it raised."""
        if record.timestamp < self._last_timestamp:
            raise ValueError("aggregator requires non-decreasing timestamps")
        self._last_timestamp = record.timestamp
        raised: List[Alarm] = []
        for rule_index, rule in enumerate(self.rules):
            if record.error_type is not rule.error_type:
                continue
            unit = record.key(rule.level)
            key = (rule_index, unit)
            window = self._windows.setdefault(key, deque())
            window.append(record.timestamp)
            horizon = record.timestamp - rule.window_s
            while window and window[0] <= horizon:
                window.popleft()
            if len(window) < rule.threshold:
                self._armed[key] = True
                continue
            if self._armed.get(key, True):
                self._armed[key] = False
                alarm = Alarm(timestamp=record.timestamp, level=rule.level,
                              unit=unit, error_type=rule.error_type,
                              count=len(window), rule_index=rule_index)
                self.alarms.append(alarm)
                raised.append(alarm)
        return raised

    def replay(self, records) -> List[Alarm]:
        """Feed a whole stream; returns every alarm raised."""
        raised: List[Alarm] = []
        for record in records:
            raised.extend(self.ingest(record))
        return raised

    def rate(self, rule_index: int, unit: tuple) -> float:
        """Current events-per-second of a unit under one rule's window."""
        rule = self.rules[rule_index]
        window = self._windows.get((rule_index, unit))
        if not window:
            return 0.0
        return len(window) / rule.window_s

    def alarmed_units(self, rule_index: int) -> List[tuple]:
        """Distinct units that ever alarmed under one rule."""
        return sorted({alarm.unit for alarm in self.alarms
                       if alarm.rule_index == rule_index})


def default_rules() -> List[AlarmRule]:
    """A practical default rule set for HBM fleets.

    CE storms at bank level, any repeated UEO at HBM level, and repeated
    UERs at bank level (Cordial's own trigger will usually fire first).
    """
    day = 86400.0
    return [
        AlarmRule(MicroLevel.BANK, ErrorType.CE, threshold=10,
                  window_s=1 * day),
        AlarmRule(MicroLevel.HBM, ErrorType.UEO, threshold=3,
                  window_s=7 * day),
        AlarmRule(MicroLevel.BANK, ErrorType.UER, threshold=2,
                  window_s=30 * day),
    ]
