"""Streaming BMC collector with per-bank triggers.

Cordial acts when a bank reaches its *third* uncorrectable-action-required
error (Section IV-C: "We use the first three UER information for failure
pattern classification").  The collector replays an event stream in time
order, maintains the per-bank history visible *so far*, and yields a
:class:`BankTrigger` the moment a bank's k-th distinct UER row appears.

The trigger carries a snapshot of the bank's history up to and including
the triggering event — exactly the information the featurizers are allowed
to see, which makes look-ahead bugs structurally impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.telemetry.events import ErrorRecord, ErrorType


@dataclass(frozen=True)
class BankTrigger:
    """Fired when a bank accumulates ``trigger_uer_rows`` distinct UER rows.

    Attributes:
        bank_key: the bank that triggered.
        timestamp: time of the triggering event.
        history: every event of this bank up to and including the trigger,
            in time order.
        uer_rows: the distinct UER rows seen so far, in occurrence order.
    """

    bank_key: tuple
    timestamp: float
    history: Tuple[ErrorRecord, ...]
    uer_rows: Tuple[int, ...]


@dataclass
class _BankBuffer:
    events: List[ErrorRecord] = field(default_factory=list)
    uer_rows: List[int] = field(default_factory=list)
    uer_row_set: Set[int] = field(default_factory=set)
    triggered: bool = False


class BMCCollector:
    """Replays an event stream and fires per-bank triggers.

    Args:
        trigger_uer_rows: number of distinct UER rows that arms the trigger
            (3 in the paper; ablation A1 varies it).
    """

    def __init__(self, trigger_uer_rows: int = 3) -> None:
        if trigger_uer_rows < 1:
            raise ValueError("trigger_uer_rows must be >= 1")
        self.trigger_uer_rows = trigger_uer_rows
        self._banks: Dict[tuple, _BankBuffer] = {}
        self._last_timestamp = float("-inf")

    def ingest(self, record: ErrorRecord) -> BankTrigger | None:
        """Feed one event; returns a trigger when this event arms one."""
        if record.timestamp < self._last_timestamp:
            raise ValueError("collector requires non-decreasing timestamps")
        self._last_timestamp = record.timestamp
        buffer = self._banks.setdefault(record.bank_key, _BankBuffer())
        buffer.events.append(record)
        if record.error_type is ErrorType.UER:
            if record.row not in buffer.uer_row_set:
                buffer.uer_row_set.add(record.row)
                buffer.uer_rows.append(record.row)
        if (not buffer.triggered
                and len(buffer.uer_rows) >= self.trigger_uer_rows):
            buffer.triggered = True
            return BankTrigger(
                bank_key=record.bank_key,
                timestamp=record.timestamp,
                history=tuple(buffer.events),
                uer_rows=tuple(buffer.uer_rows),
            )
        return None

    def replay(self, records: Iterable[ErrorRecord]) -> Iterator[BankTrigger]:
        """Feed a whole stream, yielding triggers as they fire."""
        for record in records:
            trigger = self.ingest(record)
            if trigger is not None:
                yield trigger

    def bank_history(self, bank_key: tuple) -> Tuple[ErrorRecord, ...]:
        """Events observed so far for ``bank_key`` (time order)."""
        buffer = self._banks.get(bank_key)
        return tuple(buffer.events) if buffer else ()

    @property
    def triggered_banks(self) -> List[tuple]:
        """Banks whose trigger has fired, sorted for determinism."""
        return sorted(k for k, b in self._banks.items() if b.triggered)
