"""Streaming BMC collector: reordering ingestion with per-bank triggers.

Cordial acts when a bank reaches its *third* uncorrectable-action-required
error (Section IV-C: "We use the first three UER information for failure
pattern classification").  The collector consumes an event stream,
maintains the per-bank history visible *so far*, and yields a
:class:`BankTrigger` the moment a bank's k-th distinct UER row appears.

Field telemetry is messy: BMCs from different hosts drift apart, log
shippers batch and retry, and a restart replays a few seconds of history.
Both fleet studies the serving layer leans on (Yu et al., "Exploring
Error Bits for Memory Failure Prediction"; Wu et al., "DRAM Failure
Prediction in AIOps") call out clock skew and malformed records as
first-order operational problems.  The collector therefore tolerates
bounded disorder instead of crashing:

* events are staged in a **reorder buffer** keyed by ``(timestamp,
  sequence)`` and only *released* — applied to bank state, in order —
  once the **watermark** (``newest timestamp seen - max_skew``) passes
  them.  Any stream whose events are displaced by less than ``max_skew``
  produces exactly the decisions of the fully sorted stream;
* events older than the watermark, and malformed inputs, are quarantined
  into a bounded **dead-letter list** with a counted reason — the service
  keeps running and operators keep the evidence;
* with ``max_skew=0`` (the default) events are released immediately on
  ingestion, which preserves the historical strict-order behaviour,
  except that a timestamp regression is dead-lettered instead of raising.

The trigger carries a snapshot of the bank's history up to and including
the triggering event — exactly the information the featurizers are allowed
to see, which makes look-ahead bugs structurally impossible.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.telemetry.events import ErrorRecord, ErrorType
from repro.telemetry.metrics import MetricsRegistry

#: A released event paired with the trigger (if any) it armed.
ReleasedEvent = Tuple[ErrorRecord, Optional["BankTrigger"]]

#: Dead-letter reasons used by the collector itself.
REASON_LATE = "late"
REASON_MALFORMED = "malformed"
#: Dead-letter reason reserved for *upstream parser* failures (lines that
#: never became records).  Kept distinct from ``REASON_MALFORMED`` so a
#: corrupted input is counted exactly once: parser failures never reach
#: :meth:`BMCCollector.ingest`, and ingest failures were parseable — the
#: two quarantine paths can never both claim the same input.
REASON_CORRUPT = "corrupt"
#: Dead-letter reason used by the shard supervisor for records that
#: reproducibly kill their worker (:mod:`repro.serving.supervisor`);
#: quarantined on the coordinator's router ledger, never by a shard
#: collector, so the counting disjointness above carries over.
REASON_POISON = "poison"


@dataclass(frozen=True)
class BankTrigger:
    """Fired when a bank accumulates ``trigger_uer_rows`` distinct UER rows.

    Attributes:
        bank_key: the bank that triggered.
        timestamp: time of the triggering event.
        history: every event of this bank up to and including the trigger,
            in time order.
        uer_rows: the distinct UER rows seen so far, in occurrence order.
    """

    bank_key: tuple
    timestamp: float
    history: Tuple[ErrorRecord, ...]
    uer_rows: Tuple[int, ...]


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined input.

    Attributes:
        reason: machine-readable class (``"late"``, ``"malformed"``, ...).
        detail: human-readable explanation.
        timestamp: the event's own timestamp, when it had one.
        record: the offending record, when it parsed at all.
    """

    reason: str
    detail: str
    timestamp: Optional[float] = None
    record: Optional[ErrorRecord] = None


@dataclass
class _BankBuffer:
    events: List[ErrorRecord] = field(default_factory=list)
    uer_rows: List[int] = field(default_factory=list)
    uer_row_set: Set[int] = field(default_factory=set)
    triggered: bool = False


class BMCCollector:
    """Reordering event ingestion that fires per-bank triggers.

    :meth:`ingest` returns the list of events *released* by this
    arrival — each paired with the :class:`BankTrigger` it armed (or
    ``None``).  With ``max_skew=0`` an in-order arrival is released
    immediately, so the list is just ``[(record, trigger_or_none)]``;
    with a positive skew one arrival can release zero or many buffered
    events.  Call :meth:`flush` at end of stream to release whatever the
    watermark still holds back.

    Args:
        trigger_uer_rows: number of distinct UER rows that arms the
            trigger (3 in the paper; ablation A1 varies it).
        max_skew: tolerated timestamp disorder, in stream-time seconds.
            Events within ``max_skew`` of the newest timestamp are
            re-sequenced; older arrivals are dead-lettered as ``"late"``.
        max_pending: hard bound on the reorder buffer; beyond it the
            oldest events are force-released (counted) so memory stays
            bounded even on pathological streams.
        max_dead_letters: how many quarantined inputs to *keep* (counts
            are always exact; the list is a bounded evidence window).
        metrics: optional shared :class:`MetricsRegistry`.
        obs: optional :class:`~repro.obs.Observability` bundle; when
            attached, every quarantine lands in the run journal (with
            its counted reason) and the journal's sampled
            ingest/release stream-progress markers are fed.  Strictly
            passive — release order, triggers and dead-letter ledgers
            are identical with or without it.
    """

    def __init__(self, trigger_uer_rows: int = 3, max_skew: float = 0.0,
                 max_pending: int = 100_000, max_dead_letters: int = 1_000,
                 metrics: Optional[MetricsRegistry] = None,
                 obs=None) -> None:
        if trigger_uer_rows < 1:
            raise ValueError("trigger_uer_rows must be >= 1")
        if max_skew < 0:
            raise ValueError("max_skew must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.trigger_uer_rows = trigger_uer_rows
        self.max_skew = max_skew
        self.max_pending = max_pending
        self.max_dead_letters = max_dead_letters
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.obs = obs
        self._banks: Dict[tuple, _BankBuffer] = {}
        # Reorder buffer: heap of (timestamp, sequence, record).
        self._pending: List[Tuple[float, int, ErrorRecord]] = []
        self._max_timestamp = float("-inf")
        self.dead_letters: List[DeadLetter] = []
        self.dead_letter_counts: Dict[str, int] = {}

    # -- ingestion -----------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Events with timestamps below this are late (dead-lettered)."""
        return self._max_timestamp - self.max_skew

    @property
    def pending_count(self) -> int:
        """Events currently held in the reorder buffer."""
        return len(self._pending)

    def quarantine(self, reason: str, detail: str,
                   timestamp: Optional[float] = None,
                   record: Optional[ErrorRecord] = None) -> None:
        """Record one dead-lettered input (bounded list, exact counts).

        Exposed so upstream parsers (e.g. a lenient MCE-log reader) can
        route their failures into the same quarantine.
        """
        self.dead_letter_counts[reason] = (
            self.dead_letter_counts.get(reason, 0) + 1)
        if len(self.dead_letters) < self.max_dead_letters:
            self.dead_letters.append(DeadLetter(
                reason=reason, detail=detail, timestamp=timestamp,
                record=record))
        self.metrics.counter("collector.dead_letters",
                             labels={"reason": reason}).inc()
        if self.obs is not None:
            self.obs.journal.quarantine(
                reason, detail,
                timestamp=(timestamp
                           if timestamp is not None
                           and math.isfinite(timestamp) else None))

    def ingest(self, record: ErrorRecord) -> List[ReleasedEvent]:
        """Feed one event; returns the events it released, in order."""
        self.metrics.counter("collector.events_ingested").inc()
        if not isinstance(record, ErrorRecord):
            self.quarantine(REASON_MALFORMED,
                            f"not an ErrorRecord: {type(record).__name__}")
            return []
        if not math.isfinite(record.timestamp):
            # A NaN timestamp must never reach the reorder heap: NaN
            # compares false against everything, so one poisoned head
            # entry would silently block _drain from ever releasing
            # again — the exact conservation leak the chaos corruption
            # operator hunts for.  Quarantine it, counted exactly once.
            # The record itself stays out of the evidence list: a
            # non-finite timestamp cannot round-trip the checkpoint's
            # strict record codec.
            self.quarantine(
                REASON_MALFORMED,
                f"non-finite timestamp: {record.timestamp} "
                f"(sequence {record.sequence})")
            return []
        if record.timestamp < self.watermark:
            self.quarantine(
                REASON_LATE,
                f"timestamp {record.timestamp} behind watermark "
                f"{self.watermark}",
                timestamp=record.timestamp, record=record)
            return []
        heapq.heappush(self._pending,
                       (record.timestamp, record.sequence, record))
        if record.timestamp > self._max_timestamp:
            self._max_timestamp = record.timestamp
        if self.obs is not None:
            self.obs.journal.ingest(record.timestamp, record.sequence,
                                    len(self._pending))
        released = self._drain(self.watermark,
                               inclusive=(self.max_skew == 0))
        while len(self._pending) > self.max_pending:
            released.extend(self._release_oldest())
            self.metrics.counter("collector.forced_releases").inc()
        self.metrics.gauge("collector.reorder_depth").set(len(self._pending))
        return released

    def flush(self) -> List[ReleasedEvent]:
        """Release every buffered event (end of stream), in order."""
        released = self._drain(float("inf"), inclusive=True)
        self.metrics.gauge("collector.reorder_depth").set(0)
        return released

    def _drain(self, bound: float, inclusive: bool) -> List[ReleasedEvent]:
        released: List[ReleasedEvent] = []
        while self._pending:
            head_ts = self._pending[0][0]
            if not (head_ts < bound or (inclusive and head_ts <= bound)):
                break
            released.extend(self._release_oldest())
        return released

    def _release_oldest(self) -> List[ReleasedEvent]:
        _, _, record = heapq.heappop(self._pending)
        return [(record, self._apply(record))]

    def _apply(self, record: ErrorRecord) -> Optional[BankTrigger]:
        """Apply one released event to bank state; maybe arm a trigger."""
        self.metrics.counter("collector.events_released").inc()
        if self.obs is not None:
            self.obs.journal.release(record.timestamp, record.sequence)
        buffer = self._banks.setdefault(record.bank_key, _BankBuffer())
        buffer.events.append(record)
        if record.error_type is ErrorType.UER:
            if record.row not in buffer.uer_row_set:
                buffer.uer_row_set.add(record.row)
                buffer.uer_rows.append(record.row)
        if (not buffer.triggered
                and len(buffer.uer_rows) >= self.trigger_uer_rows):
            buffer.triggered = True
            self.metrics.counter("collector.triggers_fired").inc()
            return BankTrigger(
                bank_key=record.bank_key,
                timestamp=record.timestamp,
                history=tuple(buffer.events),
                uer_rows=tuple(buffer.uer_rows),
            )
        return None

    def replay(self, records: Iterable[ErrorRecord]) -> Iterator[BankTrigger]:
        """Feed a whole stream (then flush), yielding triggers as they fire."""
        for record in records:
            for _, trigger in self.ingest(record):
                if trigger is not None:
                    yield trigger
        for _, trigger in self.flush():
            if trigger is not None:
                yield trigger

    # -- queries -------------------------------------------------------------
    def bank_history(self, bank_key: tuple) -> Tuple[ErrorRecord, ...]:
        """Events *released* so far for ``bank_key`` (time order)."""
        buffer = self._banks.get(bank_key)
        return tuple(buffer.events) if buffer else ()

    @property
    def triggered_banks(self) -> List[tuple]:
        """Banks whose trigger has fired, sorted for determinism."""
        return sorted(k for k, b in self._banks.items() if b.triggered)

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete, JSON-ready collector state (deterministic layout)."""
        from repro.telemetry.mcelog import record_to_obj

        return {
            "trigger_uer_rows": self.trigger_uer_rows,
            "max_skew": self.max_skew,
            "max_pending": self.max_pending,
            "max_dead_letters": self.max_dead_letters,
            "max_timestamp": (None if self._max_timestamp == float("-inf")
                              else self._max_timestamp),
            "banks": [
                [[int(k) for k in key], {
                    "events": [record_to_obj(r) for r in buf.events],
                    "uer_rows": [int(row) for row in buf.uer_rows],
                    "triggered": buf.triggered,
                }]
                for key, buf in sorted(self._banks.items())
            ],
            "pending": [record_to_obj(r)
                        for _, _, r in sorted(self._pending)],
            "dead_letters": [
                {"reason": d.reason, "detail": d.detail,
                 "timestamp": d.timestamp,
                 "record": (None if d.record is None
                            else record_to_obj(d.record))}
                for d in self.dead_letters
            ],
            "dead_letter_counts": {k: self.dead_letter_counts[k]
                                   for k in sorted(self.dead_letter_counts)},
        }

    def load_state_dict(self, state: dict) -> "BMCCollector":
        """Restore state captured by :meth:`state_dict`."""
        from repro.telemetry.mcelog import record_from_obj

        self.trigger_uer_rows = int(state["trigger_uer_rows"])
        self.max_skew = float(state["max_skew"])
        self.max_pending = int(state["max_pending"])
        self.max_dead_letters = int(state["max_dead_letters"])
        self._max_timestamp = (float("-inf")
                               if state["max_timestamp"] is None
                               else float(state["max_timestamp"]))
        self._banks = {}
        for key, buf in state["banks"]:
            buffer = _BankBuffer(
                events=[record_from_obj(o) for o in buf["events"]],
                uer_rows=list(buf["uer_rows"]),
                uer_row_set=set(buf["uer_rows"]),
                triggered=bool(buf["triggered"]),
            )
            self._banks[tuple(key)] = buffer
        self._pending = [(r.timestamp, r.sequence, r)
                         for r in (record_from_obj(o)
                                   for o in state["pending"])]
        heapq.heapify(self._pending)
        self.dead_letters = [
            DeadLetter(reason=d["reason"], detail=d["detail"],
                       timestamp=d["timestamp"],
                       record=(None if d["record"] is None
                               else record_from_obj(d["record"])))
            for d in state["dead_letters"]
        ]
        self.dead_letter_counts = dict(state["dead_letter_counts"])
        return self
