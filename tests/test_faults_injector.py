"""Tests for fleet fault placement."""

import numpy as np
import pytest

from repro.faults.injector import (DEFAULT_PATTERN_WEIGHTS, FaultInjector,
                                   PlantedFault)
from repro.faults.types import FaultType
from repro.hbm.geometry import FleetGeometry


@pytest.fixture()
def injector():
    return FaultInjector(FleetGeometry())


class TestUCEPlacement:
    def test_bad_hbm_count(self, injector):
        rng = np.random.default_rng(0)
        faults = injector.plant_uce_faults(30, extra_banks_mean=1.5, rng=rng)
        hbms = {f.bank_key[:3] for f in faults}
        assert len(hbms) == 30

    def test_banks_distinct(self, injector):
        rng = np.random.default_rng(1)
        faults = injector.plant_uce_faults(40, extra_banks_mean=2.0, rng=rng)
        keys = [f.bank_key for f in faults]
        assert len(keys) == len(set(keys))

    def test_clustering_per_hbm(self, injector):
        rng = np.random.default_rng(2)
        faults = injector.plant_uce_faults(200, extra_banks_mean=1.55,
                                           rng=rng)
        per_hbm = len(faults) / 200
        assert 2.0 < per_hbm < 3.2  # 1 + Poisson(1.55)

    def test_spill_prefers_same_bank_group(self, injector):
        rng = np.random.default_rng(3)
        faults = injector.plant_uce_faults(300, extra_banks_mean=1.55,
                                           rng=rng)
        bg_keys = {f.bank_key[:7] for f in faults}
        bank_keys = {f.bank_key for f in faults}
        # strong clustering: clearly fewer bank groups than banks
        assert len(bg_keys) < 0.85 * len(bank_keys)

    def test_pattern_mix_matches_weights(self, injector):
        rng = np.random.default_rng(4)
        faults = injector.plant_uce_faults(400, extra_banks_mean=1.55,
                                           rng=rng)
        share = (sum(f.fault_type is FaultType.SWD_FAULT for f in faults)
                 / len(faults))
        assert abs(share - DEFAULT_PATTERN_WEIGHTS[FaultType.SWD_FAULT]) < 0.08

    def test_valid_coordinates(self, injector):
        rng = np.random.default_rng(5)
        fleet = FleetGeometry()
        faults = injector.plant_uce_faults(50, extra_banks_mean=1.0, rng=rng)
        limits = (fleet.nodes, fleet.npus_per_node, fleet.hbms_per_npu,
                  fleet.hbm.sids, fleet.hbm.channels,
                  fleet.hbm.pseudo_channels, fleet.hbm.bank_groups,
                  fleet.hbm.banks)
        for fault in faults:
            for value, limit in zip(fault.bank_key, limits):
                assert 0 <= value < limit

    def test_zero_hbms(self, injector):
        rng = np.random.default_rng(6)
        assert injector.plant_uce_faults(0, 1.0, rng) == []


class TestCellPlacement:
    def test_count_and_type(self, injector):
        rng = np.random.default_rng(0)
        anchors = injector.plant_uce_faults(20, 1.0, rng)
        cells = injector.plant_cell_faults(100, anchors, rng)
        assert len(cells) == 100
        assert all(f.fault_type is FaultType.CELL_FAULT for f in cells)
        assert all(not f.realization.has_uer for f in cells)

    def test_avoids_uer_banks(self, injector):
        rng = np.random.default_rng(1)
        anchors = injector.plant_uce_faults(50, 1.5, rng)
        cells = injector.plant_cell_faults(300, anchors, rng)
        anchor_keys = {f.bank_key for f in anchors}
        assert not anchor_keys & {f.bank_key for f in cells}

    def test_cell_banks_distinct(self, injector):
        rng = np.random.default_rng(2)
        cells = injector.plant_cell_faults(200, [], rng)
        keys = [f.bank_key for f in cells]
        assert len(set(keys)) == len(keys)

    def test_coloc_times_cluster_near_anchor_first_uer(self, injector):
        rng = np.random.default_rng(3)
        anchors = injector.plant_uce_faults(10, 1.0, rng)
        # force full co-location to observe the retiming
        injector.coloc_probs = {"same_bg": 0.99}
        cells = injector.plant_cell_faults(30, anchors, rng)
        anchors_by_bg = {}
        for a in anchors:
            anchors_by_bg.setdefault(a.bank_key[:7], []).append(a)
        matched = 0
        for cell in cells:
            candidates = anchors_by_bg.get(cell.bank_key[:7])
            if not candidates:
                continue
            matched += 1
            windows = [(a.realization.uer_row_sequence[0][0] - 0.26 * 86400,
                        a.realization.uer_row_sequence[0][0] + 1.01 * 86400)
                       for a in candidates]
            for event in cell.realization.events:
                assert any(lo <= event.time <= hi for lo, hi in windows)
        assert matched > 10


class TestValidation:
    def test_pattern_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            FaultInjector(FleetGeometry(),
                          pattern_weights={FaultType.SWD_FAULT: 0.5})

    def test_coloc_probs_must_stay_below_one(self):
        with pytest.raises(ValueError):
            FaultInjector(FleetGeometry(),
                          coloc_probs={"same_bg": 0.7, "same_npu": 0.5})

    def test_negative_counts_rejected(self):
        injector = FaultInjector(FleetGeometry())
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            injector.plant_uce_faults(-1, 1.0, rng)
        with pytest.raises(ValueError):
            injector.plant_cell_faults(-1, [], rng)
