"""Integration tests: the full Cordial pipeline on a small fleet."""

import numpy as np
import pytest

from repro.core.classifier import FailurePatternClassifier, make_model
from repro.core.crossrow import CrossRowPredictor
from repro.core.pipeline import (Cordial, collect_snapshots, collect_triggers,
                                 evaluate_neighbor_baseline)
from repro.faults.types import FailurePattern


class TestTriggersAndSnapshots:
    def test_triggers_have_three_uer_rows(self, small_dataset):
        triggers = collect_triggers(small_dataset, small_dataset.uer_banks)
        assert triggers
        for trigger in triggers[:30]:
            assert len(trigger.uer_rows) == 3
            assert trigger.history[-1].timestamp == trigger.timestamp

    def test_triggers_sorted_by_time(self, small_dataset):
        triggers = collect_triggers(small_dataset, small_dataset.uer_banks)
        times = [t.timestamp for t in triggers]
        assert times == sorted(times)

    def test_snapshots_extend_triggers(self, small_dataset):
        triggers = collect_triggers(small_dataset, small_dataset.uer_banks)
        bank = triggers[0].bank_key
        snapshots = collect_snapshots(small_dataset, bank, min_uer_rows=3)
        assert snapshots[0].uer_rows == triggers[0].uer_rows[:3]
        n_rows = len(small_dataset.bank_truth[bank].uer_row_sequence)
        assert len(snapshots) == n_rows - 2
        for a, b in zip(snapshots, snapshots[1:]):
            assert len(b.uer_rows) == len(a.uer_rows) + 1
            assert b.timestamp >= a.timestamp


class TestMakeModel:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_model("CatBoost")

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            make_model("Random Forest", task="segmentation")


@pytest.fixture(scope="module")
def fitted_cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="Random Forest", random_state=0)
    model.fit(small_dataset, train)
    return model


class TestCordialEndToEnd:
    def test_fit_then_evaluate(self, small_dataset, bank_split,
                               fitted_cordial):
        _, test = bank_split
        evaluation = fitted_cordial.evaluate(small_dataset, test)
        assert evaluation.n_test_triggers > 5
        assert 0 < evaluation.n_crossrow_banks <= evaluation.n_test_triggers
        assert 0.0 <= evaluation.pattern_weighted.f1 <= 1.0
        assert evaluation.icr.total_rows > 0
        assert 0.0 <= evaluation.icr.icr <= 1.0

    def test_pattern_classification_beats_majority(self, small_dataset,
                                                   bank_split,
                                                   fitted_cordial):
        _, test = bank_split
        evaluation = fitted_cordial.evaluate(small_dataset, test)
        supports = {p: s.support
                    for p, s in evaluation.pattern_scores.items()}
        majority = max(supports.values()) / max(1, sum(supports.values()))
        assert evaluation.pattern_weighted.recall > majority - 0.05

    def test_single_row_is_best_classified(self, small_dataset, bank_split,
                                           fitted_cordial):
        """Table III shape: the single-row class scores highest."""
        _, test = bank_split
        evaluation = fitted_cordial.evaluate(small_dataset, test)
        scores = evaluation.pattern_scores
        single = scores[FailurePattern.SINGLE_ROW].f1
        assert single >= scores[FailurePattern.DOUBLE_ROW].f1

    def test_beats_neighbor_baseline_on_icr(self, small_dataset, bank_split,
                                            fitted_cordial):
        """Table IV shape: Cordial's ICR exceeds the reactive baseline."""
        _, test = bank_split
        evaluation = fitted_cordial.evaluate(small_dataset, test)
        baseline = evaluate_neighbor_baseline(small_dataset, test)
        assert evaluation.icr.icr > baseline.icr.icr
        assert evaluation.block_scores.f1 > baseline.block_scores.f1

    def test_evaluate_before_fit_raises(self, small_dataset, bank_split):
        _, test = bank_split
        with pytest.raises(RuntimeError):
            Cordial().evaluate(small_dataset, test)

    def test_fit_requires_triggering_banks(self, small_dataset):
        # CE-only banks never trigger
        ce_only = [k for k, t in small_dataset.bank_truth.items()
                   if not t.uer_row_sequence][:5]
        with pytest.raises(ValueError):
            Cordial().fit(small_dataset, ce_only)


class TestComponentsStandalone:
    def test_classifier_roundtrip(self, small_dataset, bank_split):
        train, test = bank_split
        triggers = collect_triggers(small_dataset, train)
        histories = [t.history for t in triggers]
        patterns = [small_dataset.bank_truth[t.bank_key].pattern
                    for t in triggers]
        clf = FailurePatternClassifier("LightGBM", random_state=0)
        clf.fit(histories, patterns)
        predictions = clf.predict_many(histories[:10])
        assert all(isinstance(p, FailurePattern) for p in predictions)
        proba = clf.predict_proba_many(histories[:10])
        stacked = np.column_stack([proba[p] for p in proba])
        assert np.allclose(stacked.sum(axis=1), 1.0)
        importances = clf.feature_importances
        assert len(importances) == clf.featurizer.n_features

    def test_crossrow_predictor_flags_blocks(self, small_dataset,
                                             bank_split):
        train, _ = bank_split
        predictor = CrossRowPredictor("XGBoost", random_state=0)
        xs, ys = [], []
        for trigger in collect_triggers(small_dataset, train):
            truth = small_dataset.bank_truth[trigger.bank_key]
            if not truth.pattern.is_aggregation:
                continue
            X, y = predictor.build_samples(
                trigger.history, trigger.uer_rows[-1], trigger.timestamp,
                truth.future_uer_rows(trigger.timestamp))
            xs.append(X)
            ys.append(y)
        predictor.fit_samples(np.vstack(xs), np.concatenate(ys))
        trigger = collect_triggers(small_dataset, train)[0]
        prediction = predictor.predict(trigger.history,
                                       trigger.uer_rows[-1])
        assert prediction.probabilities.shape == (16,)
        assert ((prediction.probabilities >= 0)
                & (prediction.probabilities <= 1)).all()
        rows = prediction.rows_to_isolate()
        assert len(rows) == 8 * prediction.flagged.sum()

    def test_crossrow_rejects_single_class(self):
        predictor = CrossRowPredictor()
        X = np.zeros((32, predictor.featurizer.n_features))
        with pytest.raises(ValueError):
            predictor.fit_samples(X, np.zeros(32))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            CrossRowPredictor().predict([], 0)
