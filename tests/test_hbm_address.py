"""Unit and property tests for device addresses and micro-levels."""

import pytest
from hypothesis import given, strategies as st

from repro.hbm.address import PACKED_ADDRESS_BITS, DeviceAddress, MicroLevel
from repro.hbm.geometry import FleetGeometry


def make_address(**overrides):
    fields = dict(node=3, npu=1, hbm=2, sid=1, channel=5, pseudo_channel=0,
                  bank_group=2, bank=3, row=12345, column=17)
    fields.update(overrides)
    return DeviceAddress(**fields)


address_strategy = st.builds(
    DeviceAddress,
    node=st.integers(0, 1279), npu=st.integers(0, 7),
    hbm=st.integers(0, 7), sid=st.integers(0, 1),
    channel=st.integers(0, 7), pseudo_channel=st.integers(0, 1),
    bank_group=st.integers(0, 3), bank=st.integers(0, 3),
    row=st.integers(0, 32767), column=st.integers(0, 127),
)


class TestKeys:
    def test_paper_levels_order(self):
        labels = [level.label for level in MicroLevel.paper_levels()]
        assert labels == ["NPU", "HBM", "SID", "PS-CH", "BG", "Bank", "Row"]

    def test_key_lengths_increase(self):
        address = make_address()
        lengths = [len(address.key(level))
                   for level in MicroLevel.paper_levels()]
        assert lengths == sorted(lengths)
        assert lengths[0] == 2 and lengths[-1] == 9

    def test_keys_are_prefixes(self):
        address = make_address()
        row_key = address.key(MicroLevel.ROW)
        for level in MicroLevel.paper_levels():
            key = address.key(level)
            assert row_key[:len(key)] == key

    def test_bank_key_matches_level(self):
        address = make_address()
        assert address.bank_key() == address.key(MicroLevel.BANK)

    def test_same_bank_different_rows_share_bank_key(self):
        a = make_address(row=1)
        b = a.with_cell(row=2, column=5)
        assert a.bank_key() == b.bank_key()
        assert a.key(MicroLevel.ROW) != b.key(MicroLevel.ROW)


class TestValidate:
    def test_valid_address_passes(self):
        make_address().validate(FleetGeometry())

    @pytest.mark.parametrize("field,value", [
        ("node", 1280), ("npu", 8), ("hbm", 8), ("sid", 2),
        ("channel", 8), ("pseudo_channel", 2), ("bank_group", 4),
        ("bank", 4), ("row", 32768), ("column", 128),
    ])
    def test_out_of_range_fails(self, field, value):
        with pytest.raises(ValueError):
            make_address(**{field: value}).validate(FleetGeometry())


class TestPacking:
    @given(address_strategy)
    def test_pack_unpack_roundtrip(self, address):
        assert DeviceAddress.unpack(address.pack()) == address

    @given(address_strategy)
    def test_pack_fits_declared_bits(self, address):
        assert 0 <= address.pack() < (1 << PACKED_ADDRESS_BITS)

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DeviceAddress.unpack(-1)
        with pytest.raises(ValueError):
            DeviceAddress.unpack(1 << PACKED_ADDRESS_BITS)

    def test_pack_rejects_oversized_field(self):
        address = make_address(node=1 << 14)
        with pytest.raises(ValueError):
            address.pack()

    @given(address_strategy, address_strategy)
    def test_distinct_addresses_pack_distinctly(self, a, b):
        if a != b:
            assert a.pack() != b.pack()
