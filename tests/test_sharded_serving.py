"""Fleet-scale sharded serving: bit-identical to one big service.

Locks down the contract of ``repro.serving``:

(a) shard-count invariance — decisions, ICR, stats, and deterministic
    metrics from a fleet of any size equal the single-service run, byte
    for byte (``n_shards`` is a pure wall-clock knob);
(b) worker-count invariance — spawned process workers change nothing
    either (``n_jobs`` follows the ``ml/parallel.py`` contract);
(c) checkpoint/restart and *re-sharded* restore (save at 4 shards, load
    onto 2) resume bit-identically;
(d) the router quarantines exactly what a single collector would;
(e) fleet-checkpoint corruption surfaces through the same typed error
    taxonomy as single-service checkpoints;
and the serving-path bugfixes that shipped with the engine: out-of-range
``checkpoint_at`` raises instead of silently never firing, report
dead-letter histograms are key-sorted, ``bounded_shuffle`` rejects
non-finite timestamps, and the CLI validates ``--shards`` / ``--jobs`` /
``--checkpoint-at``.
"""

import json
import math
import os

import pytest

from repro.core.online import CordialService
from repro.core.persistence import (CheckpointCorruptionError,
                                    ModelPersistenceError)
from repro.core.pipeline import Cordial
from repro.experiments import runner
from repro.experiments.serve import bounded_shuffle, build_report, serve_stream
from repro.hbm.address import DeviceAddress
from repro.serving import (FleetRouter, ShardedCordialEngine,
                           load_fleet_manifest, merge_decisions,
                           serve_stream_sharded, shard_file_name,
                           shard_of_bank)
from repro.telemetry.events import ErrorRecord, ErrorType

MAX_SKEW = 600.0


def rec(seq, t, row, bank=0, error_type=ErrorType.CE):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=bank,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    stream = [r for r in small_dataset.store if r.bank_key in test_set]
    return bounded_shuffle(stream, MAX_SKEW, seed=5)


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


@pytest.fixture(scope="module")
def baseline(cordial, test_stream):
    service = CordialService(cordial, max_skew=MAX_SKEW)
    service, decisions = serve_stream(service, test_stream)
    return service, decisions


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


def run_fleet(cordial, stream, n_shards, n_jobs=1, **kwargs):
    engine = ShardedCordialEngine(cordial, n_shards, n_jobs=n_jobs,
                                  max_skew=MAX_SKEW, **kwargs)
    try:
        for record in stream:
            engine.submit(record)
        return engine.finish()
    finally:
        engine.close()


class TestShardCountInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_fleet_matches_single_service(self, cordial, test_stream, truth,
                                          baseline, n_shards):
        """(a): the shard count never shows up in the results."""
        expect_service, expect = baseline
        outcome = run_fleet(cordial, test_stream, n_shards)

        assert decisions_json(outcome.decisions) == decisions_json(expect)
        assert outcome.service.coverage(truth) == \
            expect_service.coverage(truth)
        assert outcome.stats == expect_service.stats.to_dict()
        plain = expect_service.metrics.as_dict(include_histograms=False)
        assert outcome.metrics["counters"] == plain["counters"]
        # The merged service is the real thing: full state parity, modulo
        # the metrics block (the merge keeps counters only — gauges and
        # histograms are wall-clock, not shard-count-invariant).
        merged_state = outcome.service.state_dict()
        expect_state = expect_service.state_dict()
        assert merged_state["metrics"]["counters"] == \
            expect_state["metrics"]["counters"]
        merged_state.pop("metrics")
        expect_state.pop("metrics")
        assert json.dumps(merged_state, sort_keys=True) == \
            json.dumps(expect_state, sort_keys=True)

    def test_decision_sequence_is_not_exported(self, baseline):
        """The merge key rides on the dataclass but stays out of the
        serialised decision (digests are unchanged by this PR)."""
        _, expect = baseline
        assert expect, "stream produced no decisions"
        assert all("sequence" not in d.to_obj() for d in expect)
        assert all(d.sequence >= 0 for d in expect)

    def test_process_workers_change_nothing(self, cordial, test_stream,
                                            baseline):
        """(b): spawned workers are a pure wall-clock knob."""
        _, expect = baseline
        outcome = run_fleet(cordial, test_stream, 4, n_jobs=2)
        assert decisions_json(outcome.decisions) == decisions_json(expect)


class TestFleetCheckpoint:
    def test_checkpoint_restart_resumes_identically(self, cordial,
                                                    test_stream, baseline,
                                                    tmp_path):
        """(c): the fleet crash/restart path is invisible in the output."""
        expect_service, expect = baseline
        engine = ShardedCordialEngine(cordial, 2, max_skew=MAX_SKEW)
        try:
            engine, outcome = serve_stream_sharded(
                engine, test_stream,
                checkpoint_dir=str(tmp_path / "fleet.ckpt"),
                checkpoint_at=len(test_stream) // 2)
        finally:
            engine.close()
        assert engine.epoch == 1  # the restart really happened
        assert decisions_json(outcome.decisions) == decisions_json(expect)
        assert outcome.stats == expect_service.stats.to_dict()

    def test_resharded_restore(self, cordial, test_stream, baseline,
                               tmp_path):
        """(c): a fleet saved at 4 shards restores onto 2, bit-identically."""
        _, expect = baseline
        directory = str(tmp_path / "reshard.ckpt")
        half = len(test_stream) // 2

        engine = ShardedCordialEngine(cordial, 4, max_skew=MAX_SKEW)
        try:
            for record in test_stream[:half]:
                engine.submit(record)
            engine.checkpoint(directory)
            segments = engine.drain_segments()
        finally:
            engine.close()

        manifest = load_fleet_manifest(directory)
        assert manifest["n_shards"] == 4
        assert all(os.path.exists(os.path.join(directory, name))
                   for name in manifest["shards"])

        successor = ShardedCordialEngine.restore(directory, n_shards=2)
        try:
            for record in test_stream[half:]:
                successor.submit(record)
            outcome = successor.finish()
        finally:
            successor.close()
        decisions = merge_decisions(segments + [outcome.decisions])
        assert decisions_json(decisions) == decisions_json(expect)

    def test_corruption_taxonomy(self, cordial, test_stream, tmp_path):
        """(e): damage is CheckpointCorruptionError, honest version skew
        is ModelPersistenceError — same taxonomy as single-service."""
        directory = str(tmp_path / "fleet.ckpt")
        engine = ShardedCordialEngine(cordial, 2, max_skew=MAX_SKEW)
        try:
            for record in test_stream[:40]:
                engine.submit(record)
            manifest_path = engine.checkpoint(directory)
        finally:
            engine.close()

        original = open(manifest_path, "rb").read()

        with open(manifest_path, "wb") as handle:
            handle.write(original[:len(original) // 2])
        with pytest.raises(CheckpointCorruptionError):
            load_fleet_manifest(directory)

        document = json.loads(original)
        document["version"] = 99
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(ModelPersistenceError):
            load_fleet_manifest(directory)

        document["version"] = 1
        document["shards"][0] = "/etc/passwd"
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointCorruptionError):
            load_fleet_manifest(directory)

        with open(manifest_path, "wb") as handle:
            handle.write(original)
        os.remove(os.path.join(directory, shard_file_name(0)))
        with pytest.raises(CheckpointCorruptionError):
            load_fleet_manifest(directory)


class TestRouter:
    def test_shard_assignment_is_stable_and_total(self):
        keys = [(0, 0, 0, 0, 0, 0, 0, b) for b in range(32)]
        for n_shards in (1, 2, 4, 7):
            shards = [shard_of_bank(k, n_shards) for k in keys]
            assert shards == [shard_of_bank(k, n_shards) for k in keys]
            assert all(0 <= s < n_shards for s in shards)
        # More than one shard actually receives traffic at n=4.
        assert len({shard_of_bank(k, 4) for k in keys}) > 1

    def test_router_quarantines_like_a_collector(self, cordial):
        """(d): malformed / non-finite / hopelessly-late records fall
        into the router's ledger with the collector's exact reasons."""
        service = CordialService(cordial, max_skew=10.0)
        router = FleetRouter(4, max_skew=10.0)
        stream = [rec(0, 1000.0, 1), None, rec(1, float("nan"), 2),
                  rec(2, 1.0, 3), rec(3, 1001.0, 4)]
        for item in stream:
            service.ingest(item)
            router.route(item)
        assert router.dead_letter_counts == \
            service.collector.dead_letter_counts
        assert router.dead_letter_counts == {"late": 1, "malformed": 2}

    def test_routed_records_never_requarantined(self, cordial, test_stream):
        """Records the router accepts pass their shard collector: the
        fleet dead-letter ledger lives on the coordinator alone."""
        outcome = run_fleet(cordial, test_stream, 4)
        fleet_dead = outcome.service.collector.dead_letter_counts
        plain = CordialService(cordial, max_skew=MAX_SKEW)
        for record in test_stream:
            plain.ingest(record)
        plain.flush()
        assert fleet_dead == plain.collector.dead_letter_counts


class TestServingPathFixes:
    def test_checkpoint_at_outside_stream_raises(self, cordial, test_stream):
        service = CordialService(cordial, max_skew=MAX_SKEW)
        with pytest.raises(ValueError, match="never fire"):
            serve_stream(service, test_stream[:10],
                         checkpoint_path="unused.ckpt.json",
                         checkpoint_at=11)
        with pytest.raises(ValueError, match="never fire"):
            serve_stream(service, test_stream[:10],
                         checkpoint_path="unused.ckpt.json",
                         checkpoint_at=0)

    def test_sharded_checkpoint_at_outside_stream_raises(self, cordial,
                                                         test_stream,
                                                         tmp_path):
        engine = ShardedCordialEngine(cordial, 2, max_skew=MAX_SKEW)
        try:
            with pytest.raises(ValueError, match="never fire"):
                serve_stream_sharded(engine, test_stream[:10],
                                     checkpoint_dir=str(tmp_path / "c"),
                                     checkpoint_at=11)
        finally:
            engine.close()

    def test_report_dead_letters_are_key_sorted(self, cordial):
        service = CordialService(cordial, max_skew=10.0)
        service.ingest(rec(0, 1000.0, 1))
        service.ingest(None)          # "malformed" inserted first
        service.ingest(rec(1, 1.0, 2))  # then "late"
        service.flush()
        report = build_report(service, [], {})
        histogram = report["summary"]["events_dead_lettered"]
        assert list(histogram) == sorted(histogram)
        assert histogram == {"late": 1, "malformed": 1}

    def test_bounded_shuffle_rejects_non_finite_timestamps(self):
        stream = [rec(0, 1.0, 1), rec(1, float("nan"), 2),
                  rec(2, math.inf, 3)]
        with pytest.raises(ValueError, match="non-finite"):
            bounded_shuffle(stream, 60.0, seed=1)
        # Skew 0 is the identity and touches no arithmetic.
        identity = bounded_shuffle(stream, 0.0, seed=1)
        assert [id(r) for r in identity] == [id(r) for r in stream]


class TestCLI:
    def test_serve_replay_with_shards_smoke(self, tmp_path):
        output = tmp_path / "serve_metrics.json"
        code = runner.main([
            "serve-replay", "--scale", "0.08", "--seed", "11",
            "--max-skew", "600", "--shuffle", "--shards", "2",
            "--checkpoint", str(tmp_path / "fleet.ckpt"),
            "--output", str(output),
        ])
        assert code == 0
        report = json.loads(output.read_text())
        assert report["config"]["shards"] == 2
        assert report["summary"]["events_ingested"] > 0
        assert (tmp_path / "fleet.ckpt" / "manifest.json").exists()
        assert "collector.events_ingested" in report["metrics"]["counters"]

    @pytest.mark.parametrize("argv", [
        ["serve-replay", "--shards", "0"],
        ["serve-replay", "--checkpoint-at", "0"],
        ["serve-replay", "--jobs", "-1"],
        ["chaos", "--shards", "0"],
    ])
    def test_bad_counts_are_rejected_by_the_parser(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(argv)
        assert excinfo.value.code == 2
