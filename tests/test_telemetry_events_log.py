"""Tests for error records and MCE-log serialisation."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.hbm.address import DeviceAddress
from repro.hbm.ecc import ECCOutcome
from repro.telemetry.events import Detector, ErrorRecord, ErrorType
from repro.telemetry.mcelog import (MCELogError, iter_mce_log,
                                    iter_mce_log_lenient, read_mce_log,
                                    write_mce_log)


def make_record(seq=0, t=1.0, row=5, error_type=ErrorType.CE):
    address = DeviceAddress(node=1, npu=2, hbm=3, sid=0, channel=4,
                            pseudo_channel=1, bank_group=2, bank=3,
                            row=row, column=9)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


class TestErrorRecord:
    def test_ordering_by_time_then_sequence(self):
        a = make_record(seq=0, t=1.0)
        b = make_record(seq=1, t=1.0)
        c = make_record(seq=0, t=2.0)
        assert a < b < c

    def test_type_conversions(self):
        assert ErrorType.from_ecc(ECCOutcome.UER) is ErrorType.UER
        assert ErrorType.UEO.to_ecc() is ECCOutcome.UEO
        assert ErrorType.CE.is_uncorrectable is False
        assert ErrorType.UER.is_uncorrectable is True

    def test_validation(self):
        with pytest.raises(ValueError):
            make_record(t=-1.0)
        with pytest.raises(ValueError):
            ErrorRecord(timestamp=0.0, sequence=0,
                        address=make_record().address,
                        error_type=ErrorType.CE, bit_count=0)


class TestMCELog:
    def _records(self, n=5):
        return [make_record(seq=i, t=float(i), row=i,
                            error_type=list(ErrorType)[i % 3])
                for i in range(n)]

    def test_roundtrip_stream(self):
        records = self._records()
        buffer = io.StringIO()
        assert write_mce_log(records, buffer) == len(records)
        buffer.seek(0)
        loaded = read_mce_log(buffer)
        assert loaded == records
        for original, parsed in zip(records, loaded):
            assert parsed.address == original.address
            assert parsed.error_type == original.error_type

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "events.mce"
        records = self._records(7)
        write_mce_log(records, path)
        assert read_mce_log(path) == records

    def test_iter_is_lazy_and_ordered(self, tmp_path):
        path = tmp_path / "events.mce"
        write_mce_log(self._records(10), path)
        timestamps = [r.timestamp for r in iter_mce_log(path)]
        assert timestamps == sorted(timestamps)

    def test_empty_file_rejected(self):
        with pytest.raises(MCELogError, match="header"):
            read_mce_log(io.StringIO(""))

    def test_bad_header_rejected(self):
        with pytest.raises(MCELogError):
            read_mce_log(io.StringIO('{"format": "something-else"}\n'))

    def test_bad_version_rejected(self):
        with pytest.raises(MCELogError, match="version"):
            read_mce_log(io.StringIO(
                '{"format": "cordial-mce-log", "version": 99}\n'))

    def test_malformed_line_reports_line_number(self):
        buffer = io.StringIO()
        write_mce_log(self._records(2), buffer)
        text = buffer.getvalue() + "not json\n"
        with pytest.raises(MCELogError, match="line 4"):
            read_mce_log(io.StringIO(text))

    def test_address_mismatch_detected(self):
        buffer = io.StringIO()
        write_mce_log(self._records(1), buffer)
        lines = buffer.getvalue().splitlines()
        tampered = lines[1].replace('"row": 0', '"row": 1')
        assert tampered != lines[1]
        text = lines[0] + "\n" + tampered + "\n"
        with pytest.raises(MCELogError, match="disagree"):
            read_mce_log(io.StringIO(text))

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        write_mce_log(self._records(2), buffer)
        text = buffer.getvalue().replace("\n", "\n\n")
        assert len(read_mce_log(io.StringIO(text))) == 2

    @given(st.integers(0, 2 ** 20))
    def test_sequence_values_roundtrip(self, seq):
        buffer = io.StringIO()
        write_mce_log([make_record(seq=seq)], buffer)
        buffer.seek(0)
        assert read_mce_log(buffer)[0].sequence == seq


class TestLenientReader:
    def _records(self, n=3):
        return [make_record(seq=i, t=float(i), row=i) for i in range(n)]

    def _log_text(self, records):
        buffer = io.StringIO()
        write_mce_log(records, buffer)
        return buffer.getvalue()

    def test_reads_clean_log_like_strict_reader(self):
        records = self._records()
        text = self._log_text(records)
        assert list(iter_mce_log_lenient(io.StringIO(text))) == records

    def test_malformed_lines_routed_to_callback(self):
        records = self._records()
        lines = self._log_text(records).splitlines()
        lines[2] = "{not json"
        text = "\n".join(lines) + "\n"
        skipped = []
        loaded = list(iter_mce_log_lenient(
            io.StringIO(text),
            on_malformed=lambda line_no, raw, err: skipped.append(line_no)))
        assert loaded == [records[0], records[2]]
        assert skipped == [3]  # 1-based; line 1 is the header

    def test_malformed_lines_skipped_silently_without_callback(self):
        records = self._records()
        lines = self._log_text(records).splitlines()
        lines[1] = "garbage"
        text = "\n".join(lines) + "\n"
        assert list(iter_mce_log_lenient(io.StringIO(text))) == records[1:]

    def test_bad_header_still_raises(self):
        with pytest.raises(MCELogError, match="header"):
            list(iter_mce_log_lenient(io.StringIO("not a header\n")))

    def test_feeds_collector_quarantine(self):
        from repro.telemetry.collector import BMCCollector

        records = self._records()
        lines = self._log_text(records).splitlines()
        lines[2] = "{broken"
        collector = BMCCollector()
        loaded = list(iter_mce_log_lenient(
            io.StringIO("\n".join(lines) + "\n"),
            on_malformed=lambda line_no, raw, err:
                collector.quarantine("malformed", f"line {line_no}: {err}")))
        assert len(loaded) == 2
        assert collector.dead_letter_counts == {"malformed": 1}


class TestExactlyOnceAccounting:
    """A damaged input dies exactly once, in exactly one ledger.

    The parser owns structurally corrupt *lines* (reason ``"corrupt"``),
    the collector owns semantically bad *records* (reason
    ``"malformed"``); no input may ever be counted in both, or twice in
    either.
    """

    def _log_text(self, records):
        buffer = io.StringIO()
        write_mce_log(records, buffer)
        return buffer.getvalue()

    def test_quarantining_reader_counts_corrupt_exactly_once(self):
        from repro.telemetry.collector import BMCCollector
        from repro.telemetry.mcelog import iter_mce_log_quarantining

        records = [make_record(seq=i, t=float(i), row=i) for i in range(4)]
        lines = self._log_text(records).splitlines()
        lines[2] = "{broken json"
        lines[4] = '{"ts": "not-a-number"}'
        collector = BMCCollector()
        loaded = []
        for record in iter_mce_log_quarantining(
                io.StringIO("\n".join(lines) + "\n"), collector):
            loaded.append(record)
            collector.ingest(record)
        collector.flush()
        assert loaded == [records[0], records[2]]
        # Two dead lines under "corrupt", no leakage into "malformed".
        assert collector.dead_letter_counts == {"corrupt": 2}
        # The conservation identity holds with parser kills included:
        # every body line is a release, a corrupt line, or buffered.
        released = collector.metrics.counter_value(
            "collector.events_released")
        ingested = collector.metrics.counter_value(
            "collector.events_ingested")
        assert ingested == len(loaded)
        assert (len(lines) - 1  # header
                == released + collector.dead_letter_counts["corrupt"]
                + collector.pending_count)

    def test_nan_timestamp_is_a_parse_error(self):
        # json.loads accepts the bare NaN literal; the parser must not.
        text = self._log_text([make_record(seq=0, t=1.0)])
        text = text.replace('"ts": 1.0', '"ts": NaN')
        assert '"ts": NaN' in text
        with pytest.raises(MCELogError, match="non-finite"):
            read_mce_log(io.StringIO(text))
        dead = []
        assert list(iter_mce_log_lenient(
            io.StringIO(text),
            on_malformed=lambda n, raw, err: dead.append(n))) == []
        assert dead == [2]  # exactly once

    def test_nan_record_quarantined_without_poisoning_the_buffer(self):
        # Regression: a NaN timestamp compares False against the
        # watermark *and* against every heap neighbour, so before the
        # ingest guard it would sit at the reorder-heap head forever and
        # flush() would release nothing.
        import math

        from repro.telemetry.collector import BMCCollector

        collector = BMCCollector(max_skew=100.0)
        good = [make_record(seq=i, t=float(i), row=i,
                            error_type=ErrorType.CE) for i in range(3)]
        collector.ingest(good[0])
        nan_record = ErrorRecord(timestamp=math.nan, sequence=99,
                                 address=good[0].address,
                                 error_type=ErrorType.CE)
        assert collector.ingest(nan_record) == []
        for record in good[1:]:
            collector.ingest(record)
        released = list(collector.flush())
        # Every good event still comes out; the NaN died exactly once.
        assert [r.sequence for r, _ in released] == [0, 1, 2]
        assert collector.dead_letter_counts == {"malformed": 1}
        assert collector.pending_count == 0

    def test_journal_quarantines_agree_with_dead_letter_ledger(self):
        # The obs journal is a second witness of every quarantine; it
        # must agree with the dead-letter ledger exactly — same total,
        # same per-reason histogram, nothing double-journalled.
        import math

        from repro.obs import FakeClock, Observability, SpanTracer
        from repro.telemetry.collector import BMCCollector

        obs = Observability(tracer=SpanTracer(clock=FakeClock()))
        collector = BMCCollector(max_skew=5.0, obs=obs)
        collector.ingest(make_record(seq=0, t=100.0))
        # Late: far behind the watermark once it advances.
        collector.ingest(make_record(seq=1, t=200.0))
        collector.ingest(make_record(seq=2, t=10.0))
        # Malformed: NaN timestamp and a non-record.
        collector.ingest(ErrorRecord(timestamp=math.nan, sequence=3,
                                     address=make_record().address,
                                     error_type=ErrorType.CE))
        collector.ingest("not a record")
        collector.flush()

        quarantined = [e for e in obs.journal.events
                       if e["type"] == "quarantine"]
        by_reason = {}
        for event in quarantined:
            by_reason[event["reason"]] = (
                by_reason.get(event["reason"], 0) + 1)
        assert by_reason == dict(collector.dead_letter_counts)
        assert (obs.journal.summary()["counts_by_type"]["quarantine"]
                == sum(collector.dead_letter_counts.values()))
        # The NaN timestamp was scrubbed before journalling: the journal
        # stays pure JSON even when the dead input was not.
        assert all(e["event_timestamp"] is None
                   or math.isfinite(e["event_timestamp"])
                   for e in quarantined)

