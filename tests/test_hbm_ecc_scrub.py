"""Tests for the ECC model and the patrol scrubber."""

import math

import numpy as np
import pytest

from repro.hbm.ecc import ECCConfig, ECCModel, ECCOutcome
from repro.hbm.scrub import PatrolScrubber


class TestECCModel:
    def test_single_bit_is_ce(self):
        model = ECCModel()
        rng = np.random.default_rng(0)
        assert model.classify_bits(1, rng) is ECCOutcome.CE

    def test_multi_bit_is_uncorrectable(self):
        model = ECCModel()
        rng = np.random.default_rng(0)
        outcome = model.classify_bits(3, rng)
        assert outcome.is_uncorrectable

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            ECCModel().classify_bits(0, np.random.default_rng(0))

    def test_ueo_probability_closed_form(self):
        config = ECCConfig(scrub_period_s=1000.0, access_rate_hz=0.001)
        model = ECCModel(config)
        x = 0.001 * 1000.0
        expected = (1 - math.exp(-x)) / x
        assert model.ueo_probability() == pytest.approx(expected)

    def test_ueo_probability_no_accesses(self):
        config = ECCConfig(access_rate_hz=0.0)
        assert ECCModel(config).ueo_probability() == 1.0

    def test_ueo_uer_split_matches_probability(self):
        model = ECCModel()
        rng = np.random.default_rng(7)
        outcomes = [model.classify_uncorrectable(rng) for _ in range(5000)]
        ueo_rate = sum(o is ECCOutcome.UEO for o in outcomes) / len(outcomes)
        assert abs(ueo_rate - model.ueo_probability()) < 0.03

    def test_default_split_matches_table2_row_ratio(self):
        # Table II: 4888 UEO rows vs 5209 UER rows -> p_ueo ~ 0.48.
        p = ECCModel().ueo_probability()
        assert 0.42 < p < 0.55

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ECCConfig(correctable_bits=-1)
        with pytest.raises(ValueError):
            ECCConfig(detectable_bits=0, correctable_bits=1)
        with pytest.raises(ValueError):
            ECCConfig(scrub_period_s=0)


class TestPatrolScrubber:
    def test_position_sweeps_forward(self):
        scrubber = PatrolScrubber(period_s=100.0, total_rows=1000)
        assert scrubber.position_at(0.0) == 0
        assert scrubber.position_at(50.0) == 500
        assert scrubber.position_at(99.999) == 999

    def test_position_wraps(self):
        scrubber = PatrolScrubber(period_s=100.0, total_rows=1000)
        assert scrubber.position_at(150.0) == scrubber.position_at(50.0)

    def test_next_visit_is_after(self):
        scrubber = PatrolScrubber(period_s=100.0, total_rows=1000)
        t = scrubber.next_visit(row=500, after=10.0)
        assert t > 10.0
        assert t == pytest.approx(50.0)

    def test_next_visit_wraps_to_next_cycle(self):
        scrubber = PatrolScrubber(period_s=100.0, total_rows=1000)
        t = scrubber.next_visit(row=100, after=50.0)
        assert t == pytest.approx(110.0)

    def test_discovery_delay_bounded_by_period(self):
        scrubber = PatrolScrubber(period_s=100.0, total_rows=1000)
        for corrupted_at in (0.0, 3.3, 42.0, 99.0, 250.5):
            delay = scrubber.discovery_delay(7, corrupted_at)
            assert 0 < delay <= 100.0

    def test_invalid_row_rejected(self):
        with pytest.raises(ValueError):
            PatrolScrubber(total_rows=10).next_visit(10, 0.0)
