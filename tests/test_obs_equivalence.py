"""Observability is passive: observed and unobserved runs are identical.

The acceptance contract of ``repro.obs``: attaching the full bundle
(tracer + journal + audit trail) to a serving run changes *nothing*
about the decision stream, the ICR, or the checkpointable service state
— while the journal and audit trail agree exactly with what the service
reports having done.
"""

import json

import pytest

from repro.core.online import CordialService
from repro.core.persistence import (load_service_checkpoint,
                                    save_service_checkpoint)
from repro.core.pipeline import Cordial
from repro.experiments.serve import serve_stream
from repro.obs import FakeClock, Observability


@pytest.fixture(scope="module")
def cordial(small_dataset, bank_split):
    train, _ = bank_split
    model = Cordial(model_name="LightGBM", random_state=0)
    model.fit(small_dataset, train)
    return model


@pytest.fixture(scope="module")
def test_stream(small_dataset, bank_split):
    _, test = bank_split
    test_set = set(test)
    return [r for r in small_dataset.store if r.bank_key in test_set]


@pytest.fixture(scope="module")
def truth(small_dataset, bank_split):
    _, test = bank_split
    return {bank: small_dataset.bank_truth[bank].uer_row_sequence
            for bank in test
            if small_dataset.bank_truth[bank].uer_row_sequence}


def make_obs(**kwargs):
    return Observability.create(clock=FakeClock(), **kwargs)


def decisions_json(decisions):
    return json.dumps([d.to_obj() for d in decisions], sort_keys=True)


class TestDecisionEquivalence:
    def test_observed_run_matches_unobserved(self, cordial, test_stream,
                                             truth):
        plain = CordialService(cordial)
        _, expect = serve_stream(plain, test_stream)

        obs = make_obs()
        observed = CordialService(cordial, obs=obs)
        _, got = serve_stream(observed, test_stream)

        assert decisions_json(got) == decisions_json(expect)
        assert observed.coverage(truth) == plain.coverage(truth)
        # The non-obs slice of the state dict is untouched too — modulo
        # the wall-clock latency histograms, the one nondeterministic
        # part of any two runs (observed or not).
        observed_state = observed.state_dict()
        observed_state.pop("obs")
        plain_state = plain.state_dict()
        for state in (observed_state, plain_state):
            state["metrics"].pop("histograms")
        assert observed_state == plain_state

    def test_attributions_do_not_change_decisions(self, cordial,
                                                  test_stream):
        plain = CordialService(cordial)
        _, expect = serve_stream(plain, test_stream[:400])

        obs = make_obs(attributions=True)
        observed = CordialService(cordial, obs=obs)
        _, got = serve_stream(observed, test_stream[:400])

        assert decisions_json(got) == decisions_json(expect)
        attributed = [r for r in obs.audit.records
                      if r["attributions"]]
        for record in attributed:
            for entries in record["attributions"].values():
                assert entries and all("delta" in e for e in entries)

    def test_unobserved_checkpoint_has_no_obs_key(self, cordial,
                                                  test_stream):
        service = CordialService(cordial)
        for record in test_stream[:50]:
            service.ingest(record)
        assert "obs" not in service.state_dict()


class TestAuditAgreement:
    def test_every_row_decision_is_audited(self, cordial, test_stream):
        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        _, decisions = serve_stream(service, test_stream)

        audited = obs.audit.records
        assert len(audited) == len(decisions)
        for decision, record in zip(decisions, audited):
            assert tuple(record["bank_key"]) == decision.bank_key
            assert record["action"] == decision.action
            assert record["timestamp"] == decision.timestamp
            assert record["kind"] == ("reprediction"
                                      if decision.is_reprediction
                                      else "trigger")
            if decision.action == "row-spare":
                assert record["rows_requested"] == list(decision.rows)
                assert record["threshold"] == \
                    cordial.predictor.effective_threshold
                flagged = record["flagged_blocks"]
                assert len(record["probabilities"]) == \
                    len(record["block_ranges"])
                for block in flagged:
                    assert (record["probabilities"][block]
                            >= record["threshold"])
        # explain() resolves every spared row to at least one decision.
        some_row_spare = next(d for d in decisions
                              if d.action == "row-spare" and d.rows)
        found = obs.audit.explain(some_row_spare.bank_key,
                                  some_row_spare.rows[0])
        assert any(r["timestamp"] == some_row_spare.timestamp
                   for r in found)

    def test_journal_counts_match_service_stats(self, cordial,
                                                test_stream):
        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        serve_stream(service, test_stream)

        counts = obs.journal.summary()["counts_by_type"]
        assert counts.get("trigger", 0) == service.stats.triggers_fired
        assert counts.get("reprediction", 0) == \
            service.stats.repredictions
        assert counts.get("isolation", 0) == sum(
            service.stats.decisions_by_action.values())
        assert obs.journal.summary()["ingests_seen"] == \
            service.stats.events_ingested


class TestCheckpointV3:
    def test_audit_trail_rides_in_the_checkpoint(self, cordial,
                                                 test_stream, tmp_path):
        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        for record in test_stream[:len(test_stream) // 2]:
            service.ingest(record)
        path = str(tmp_path / "v3.ckpt.json")
        save_service_checkpoint(service, path)

        document = json.loads(open(path).read())
        assert document["version"] == 3
        assert "obs" in document["state"]

        restored = load_service_checkpoint(path)
        assert restored.obs is not None
        assert restored.obs.audit.records == obs.audit.records
        assert restored.state_dict() == service.state_dict()

    def test_midstream_restore_with_obs_matches_clean_run(
            self, cordial, test_stream, truth, tmp_path):
        plain = CordialService(cordial)
        _, expect = serve_stream(plain, test_stream)

        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        service, got = serve_stream(
            service, test_stream,
            checkpoint_path=str(tmp_path / "mid.ckpt.json"),
            checkpoint_at=len(test_stream) // 2)

        assert decisions_json(got) == decisions_json(expect)
        assert service.coverage(truth) == plain.coverage(truth)
        # The journal recorded the restart, and the audit kept growing
        # past it on the same live bundle.
        kinds = [e["kind"] for e in obs.journal.events
                 if e["type"] == "checkpoint"]
        assert kinds == ["save", "restore"]
        assert service.obs is obs
        assert len(obs.audit.records) == len(got)

    def test_restored_audit_keeps_answering(self, cordial, test_stream,
                                            tmp_path):
        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        for record in test_stream:
            service.ingest(record)
        service.flush()
        path = str(tmp_path / "final.ckpt.json")
        save_service_checkpoint(service, path)
        restored = load_service_checkpoint(path)

        target = next(r for r in obs.audit.records if r["rows_requested"])
        bank = tuple(target["bank_key"])
        row = target["rows_requested"][0]
        assert restored.obs.audit.explain(bank, row) == \
            obs.audit.explain(bank, row)


class TestTracerOverheadShape:
    def test_span_per_ingest(self, cordial, test_stream):
        obs = make_obs()
        service = CordialService(cordial, obs=obs)
        for record in test_stream[:100]:
            service.ingest(record)
        service.flush()
        summary = obs.tracer.summary()
        assert summary["by_name"]["service.ingest"]["count"] == 100
        assert summary["by_name"]["service.flush"]["count"] == 1
