"""Tests for the temporal analysis helpers."""

import numpy as np
import pytest

from repro.analysis.temporal import (InterArrivalStats,
                                     bank_interarrival_gaps,
                                     bootstrap_ratio_ci,
                                     format_temporal_report,
                                     uer_acceleration)
from repro.telemetry.events import ErrorType


class TestInterArrivalStats:
    def test_poisson_burstiness_near_zero(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(10.0, size=20000)
        stats = InterArrivalStats.from_gaps(gaps)
        assert abs(stats.burstiness) < 0.05
        assert stats.mean_s == pytest.approx(10.0, rel=0.05)

    def test_periodic_burstiness_negative(self):
        stats = InterArrivalStats.from_gaps(np.full(100, 5.0))
        assert stats.burstiness == pytest.approx(-1.0)

    def test_bursty_positive(self):
        gaps = np.concatenate([np.full(95, 0.1), np.full(5, 1000.0)])
        assert InterArrivalStats.from_gaps(gaps).burstiness > 0.5

    def test_empty(self):
        stats = InterArrivalStats.from_gaps(np.array([]))
        assert stats.count == 0
        assert np.isnan(stats.mean_s)


class TestFleetTemporal:
    def test_gaps_nonnegative(self, small_dataset):
        gaps = bank_interarrival_gaps(small_dataset.store)
        assert gaps.size > 100
        assert (gaps >= 0).all()

    def test_per_type_gap_counts(self, small_dataset):
        all_gaps = bank_interarrival_gaps(small_dataset.store)
        typed = sum(bank_interarrival_gaps(small_dataset.store, t).size
                    for t in ErrorType)
        # typed gaps skip cross-type neighbours, so there are fewer
        assert typed <= all_gaps.size

    def test_uer_acceleration_defined(self, small_dataset):
        first, later = uer_acceleration(small_dataset.store)
        assert first > 0 and later > 0

    def test_report_renders(self, small_dataset):
        text = format_temporal_report(small_dataset.store)
        assert "burstiness" in text


class TestBootstrapCI:
    def test_point_estimate_is_pooled_ratio(self):
        point, low, high = bootstrap_ratio_ci([1, 2, 3], [10, 10, 10],
                                              n_resamples=500)
        assert point == pytest.approx(0.2)
        assert low <= point <= high

    def test_ci_narrows_with_more_banks(self):
        rng = np.random.default_rng(1)
        small_n = rng.integers(0, 5, size=10)
        small_d = np.full(10, 5)
        big_n = rng.integers(0, 5, size=1000)
        big_d = np.full(1000, 5)
        _, lo_s, hi_s = bootstrap_ratio_ci(small_n, small_d, seed=2)
        _, lo_b, hi_b = bootstrap_ratio_ci(big_n, big_d, seed=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([1], [0])
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([1, 2], [3])
