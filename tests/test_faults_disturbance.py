"""Tests for the read-disturbance (RowHammer) extension."""

import numpy as np
import pytest

from repro.faults.disturbance import (DisturbanceParams, RowHammerProcess,
                                      mitigation_refresh_rate)
from repro.faults.types import FailurePattern
from repro.telemetry.events import ErrorType


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DisturbanceParams(hammer_rate_per_day=0)
        with pytest.raises(ValueError):
            DisturbanceParams(blast_radius_decay=0)
        with pytest.raises(ValueError):
            DisturbanceParams(ce_per_uce=-1)


class TestRowHammerProcess:
    def test_victims_adjacent_to_aggressor(self):
        process = RowHammerProcess()
        rng = np.random.default_rng(0)
        for _ in range(20):
            episode = process.realize(rng)
            for victim in episode.victim_rows:
                assert 1 <= abs(victim - episode.aggressor_row) <= 2

    def test_uer_rows_subset_of_victims(self):
        process = RowHammerProcess()
        rng = np.random.default_rng(1)
        for _ in range(20):
            episode = process.realize(rng)
            rows = {row for _, row in episode.uer_row_sequence}
            assert rows <= set(episode.victim_rows)

    def test_near_victims_flip_before_far_ones(self):
        """Distance-1 victims absorb full disturbance and flip sooner."""
        params = DisturbanceParams(flip_threshold_sigma=0.01)
        process = RowHammerProcess(params)
        rng = np.random.default_rng(2)
        near_times, far_times = [], []
        for _ in range(40):
            episode = process.realize(rng, hammer_start=0.0)
            for t, row in episode.uer_row_sequence:
                if abs(row - episode.aggressor_row) == 1:
                    near_times.append(t)
                else:
                    far_times.append(t)
        assert near_times
        if far_times:
            assert np.median(near_times) < np.median(far_times)

    def test_ces_precede_the_uce(self):
        process = RowHammerProcess()
        rng = np.random.default_rng(3)
        episode = process.realize(rng, hammer_start=0.0)
        for t, row in episode.uer_row_sequence:
            ces = [e for e in episode.events
                   if e.row == row and e.kind is ErrorType.CE]
            assert all(e.time <= t for e in ces)

    def test_pattern_reads_as_single_row(self):
        episode = RowHammerProcess().realize(np.random.default_rng(4))
        assert episode.pattern is FailurePattern.SINGLE_ROW

    def test_events_sorted(self):
        episode = RowHammerProcess().realize(np.random.default_rng(5))
        times = [e.time for e in episode.events]
        assert times == sorted(times)

    def test_observational_label_is_aggregation(self):
        """The ultra-tight victim cluster labels as single-row clustering
        under the paper's taxonomy (operationally row-sparable)."""
        from repro.core.patterns import label_bank_pattern
        process = RowHammerProcess()
        rng = np.random.default_rng(6)
        labelled = 0
        for _ in range(50):
            episode = process.realize(rng, hammer_start=0.0)
            rows = [row for _, row in episode.uer_row_sequence]
            if len(rows) < 3:
                continue
            labelled += 1
            assert label_bank_pattern(rows) is FailurePattern.SINGLE_ROW
        assert labelled > 10

    def test_blast_radius_helper(self):
        process = RowHammerProcess()
        victims = process.victims_within_blast_radius(100)
        assert victims == [98, 99, 101, 102]
        assert process.victims_within_blast_radius(0) == [1, 2]


class TestMitigation:
    def test_refresh_rate_scales_with_hammer_rate(self):
        slow = mitigation_refresh_rate(DisturbanceParams(
            hammer_rate_per_day=10_000))
        fast = mitigation_refresh_rate(DisturbanceParams(
            hammer_rate_per_day=100_000))
        assert fast == pytest.approx(10 * slow)

    def test_validation(self):
        with pytest.raises(ValueError):
            mitigation_refresh_rate(DisturbanceParams(), safety_factor=0)
