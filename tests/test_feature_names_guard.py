"""Guard: feature_names() must always match the extracted vector width.

The vectorized extractors assemble their outputs column by column; a
drifting name list would silently misalign every downstream consumer
(model feature importances, the ablation study, docs).  This tier-1
guard pins names-to-width agreement for every featurizer.
"""

from repro.core.features import (BankPatternFeaturizer, CrossRowFeaturizer,
                                 FamilyMaskedFeaturizer)
from repro.hbm.address import DeviceAddress
from repro.telemetry.events import ErrorRecord, ErrorType


def rec(seq, t, row, error_type):
    address = DeviceAddress(node=0, npu=0, hbm=0, sid=0, channel=0,
                            pseudo_channel=0, bank_group=0, bank=0,
                            row=row, column=0)
    return ErrorRecord(timestamp=t, sequence=seq, address=address,
                       error_type=error_type)


HISTORY = [
    rec(0, 10.0, 100, ErrorType.CE),
    rec(1, 20.0, 140, ErrorType.UEO),
    rec(2, 30.0, 110, ErrorType.UER),
    rec(3, 40.0, 150, ErrorType.UER),
    rec(4, 50.0, 190, ErrorType.UER),
]


def test_bank_pattern_names_match_width():
    featurizer = BankPatternFeaturizer()
    names = featurizer.feature_names()
    assert len(names) == featurizer.n_features
    assert len(set(names)) == len(names)  # no duplicate names
    assert featurizer.extract(HISTORY).shape == (len(names),)
    assert featurizer.extract_many([HISTORY, HISTORY]).shape == \
        (2, len(names))


def test_cross_row_names_match_width():
    featurizer = CrossRowFeaturizer()
    names = featurizer.feature_names()
    assert len(names) == featurizer.n_features
    assert len(set(names)) == len(names)
    matrix = featurizer.extract_blocks(HISTORY, 190)
    assert matrix.shape == (featurizer.window.n_blocks, len(names))
    scalar = featurizer.extract_blocks_scalar(HISTORY, 190)
    assert scalar.shape == matrix.shape


def test_family_masked_names_match_width():
    for families in (["spatial"], ["temporal"], ["count"],
                     ["spatial", "temporal", "count"]):
        featurizer = FamilyMaskedFeaturizer(families)
        names = featurizer.feature_names()
        assert len(names) == featurizer.n_features
        assert featurizer.extract(HISTORY).shape == (len(names),)
        assert featurizer.extract_many([HISTORY]).shape == (1, len(names))
